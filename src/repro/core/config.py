"""RecStep configuration: every optimization is a switch.

The Figure 2/3 ablation turns each of these off one at a time; the
``no_op`` preset turns everything off (RecStep-NO-OP in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET


class OofMode(enum.Enum):
    """Optimization-on-the-fly statistics policy (Section 5.1)."""

    ON = "on"        # targeted stats (sizes for joins) at each iteration
    NA = "na"        # never re-analyze: plans frozen at iteration 1
    FA = "fa"        # full ANALYZE of every updated table, every iteration


class PbmeMode(enum.Enum):
    """Parallel bit-matrix evaluation policy (Section 5.3)."""

    AUTO = "auto"    # use when the program matches TC/SG and the matrix fits
    ON = "on"        # force (raises if the program doesn't match)
    OFF = "off"


@dataclass(frozen=True)
class RecStepConfig:
    """All knobs of a RecStep evaluation."""

    threads: int = 20
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    time_budget: float = DEFAULT_TIME_BUDGET
    enforce_budgets: bool = True

    profile: bool = False            # span tracer + counters (repro.obs)

    uie: bool = True                 # unified IDB evaluation
    oof: OofMode = OofMode.ON        # optimization on the fly
    dsd: bool = True                 # dynamic set difference
    eost: bool = True                # evaluation as one single transaction
    fast_dedup: bool = True          # CCK-GSCHT deduplication
    pbme: PbmeMode = PbmeMode.AUTO   # bit-matrix evaluation
    sg_coordination: bool = False    # Figure 7's SG-PBME-COORD variant

    def without(self, optimization: str) -> "RecStepConfig":
        """A copy with one optimization disabled (ablation helper).

        ``optimization`` is one of: "uie", "oof" (alias "oof-na"),
        "oof-fa", "dsd", "eost", "fast_dedup", "pbme".
        """
        key = optimization.lower().replace("-", "_")
        if key == "uie":
            return replace(self, uie=False)
        if key in ("oof", "oof_na"):
            return replace(self, oof=OofMode.NA)
        if key == "oof_fa":
            return replace(self, oof=OofMode.FA)
        if key == "dsd":
            return replace(self, dsd=False)
        if key == "eost":
            return replace(self, eost=False)
        if key == "fast_dedup":
            return replace(self, fast_dedup=False)
        if key == "pbme":
            return replace(self, pbme=PbmeMode.OFF)
        raise ValueError(f"unknown optimization {optimization!r}")

    @classmethod
    def no_op(cls, **overrides) -> "RecStepConfig":
        """RecStep-NO-OP: every optimization disabled."""
        return cls(
            uie=False,
            oof=OofMode.NA,
            dsd=False,
            eost=False,
            fast_dedup=False,
            pbme=PbmeMode.OFF,
            **overrides,
        )

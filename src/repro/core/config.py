"""RecStep configuration: every optimization is a switch.

The Figure 2/3 ablation turns each of these off one at a time; the
``no_op`` preset turns everything off (RecStep-NO-OP in the paper).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET


def _env_chaos_seed() -> int | None:
    """Default fault seed from ``REPRO_CHAOS_SEED`` (chaos CI hook).

    When set, every RecStep evaluation in the process runs under
    deterministic fault injection with this seed — the CI chaos smoke
    job exercises the whole tier-1 suite this way. Unset (the normal
    case) means no injection. Raw :class:`~repro.engine.database.
    Database` use is unaffected either way.
    """
    raw = os.environ.get("REPRO_CHAOS_SEED", "").strip()
    return int(raw) if raw else None


class OofMode(enum.Enum):
    """Optimization-on-the-fly statistics policy (Section 5.1)."""

    ON = "on"        # targeted stats (sizes for joins) at each iteration
    NA = "na"        # never re-analyze: plans frozen at iteration 1
    FA = "fa"        # full ANALYZE of every updated table, every iteration


class PbmeMode(enum.Enum):
    """Parallel bit-matrix evaluation policy (Section 5.3)."""

    AUTO = "auto"    # use when the program matches TC/SG and the matrix fits
    ON = "on"        # force (raises if the program doesn't match)
    OFF = "off"


@dataclass(frozen=True)
class RecStepConfig:
    """All knobs of a RecStep evaluation."""

    threads: int = 20
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    time_budget: float = DEFAULT_TIME_BUDGET
    enforce_budgets: bool = True

    profile: bool = False            # span tracer + counters (repro.obs)

    uie: bool = True                 # unified IDB evaluation
    oof: OofMode = OofMode.ON        # optimization on the fly
    dsd: bool = True                 # dynamic set difference
    eost: bool = True                # evaluation as one single transaction
    fast_dedup: bool = True          # CCK-GSCHT deduplication
    pbme: PbmeMode = PbmeMode.AUTO   # bit-matrix evaluation
    sg_coordination: bool = False    # Figure 7's SG-PBME-COORD variant
    join_cache: bool = True          # iteration-persistent join indexes
    partitioned_exec: bool = True    # radix-partitioned join/dedup/setops
    # Radix bucket count (rounded up to a power of two). Many more buckets
    # than workers keeps LPT scheduling quantization below the
    # contention-width bound at every thread count up to 40.
    partitions: int = 256

    # -- resilience (repro.resilience) ------------------------------------
    fault_seed: int | None = field(default_factory=_env_chaos_seed)
    # ^ arm deterministic fault injection (default: REPRO_CHAOS_SEED env)
    fault_rate: float = 0.02         # per-visit fault probability
    retries: int = 4                 # retry attempts per faulting operation
    retry_backoff: float = 0.05      # base backoff (simulated seconds)
    degradation: bool = False        # memory-pressure degradation ladder
    spill_dir: str | None = None     # spill-to-disk tier (needs degradation)
    spill_disk_budget: int | None = None  # modeled disk bytes for spilling
    checkpoint_dir: str | None = None  # write checkpoints here
    checkpoint_every: int = 1        # iteration checkpoint interval
    resume_from: str | None = None   # checkpoint file/dir to resume from
    deadline: float | None = None    # cooperative deadline (simulated s)
    # Runtime divergence guard (repro.resilience.guards): budgets on the
    # live semi-naive loop, complementing the static convergence checker.
    max_iterations: int | None = None  # productive-iteration budget
    max_total_rows: int | None = None  # cumulative delta-row budget

    def without(self, optimization: str) -> "RecStepConfig":
        """A copy with one optimization disabled (ablation helper).

        ``optimization`` is one of: "uie", "oof" (alias "oof-na"),
        "oof-fa", "dsd", "eost", "fast_dedup", "pbme", "join_cache",
        "partitioned_exec".
        """
        key = optimization.lower().replace("-", "_")
        if key == "uie":
            return replace(self, uie=False)
        if key in ("oof", "oof_na"):
            return replace(self, oof=OofMode.NA)
        if key == "oof_fa":
            return replace(self, oof=OofMode.FA)
        if key == "dsd":
            return replace(self, dsd=False)
        if key == "eost":
            return replace(self, eost=False)
        if key == "fast_dedup":
            return replace(self, fast_dedup=False)
        if key == "pbme":
            return replace(self, pbme=PbmeMode.OFF)
        if key == "join_cache":
            return replace(self, join_cache=False)
        if key == "partitioned_exec":
            return replace(self, partitioned_exec=False)
        raise ValueError(f"unknown optimization {optimization!r}")

    @classmethod
    def no_op(cls, **overrides) -> "RecStepConfig":
        """RecStep-NO-OP: every optimization disabled."""
        return cls(
            uie=False,
            oof=OofMode.NA,
            dsd=False,
            eost=False,
            fast_dedup=False,
            pbme=PbmeMode.OFF,
            join_cache=False,
            partitioned_exec=False,
            **overrides,
        )

"""Dynamic Set Difference: the Appendix A cost model.

Notation (Appendix A): ``Cb``/``Cp`` are per-tuple hash build/probe costs
with ``alpha = Cb / Cp``; ``beta = |R| / |R_delta|``; ``mu = |R_delta| / |r|``
where ``r`` is the intersection. The decision regions are:

* ``beta <= 1``              -> OPSD (R is the smaller table anyway);
* ``beta >= 2*alpha/(alpha-1)`` -> TPSD (lower bound of Eq. 6 positive);
* otherwise                  -> estimate the Eq. 5 cost difference using
  the previous iteration's ``mu`` (the paper's heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import make_rng
from repro.engine.executor import COST_BUILD, COST_PROBE
from repro.storage.manager import SPILL_READ_BANDWIDTH


def cost_opsd(r_size: int, delta_size: int, cb: float = COST_BUILD, cp: float = COST_PROBE) -> float:
    """Equation 1, first line: build on R, probe with R_delta."""
    return cb * r_size + cp * delta_size


def cost_tpsd(
    r_size: int,
    delta_size: int,
    intersection_size: int,
    cb: float = COST_BUILD,
    cp: float = COST_PROBE,
) -> float:
    """Equation 1, second line."""
    return cb * (min(r_size, delta_size) + intersection_size) + cp * (
        max(r_size, delta_size) + delta_size
    )


@dataclass
class DsdPolicy:
    """Per-IDB chooser between OPSD and TPSD.

    One instance per recursive relation: it remembers the previous
    iteration's ``mu`` to approximate the unknown intersection size.
    """

    alpha: float = COST_BUILD / COST_PROBE
    enabled: bool = True
    prev_mu: float = 1.0
    decisions: list[str] = field(default_factory=list)

    def threshold(self) -> float:
        """``2*alpha/(alpha-1)``, above which TPSD always wins."""
        if self.alpha <= 1.0:
            return float("inf")
        return 2.0 * self.alpha / (self.alpha - 1.0)

    def choose(
        self,
        r_size: int,
        delta_size: int,
        cached_extension: int | None = None,
        spilled_bytes: int = 0,
    ) -> str:
        """Pick the strategy for this iteration.

        ``cached_extension`` is the number of rows a persistent whole-row
        index over R still needs to ingest (``None`` when the join-state
        cache is off). With the cache, OPSD's build covers only those
        appended rows, so the Appendix A comparison prices the build at
        the extension instead of ``|R|`` — which flips most late
        iterations back to OPSD.

        ``spilled_bytes`` is the modeled size of R's on-disk prefix.
        Executing either strategy must read those bytes back — TPSD
        streams them through bounded chunks, while an *uncached* OPSD
        faults the whole prefix in (and the rung will likely re-evict
        it), so OPSD is charged the read twice: rehydrate + re-spill.
        An OPSD that runs purely against a whole-row cache index never
        touches R's rows and pays nothing.
        """
        if not self.enabled:
            # QuickStep's default translation is the single-query OPSD.
            self.decisions.append("OPSD")
            return "OPSD"
        spill_io = spilled_bytes / SPILL_READ_BANDWIDTH if spilled_bytes > 0 else 0.0
        if cached_extension is not None and cached_extension < r_size:
            opsd = cost_opsd(cached_extension, delta_size)
            mu = max(self.prev_mu, 1.0)
            tpsd = cost_tpsd(r_size, delta_size, int(delta_size / mu)) + spill_io
            choice = "OPSD" if opsd <= tpsd else "TPSD"
            self.decisions.append(choice)
            return choice
        if spill_io > 0.0:
            opsd = cost_opsd(r_size, delta_size) + 2.0 * spill_io
            mu = max(self.prev_mu, 1.0)
            tpsd = cost_tpsd(r_size, delta_size, int(delta_size / mu)) + spill_io
            choice = "OPSD" if opsd <= tpsd else "TPSD"
            self.decisions.append(choice)
            return choice
        choice = self._choose_dynamic(r_size, delta_size)
        self.decisions.append(choice)
        return choice

    def _choose_dynamic(self, r_size: int, delta_size: int) -> str:
        if delta_size == 0 or r_size <= delta_size:  # beta in (0, 1]
            return "OPSD"
        beta = r_size / delta_size
        if beta >= self.threshold():
            return "TPSD"
        # Grey zone: approximate mu by the previous iteration's value
        # (Eq. 5): diff = mu*|r|*Cp*[beta*(alpha-1) - (alpha + alpha/mu)].
        mu = max(self.prev_mu, 1.0)
        discriminant = beta * (self.alpha - 1.0) - (self.alpha + self.alpha / mu)
        return "TPSD" if discriminant > 0 else "OPSD"

    def observe_intersection(self, delta_size: int, intersection_size: int) -> None:
        """Update ``mu`` after a TPSD run measured the true intersection."""
        if intersection_size > 0:
            self.prev_mu = delta_size / intersection_size


def calibrate_alpha(
    num_pairs: int = 5,
    runs_per_pair: int = 3,
    max_rows: int = 20_000,
    seed: int = 7,
) -> float:
    """Offline training of ``alpha`` (Appendix A, Equation 7).

    Performs ``runs_per_pair`` join runs on ``num_pairs`` table pairs of
    different sizes, timing the build and probe phases of a real hash
    join, and averages ``(B_ij * |R_i|) / (P_ij * |S_i|)`` — except that
    sizes already normalize per-tuple costs, so the formula reduces to
    averaging measured per-tuple build/probe ratios.
    """
    import time

    rng = make_rng(seed)
    ratios: list[float] = []
    for pair_index in range(num_pairs):
        small = max(1_000, int(max_rows * (pair_index + 1) / (2 * num_pairs)))
        large = small * 2
        build_side = rng.integers(0, small, size=small)
        probe_side = rng.integers(0, small, size=large)
        for _ in range(runs_per_pair):
            start = time.perf_counter()
            table: dict[int, int] = {}
            for value in build_side.tolist():
                table[value] = value
            build_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            hits = 0
            for value in probe_side.tolist():
                if value in table:
                    hits += 1
            probe_elapsed = time.perf_counter() - start
            if probe_elapsed <= 0 or build_elapsed <= 0:
                continue
            ratios.append((build_elapsed / small) / (probe_elapsed / large))
            del hits
    if not ratios:
        return COST_BUILD / COST_PROBE
    return float(np.mean(ratios))

"""The interpreter: Algorithm 1, semi-naive evaluation with stratification.

The interpreter drives the relational backend exactly the way the paper's
interpreter drives QuickStep: it creates the IDB/∆/m∆ tables, issues the
generated SQL per stratum and iteration, calls ``analyze`` according to
the OOF mode, deduplicates with a separate ``dedup`` call (INSERTs use
UNION ALL), computes ∆ with the DSD-chosen strategy, and commits once at
the end under EOST.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import DatalogError
from repro.core import compiler
from repro.core.compiler import CompiledPredicate, CompiledStratum, QueryGenerator
from repro.core.config import OofMode, RecStepConfig
from repro.core.setdiff_policy import DsdPolicy
from repro.datalog.analyzer import AnalyzedProgram
from repro.engine.database import Database
from repro.obs import CATEGORY_ITERATION, CATEGORY_STRATUM
from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointState,
    edb_fingerprint,
)
from repro.sql import ast as sast


@dataclass
class IterationRecord:
    """Telemetry for one semi-naive iteration of one stratum."""

    stratum: int
    iteration: int
    delta_sizes: dict[str, int] = field(default_factory=dict)
    set_diff_strategies: dict[str, str] = field(default_factory=dict)


@dataclass
class InterpreterReport:
    iterations: int = 0
    records: list[IterationRecord] = field(default_factory=list)
    pbme_strata: list[int] = field(default_factory=list)


class SemiNaiveInterpreter:
    """Evaluates one analyzed program on a Database backend."""

    def __init__(
        self,
        database: Database,
        analyzed: AnalyzedProgram,
        config: RecStepConfig,
        edb_schemas: dict[str, tuple[str, ...]] | None = None,
        checkpoints: CheckpointManager | None = None,
        resume_from: CheckpointState | None = None,
    ) -> None:
        self._db = database
        self._analyzed = analyzed
        self._config = config
        self._edb_schemas = edb_schemas or {}
        self._generator = QueryGenerator(analyzed)
        self._policies: dict[str, DsdPolicy] = {}
        self.report = InterpreterReport()
        self._checkpoints = checkpoints
        self._resume = resume_from
        #: Where the evaluation currently is, for failure-report context.
        self.current_stratum = -1
        self.current_iteration = -1
        #: True while a maintenance batch is running: suppresses
        #: checkpointing (snapshots mid-maintenance would mix old and new
        #: state) and keeps the join cache warm across stratum cleanup.
        self._maintaining = False
        #: Content fingerprint of the loaded EDB; stamped into checkpoints
        #: so a resume can reject snapshots of a different input.
        self.edb_fingerprint = ""
        #: Count tables (``<pred>_ivm_cnt``) built by past maintenance
        #: batches; they persist across batches.
        self._ivm_count_tables: set[str] = set()

    # -- setup -----------------------------------------------------------------

    def load_edb(self, edb_data: dict[str, np.ndarray]) -> None:
        """Create and bulk-load the EDB tables."""
        missing = self._analyzed.edb - set(edb_data)
        if missing:
            raise DatalogError(f"missing EDB relations: {sorted(missing)}")
        loaded: dict[str, np.ndarray] = {}
        for name in sorted(self._analyzed.edb):
            arity = self._analyzed.arities[name]
            columns = self._edb_schemas.get(name, compiler.columns_for(arity))
            rows = np.asarray(edb_data[name], dtype=np.int64).reshape(-1, arity)
            self._db.load_table(name, columns, rows)
            loaded[name] = rows
        self.edb_fingerprint = edb_fingerprint(loaded)

    def create_idb_tables(self) -> None:
        for name in sorted(self._analyzed.idb):
            columns = compiler.columns_for(self._analyzed.arities[name])
            self._db.create_table(compiler.full_table(name), columns)
            self._db.create_table(compiler.delta_table(name), columns)
            self._db.create_table(compiler.mdelta_table(name), columns)

    # -- evaluation ---------------------------------------------------------------

    def run(self) -> InterpreterReport:
        """Evaluate all strata to fixpoint (Algorithm 1)."""
        resume = self._resume
        if resume is not None:
            self._restore(resume)
        for compiled_stratum in self._generator.compile():
            stratum = compiled_stratum.stratum
            if resume is not None and (
                stratum.index < resume.stratum
                or (stratum.index == resume.stratum and resume.stratum_complete)
            ):
                # Evaluated before the snapshot: the restored full tables
                # already hold this stratum's fixpoint.
                self._drop_working_tables(compiled_stratum.predicates)
                continue
            self.current_stratum = stratum.index
            self.current_iteration = -1
            self._db.resilience.check_cancelled(stratum=stratum.index)
            with self._db.profiler.span(
                f"stratum {stratum.index}",
                CATEGORY_STRATUM,
                predicates=sorted(stratum.predicates),
                recursive=stratum.recursive,
            ) as span:
                resuming_here = resume is not None and stratum.index == resume.stratum
                # A mid-stratum snapshot was taken on the relational path,
                # so the resumed stratum must stay relational too.
                if not resuming_here and self._maybe_run_pbme(compiled_stratum):
                    span.set(engine="pbme")
                    self._maybe_checkpoint(stratum.index, -1, [])
                    continue
                span.set(engine="relational")
                self._run_stratum(
                    compiled_stratum,
                    resume_iteration=resume.iteration if resuming_here else None,
                )
            self._maybe_checkpoint(stratum.index, -1, [])
        self._db.commit()
        return self.report

    def maintain(
        self,
        inserts: dict[str, np.ndarray] | None = None,
        deletes: dict[str, np.ndarray] | None = None,
    ):
        """Apply one EDB update batch from the warm fixpoint.

        ``run()`` must have completed on this interpreter; the full IDB
        tables then hold the fixpoint and this re-establishes it under
        the batch — bit-identical to a recompute from the mutated EDB —
        via counting/DRed/per-stratum recompute (see ``core.ivm``).
        Returns the :class:`~repro.core.ivm.MaintenanceReport`.
        """
        from repro.core.ivm import MaintenanceRun

        self._maintaining = True
        try:
            report = MaintenanceRun(self, inserts or {}, deletes or {}).run()
        finally:
            self._maintaining = False
        self.edb_fingerprint = edb_fingerprint(
            {
                name: self._db.table_array(name)
                for name in sorted(self._analyzed.edb)
            }
        )
        return report

    def _maybe_run_pbme(self, compiled_stratum: CompiledStratum) -> bool:
        """Delegate a TC/SG-shaped stratum to the bit-matrix evaluator."""
        from repro.core import bitmatrix

        decision = bitmatrix.pbme_applicability(
            self._analyzed, compiled_stratum.stratum, self._db, self._config
        )
        if not decision.applicable:
            return False
        bitmatrix.run_pbme_stratum(decision, self._db, self._config, self.report)
        self.report.pbme_strata.append(compiled_stratum.stratum.index)
        return True

    def _run_stratum(
        self,
        compiled_stratum: CompiledStratum,
        resume_iteration: int | None = None,
    ) -> None:
        stratum = compiled_stratum.stratum
        predicates = compiled_stratum.predicates
        for predicate in predicates:
            self._policies[predicate.predicate] = DsdPolicy(enabled=self._config.dsd)

        if resume_iteration is None:
            # Iteration 0: all rules over full relations.
            self.current_iteration = 0
            record = IterationRecord(stratum=stratum.index, iteration=0)
            with self._db.profiler.span("iteration 0", CATEGORY_ITERATION) as span:
                for predicate in predicates:
                    if predicate.facts:
                        # Facts seed the merged delta, not the full table:
                        # the standard dedup/set-difference path then lands
                        # them in both full and Δ, so semi-naive rules in a
                        # recursive stratum (e.g. magic-set seeds) see them.
                        self._db.append_rows(
                            compiler.mdelta_table(predicate.predicate),
                            np.asarray(predicate.facts, dtype=np.int64),
                        )
                    self._evaluate_predicate(predicate, predicate.init_query(), record, init=True)
                span.set(delta_sizes=dict(record.delta_sizes))
            self.report.records.append(record)
            self.report.iterations += 1
            self._db.note_iteration(
                stratum.index, 0, sum(record.delta_sizes.values()), span.duration
            )
            self._db.resilience.check_cancelled(stratum=stratum.index, iteration=0)
            self._db.resilience.check_guard(
                stratum.index, 0, sum(record.delta_sizes.values())
            )
            self._maybe_checkpoint(stratum.index, 0, predicates)
            iteration = 0
        else:
            # Mid-stratum resume: full/Δ tables and the DSD mu were
            # restored by ``_restore``; continue after the snapshot's
            # last completed iteration.
            for predicate in predicates:
                mu = self._resume.dsd_mu.get(predicate.predicate)
                if mu is not None:
                    self._policies[predicate.predicate].prev_mu = mu
            iteration = resume_iteration

        if not stratum.recursive:
            self._drop_working_tables(predicates)
            return

        if resume_iteration is not None and all(
            self._db.table_size(compiler.delta_table(p.predicate)) == 0
            for p in predicates
        ):
            # The snapshot caught the stratum exactly at its fixpoint.
            self._drop_working_tables(predicates)
            return

        while True:
            iteration += 1
            self.current_iteration = iteration
            record = IterationRecord(stratum=stratum.index, iteration=iteration)
            with self._db.profiler.span(
                f"iteration {iteration}", CATEGORY_ITERATION
            ) as span:
                for predicate in predicates:
                    self._evaluate_predicate(
                        predicate, predicate.delta_query(), record, init=False
                    )
                span.set(delta_sizes=dict(record.delta_sizes))
            self.report.records.append(record)
            self.report.iterations += 1
            self._db.note_iteration(
                stratum.index,
                iteration,
                sum(record.delta_sizes.values()),
                span.duration,
            )
            if all(size == 0 for size in record.delta_sizes.values()):
                break
            self._db.resilience.check_cancelled(
                stratum=stratum.index, iteration=iteration
            )
            self._db.resilience.check_guard(
                stratum.index, iteration, sum(record.delta_sizes.values())
            )
            self._maybe_checkpoint(stratum.index, iteration, predicates)
        self._drop_working_tables(predicates)

    def _drop_working_tables(self, predicates: list[CompiledPredicate]) -> None:
        for predicate in predicates:
            self._db.execute_ast(sast.DropTable(compiler.delta_table(predicate.predicate)))
            self._db.execute_ast(sast.DropTable(compiler.mdelta_table(predicate.predicate)))
        # Stratum boundary: the next stratum joins different tables, so
        # the persistent join indexes built for this one are dead weight.
        # During maintenance the full-table indexes stay valuable across
        # batches; dropping the working tables above already evicted
        # theirs, so keep the rest warm.
        if not self._maintaining:
            self._db.invalidate_join_cache()

    # -- checkpoint/resume --------------------------------------------------------

    def _maybe_checkpoint(
        self,
        stratum_index: int,
        iteration: int,
        predicates: list[CompiledPredicate],
    ) -> None:
        """Snapshot semi-naive state at an iteration/stratum boundary.

        Taken when m∆ tables are empty and ∆ tables hold the just-
        completed iteration's delta, so the snapshot is exactly the
        Algorithm 1 loop state. ``iteration=-1`` marks a stratum
        boundary (working tables already dropped; only fulls survive).
        """
        if self._checkpoints is None or self._maintaining:
            return
        # table_snapshot, not table_array: snapshotting a spilled full
        # relation streams its on-disk prefix instead of faulting it back
        # in — checkpointing must relieve memory pressure, not recreate it.
        tables: dict[str, np.ndarray] = {
            f"full:{name}": self._db.table_snapshot(compiler.full_table(name))
            for name in sorted(self._analyzed.idb)
        }
        dsd_mu: dict[str, float] = {}
        if iteration >= 0:
            for predicate in predicates:
                name = predicate.predicate
                tables[f"delta:{name}"] = self._db.table_snapshot(
                    compiler.delta_table(name)
                )
                dsd_mu[name] = self._policies[name].prev_mu
        self._checkpoints.maybe_save(
            CheckpointState(
                program=self._analyzed.program.name,
                stratum=stratum_index,
                iteration=iteration,
                tables=tables,
                dsd_mu=dsd_mu,
                iterations_total=self.report.iterations,
                pbme_strata=list(self.report.pbme_strata),
                sim_seconds=self._db.sim_seconds,
                edb_fingerprint=self.edb_fingerprint,
            )
        )

    def _restore(self, state: CheckpointState) -> None:
        """Load a checkpoint into freshly created IDB tables."""
        for key, rows in sorted(state.tables.items()):
            kind, _, name = key.partition(":")
            if kind == "full":
                table = compiler.full_table(name)
            elif kind == "edb":
                # Durable-view base checkpoints carry the EDB alongside
                # the fulls so recovery is self-contained; the rows are
                # identical to what load_edb already installed (the
                # fingerprint match guarantees it), so overwriting the
                # base table is a no-op by content.
                table = name
            else:
                table = compiler.delta_table(name)
            self._db.restore_rows(table, rows)
            self._db.analyze(table)
        self.report.iterations = state.iterations_total
        self.report.pbme_strata = list(state.pbme_strata)
        # Continue the interrupted run's clock: the resumed evaluation
        # reports total simulated time, not just the tail.
        behind = state.sim_seconds - self._db.sim_seconds
        if behind > 0:
            self._db.metrics.clock.advance(behind)
        # Restored fulls carry fresh epochs; rebuild their whole-row
        # indexes so the resumed run sees the same cache state an
        # uninterrupted run would.
        self._db.rehydrate_join_cache(
            [compiler.full_table(name) for name in sorted(self._analyzed.idb)]
        )

    # -- one predicate, one iteration ------------------------------------------------

    def _evaluate_predicate(
        self,
        predicate: CompiledPredicate,
        query: sast.Query | None,
        record: IterationRecord,
        init: bool,
    ) -> None:
        name = predicate.predicate
        full = compiler.full_table(name)
        delta = compiler.delta_table(name)
        mdelta = compiler.mdelta_table(name)

        if query is not None:
            self._uieval(predicate, query)
        self._analyze_after_eval(predicate, init)

        if predicate.aggregate in ("MIN", "MAX"):
            candidates = self._db.table_array(mdelta)
            _, improved = self._db.aggregate_merge(full, candidates, predicate.aggregate)
            delta_rows = improved
            strategy = "AGG-MERGE"
        else:
            dedup_outcome = self._db.dedup_table(mdelta)
            self._analyze_after_dedup(predicate, init)
            policy = self._policies[name]
            strategy = policy.choose(
                self._db.table_size(full),
                dedup_outcome.output_rows,
                cached_extension=self._db.join_cache_extension(full),
                spilled_bytes=self._db.table_spilled_bytes(full),
            )
            outcome = self._db.set_difference(mdelta, full, strategy)
            if outcome.intersection_size is not None:
                policy.observe_intersection(
                    dedup_outcome.output_rows, outcome.intersection_size
                )
            delta_rows = outcome.delta
            self._db.append_rows(full, delta_rows)

        self._db.replace_rows(delta, delta_rows)
        self._db.execute_ast(sast.DeleteAll(mdelta))
        self._analyze_after_delta(predicate, init)

        record.delta_sizes[name] = int(delta_rows.shape[0])
        record.set_diff_strategies[name] = strategy

    def _uieval(self, predicate: CompiledPredicate, query: sast.Query) -> None:
        """Issue the evaluation SQL: one query under UIE, many without."""
        mdelta = compiler.mdelta_table(predicate.predicate)
        if self._config.uie or isinstance(query, sast.Select):
            self._db.execute_ast(sast.InsertSelect(mdelta, query))
            return
        # Individual IDB evaluation (Figure 4, left): one INSERT per
        # subquery into its own temp table, then a merge query.
        assert isinstance(query, sast.UnionAll)
        columns = compiler.columns_for(predicate.arity)
        tmp_names: list[str] = []
        for index, select in enumerate(query.selects):
            tmp = compiler.tmp_table(predicate.predicate, index)
            tmp_names.append(tmp)
            self._db.create_table(tmp, columns)
            self._db.execute_ast(sast.InsertSelect(tmp, select))
        merge_arms = []
        for index, tmp in enumerate(tmp_names):
            alias = f"t{index}"
            merge_arms.append(
                sast.Select(
                    items=tuple(
                        sast.SelectItem(sast.ColumnRef(alias, c), c) for c in columns
                    ),
                    tables=(sast.TableRef(tmp, alias),),
                )
            )
        merged: sast.Query = (
            merge_arms[0] if len(merge_arms) == 1 else sast.UnionAll(tuple(merge_arms))
        )
        self._db.execute_ast(sast.InsertSelect(mdelta, merged))
        for tmp in tmp_names:
            self._db.execute_ast(sast.DropTable(tmp))

    # -- OOF: the analyze schedule --------------------------------------------------

    def _analyze_after_eval(self, predicate: CompiledPredicate, init: bool) -> None:
        """``analyze(Rt)`` — line 9 of Algorithm 1."""
        mdelta = compiler.mdelta_table(predicate.predicate)
        mode = self._config.oof
        if init or mode is OofMode.ON:
            # Targeted: sizes for joins; fuller stats only for aggregation.
            self._db.analyze(mdelta, full=bool(predicate.aggregate))
        elif mode is OofMode.FA:
            self._db.analyze(mdelta, full=True)
        # OofMode.NA after init: statistics stay frozen.
        if mode is OofMode.FA and not init:
            for table in (
                compiler.full_table(predicate.predicate),
                compiler.delta_table(predicate.predicate),
            ):
                self._db.analyze(table, full=True)

    def _analyze_after_dedup(self, predicate: CompiledPredicate, init: bool) -> None:
        """``analyze(R_delta, R)`` — line 11 of Algorithm 1."""
        mode = self._config.oof
        if init or mode is OofMode.ON:
            self._db.analyze(compiler.mdelta_table(predicate.predicate))
            self._db.analyze(compiler.full_table(predicate.predicate))
        elif mode is OofMode.FA:
            self._db.analyze(compiler.mdelta_table(predicate.predicate), full=True)
            self._db.analyze(compiler.full_table(predicate.predicate), full=True)

    def _analyze_after_delta(self, predicate: CompiledPredicate, init: bool) -> None:
        mode = self._config.oof
        if init or mode is OofMode.ON:
            self._db.analyze(compiler.delta_table(predicate.predicate))
            self._db.analyze(compiler.full_table(predicate.predicate))
        elif mode is OofMode.FA:
            self._db.analyze(compiler.delta_table(predicate.predicate), full=True)

"""The RecStep engine facade.

``RecStep`` is the top-level public API of this reproduction: give it a
Datalog program (source text or a :class:`~repro.programs.ProgramSpec`)
and EDB data, and it evaluates to fixpoint on the parallel relational
backend, returning an :class:`~repro.common.records.EvaluationResult`
with the fixpoint, simulated runtime, and memory/CPU traces.

Example::

    from repro import RecStep
    from repro.programs import get_program

    engine = RecStep()
    result = engine.evaluate(get_program("TC"), {"arc": edges}, dataset="G1K")
    print(result.sizes(), result.sim_seconds)
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.errors import (
    DivergenceGuardTripped,
    EvaluationCancelled,
    EvaluationTimeout,
    FaultRetriesExhausted,
    OutOfMemoryError,
    SpillError,
)
from repro.common.records import EvaluationResult
from repro.core.config import RecStepConfig
from repro.core.interpreter import SemiNaiveInterpreter
from repro.datalog.analyzer import AnalyzedProgram, analyze_program
from repro.datalog.parser import parse_program
from repro.engine.database import Database
from repro.obs import CATEGORY_PROGRAM, ProfileReport
from repro.programs.library import ProgramSpec
from repro.obs.counters import CounterRegistry
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    CompositeToken,
    DeadlineToken,
    DegradationController,
    FaultInjector,
    ResilienceContext,
    RetryPolicy,
    RuntimeGuard,
)


class RecStep:
    """General-purpose parallel in-memory Datalog engine (the paper's system).

    Args:
        config: evaluation knobs (see :class:`RecStepConfig`).
        token_factory: optional hook for embedding layers (the query
            service's watchdog): called with the evaluation's simulated
            clock, it returns an extra cancellation token polled at
            iteration boundaries alongside any configured deadline.
    """

    name = "RecStep"

    def __init__(
        self,
        config: RecStepConfig | None = None,
        token_factory=None,
    ) -> None:
        self.config = config or RecStepConfig()
        self.token_factory = token_factory
        self.last_database: Database | None = None
        self.last_report = None

    def evaluate(
        self,
        program: ProgramSpec | AnalyzedProgram | str,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
    ) -> EvaluationResult:
        """Evaluate ``program`` over ``edb_data`` to fixpoint.

        Args:
            program: a ProgramSpec, an analyzed program, or Datalog source.
            edb_data: relation name -> (rows, arity) int array.
            dataset: label recorded in the result (for the harness).

        Returns:
            EvaluationResult with status "ok", "oom", "timeout",
            "deadline"/"cancelled", "guard", or "fault" — the paper's
            outcome classes plus the resilience layer's (a failed run
            reports its partial simulated time, peak memory, and
            structured ``failure`` context with a ``kind``
            discriminator).
        """
        analyzed, program_name, edb_schemas = _resolve_program(program)
        resilience = self._build_resilience()
        database = Database(
            threads=self.config.threads,
            memory_budget=self.config.memory_budget,
            time_budget=self.config.time_budget,
            eost=self.config.eost,
            fast_dedup=self.config.fast_dedup,
            enforce_budgets=self.config.enforce_budgets,
            profile=self.config.profile,
            resilience=resilience,
            join_cache=self.config.join_cache,
            partitioned_exec=self.config.partitioned_exec,
            partitions=self.config.partitions,
            spill_dir=self.config.spill_dir,
            spill_disk_budget=self.config.spill_disk_budget,
        )
        tokens = []
        if self.config.deadline is not None:
            tokens.append(
                DeadlineToken(database.metrics.clock, self.config.deadline)
            )
        if self.token_factory is not None:
            extra = self.token_factory(database.metrics.clock)
            if extra is not None:
                tokens.append(extra)
        if tokens:
            resilience.token = tokens[0] if len(tokens) == 1 else CompositeToken(tokens)
        checkpoints = None
        if self.config.checkpoint_dir is not None:
            checkpoints = CheckpointManager(
                self.config.checkpoint_dir,
                every=self.config.checkpoint_every,
                metrics=database.metrics,
                profiler=database.profiler,
            )
        resume_state = None
        resume_skips = CounterRegistry()
        if self.config.resume_from is not None:
            resume_state = CheckpointManager.load(
                self.config.resume_from, counters=resume_skips
            )
            if resume_state.program != program_name:
                raise CheckpointError(
                    f"checkpoint is for program {resume_state.program!r}, "
                    f"not {program_name!r}",
                    checkpoint_program=resume_state.program,
                    program=program_name,
                )
        self.last_database = database
        interpreter = SemiNaiveInterpreter(
            database,
            analyzed,
            self.config,
            edb_schemas=edb_schemas,
            checkpoints=checkpoints,
            resume_from=resume_state,
        )
        result = EvaluationResult(
            engine=self.name, program=program_name, dataset=dataset
        )
        wall_start = time.perf_counter()
        try:
            # The program span wraps *everything* — EDB load, table setup,
            # the fixpoint, and result extraction — so the span forest
            # accounts for all simulated time (attributed_fraction ≈ 1).
            with database.profiler.span(
                f"program {program_name}",
                CATEGORY_PROGRAM,
                program=program_name,
                dataset=dataset,
            ):
                interpreter.load_edb(edb_data)
                interpreter.create_idb_tables()
                report = interpreter.run()
                # Extraction streams spilled prefixes (table_snapshot)
                # instead of faulting them in: a fixpoint that only fits
                # under budget *because* it spilled must not OOM while
                # being read out.
                fixpoint = {
                    name: {
                        tuple(int(value) for value in row)
                        for row in database.table_snapshot(name)
                    }
                    for name in sorted(analyzed.idb)
                }
        except OutOfMemoryError as error:
            result.status = "oom"
            result.failure = self._failure(error, interpreter)
        except EvaluationTimeout as error:
            result.status = "timeout"
            result.failure = self._failure(error, interpreter)
        except EvaluationCancelled as error:
            reason = error.context.get("reason", "cancelled")
            result.status = "deadline" if reason == "deadline" else "cancelled"
            result.failure = self._failure(error, interpreter)
        except DivergenceGuardTripped as error:
            result.status = "guard"
            result.failure = self._failure(error, interpreter)
        except FaultRetriesExhausted as error:
            result.status = "fault"
            result.failure = self._failure(error, interpreter)
        except SpillError as error:
            result.status = "storage"
            result.failure = self._failure(error, interpreter)
        else:
            result.iterations = report.iterations
            result.detail["pbme_strata"] = float(len(report.pbme_strata))
            result.tuples.update(fixpoint)
            self.last_report = report
        finally:
            database.release_spill()
        if result.failure is not None:
            # Every failed run carries a `kind` discriminator; errors that
            # set one at the raise site (the divergence guard's budget
            # name, a token's reason) win over the generic status.
            result.failure.setdefault(
                "kind", result.failure.get("reason", result.status)
            )
        result.wall_seconds = time.perf_counter() - wall_start
        result.sim_seconds = database.sim_seconds
        result.peak_memory_bytes = database.peak_memory_bytes
        result.peak_transient_bytes = database.metrics.peak_transient_bytes
        result.memory_trace = database.metrics.memory_trace
        result.cpu_trace = database.metrics.cpu_trace
        if (
            resilience.active
            or checkpoints is not None
            or resume_state is not None
            or database.spill is not None
        ):
            recap = resilience.summary()
            if database.spill is not None:
                recap["spill"] = {
                    "peak_spilled_bytes": database.metrics.peak_spilled_bytes,
                    "capacity_exhausted": database.spill.capacity_exhausted,
                }
                if database.profiler.enabled:
                    counters = database.profiler.counters
                    recap["spill"].update(
                        tables_spilled=counters.get("spill.tables_spilled"),
                        segments_written=counters.get("spill.segments_written"),
                        segment_reads=counters.get("spill.segment_reads"),
                        fault_ins=counters.get("spill.fault_ins"),
                        torn_quarantined=counters.get("spill.torn_quarantined"),
                    )
            if checkpoints is not None:
                recap["checkpoints_written"] = checkpoints.written
                if checkpoints.last_path is not None:
                    recap["last_checkpoint"] = str(checkpoints.last_path)
            if resume_state is not None:
                recap["resumed_from"] = {
                    "stratum": resume_state.stratum,
                    "iteration": resume_state.iteration,
                }
                skipped = resume_skips.get("checkpoint_corrupt_skipped")
                if skipped:
                    recap["checkpoint_corrupt_skipped"] = skipped
                    database.profiler.counters.inc(
                        "checkpoint_corrupt_skipped", skipped
                    )
            result.resilience = recap
        if database.profiler.enabled:
            result.profile = ProfileReport.from_profiler(
                database.profiler, database.sim_seconds
            )
        return result

    def _build_resilience(self) -> ResilienceContext:
        """Assemble the resilience context this config asks for."""
        injector = None
        if self.config.fault_seed is not None:
            injector = FaultInjector(self.config.fault_seed, rate=self.config.fault_rate)
        guard = None
        if (
            self.config.max_iterations is not None
            or self.config.max_total_rows is not None
        ):
            guard = RuntimeGuard(
                max_iterations=self.config.max_iterations,
                max_total_rows=self.config.max_total_rows,
            )
        return ResilienceContext(
            injector=injector,
            retry=RetryPolicy(
                max_attempts=self.config.retries,
                backoff_base=self.config.retry_backoff,
            ),
            degradation=DegradationController(enabled=self.config.degradation),
            guard=guard,
        )

    @staticmethod
    def _failure(error, interpreter: SemiNaiveInterpreter) -> dict:
        """Structured failure context, annotated with the loop position."""
        error.add_context(
            stratum=interpreter.current_stratum if interpreter.current_stratum >= 0 else None,
            iteration=interpreter.current_iteration
            if interpreter.current_iteration >= 0
            else None,
        )
        return error.to_dict()


def explain_program(program: ProgramSpec | AnalyzedProgram | str) -> str:
    """Render the SQL RecStep generates for every stratum of a program.

    The textual counterpart of Figure 4, for any program: per IDB, the
    init query and (for recursive strata) the UIE delta query.
    """
    from repro.core.compiler import QueryGenerator, mdelta_table, render_uie_sql

    analyzed, name, _ = _resolve_program(program)
    lines = [f"program {name}: {len(analyzed.strata)} strata"]
    for compiled in QueryGenerator(analyzed).compile():
        stratum = compiled.stratum
        kind = "recursive" if stratum.recursive else "non-recursive"
        lines.append("")
        lines.append(
            f"stratum {stratum.index} ({kind}): "
            f"{', '.join(sorted(stratum.predicates))}"
        )
        for predicate in compiled.predicates:
            init = predicate.init_query()
            if init is not None:
                lines.append(f"  init:  INSERT INTO {mdelta_table(predicate.predicate)} {init};")
            if stratum.recursive and predicate.delta_subqueries:
                lines.append(f"  delta: {render_uie_sql(predicate)}")
    return "\n".join(lines)


def _resolve_program(
    program: ProgramSpec | AnalyzedProgram | str,
) -> tuple[AnalyzedProgram, str, dict[str, tuple[str, ...]]]:
    if isinstance(program, ProgramSpec):
        return program.parse(), program.name, dict(program.edb_schemas)
    if isinstance(program, AnalyzedProgram):
        return program, program.program.name, {}
    analyzed = analyze_program(parse_program(program))
    return analyzed, analyzed.program.name, {}

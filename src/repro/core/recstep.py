"""The RecStep engine facade.

``RecStep`` is the top-level public API of this reproduction: give it a
Datalog program (source text or a :class:`~repro.programs.ProgramSpec`)
and EDB data, and it evaluates to fixpoint on the parallel relational
backend, returning an :class:`~repro.common.records.EvaluationResult`
with the fixpoint, simulated runtime, and memory/CPU traces.

Example::

    from repro import RecStep
    from repro.programs import get_program

    engine = RecStep()
    result = engine.evaluate(get_program("TC"), {"arc": edges}, dataset="G1K")
    print(result.sizes(), result.sim_seconds)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import (
    DatalogError,
    DivergenceGuardTripped,
    EvaluationCancelled,
    EvaluationTimeout,
    FaultRetriesExhausted,
    OutOfMemoryError,
    SpillError,
)
from repro.common.records import EvaluationResult
from repro.core.config import RecStepConfig
from repro.core.interpreter import SemiNaiveInterpreter
from repro.datalog import ast as dast
from repro.datalog.analyzer import AnalyzedProgram, analyze_program
from repro.datalog.magic import MagicRewrite, filter_answers, magic_rewrite
from repro.datalog.parser import parse_goal, parse_program
from repro.engine.database import Database
from repro.obs import CATEGORY_PROGRAM, ProfileReport
from repro.programs.library import ProgramSpec
from repro.common.rng import derive_seed
from repro.obs.counters import CounterRegistry
from repro.resilience.checkpoint import CheckpointState, edb_fingerprint
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    CompositeToken,
    DeadlineToken,
    DegradationController,
    FaultInjector,
    ResilienceContext,
    RetryPolicy,
    RuntimeGuard,
)


class RecStep:
    """General-purpose parallel in-memory Datalog engine (the paper's system).

    Args:
        config: evaluation knobs (see :class:`RecStepConfig`).
        token_factory: optional hook for embedding layers (the query
            service's watchdog): called with the evaluation's simulated
            clock, it returns an extra cancellation token polled at
            iteration boundaries alongside any configured deadline.
    """

    name = "RecStep"

    def __init__(
        self,
        config: RecStepConfig | None = None,
        token_factory=None,
    ) -> None:
        self.config = config or RecStepConfig()
        self.token_factory = token_factory
        self.last_database: Database | None = None
        self.last_interpreter: SemiNaiveInterpreter | None = None
        self.last_report = None
        #: Set by :meth:`materialize` around its inner evaluate so the
        #: database (including spill segments) outlives the call.
        self._keep_alive = False

    def evaluate(
        self,
        program: ProgramSpec | AnalyzedProgram | str,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
    ) -> EvaluationResult:
        """Evaluate ``program`` over ``edb_data`` to fixpoint.

        Args:
            program: a ProgramSpec, an analyzed program, or Datalog source.
            edb_data: relation name -> (rows, arity) int array.
            dataset: label recorded in the result (for the harness).

        Returns:
            EvaluationResult with status "ok", "oom", "timeout",
            "deadline"/"cancelled", "guard", or "fault" — the paper's
            outcome classes plus the resilience layer's (a failed run
            reports its partial simulated time, peak memory, and
            structured ``failure`` context with a ``kind``
            discriminator).
        """
        analyzed, program_name, edb_schemas = _resolve_program(program)
        resilience = self._build_resilience()
        database = Database(
            threads=self.config.threads,
            memory_budget=self.config.memory_budget,
            time_budget=self.config.time_budget,
            eost=self.config.eost,
            fast_dedup=self.config.fast_dedup,
            enforce_budgets=self.config.enforce_budgets,
            profile=self.config.profile,
            resilience=resilience,
            join_cache=self.config.join_cache,
            partitioned_exec=self.config.partitioned_exec,
            partitions=self.config.partitions,
            spill_dir=self.config.spill_dir,
            spill_disk_budget=self.config.spill_disk_budget,
        )
        tokens = []
        if self.config.deadline is not None:
            tokens.append(
                DeadlineToken(database.metrics.clock, self.config.deadline)
            )
        if self.token_factory is not None:
            extra = self.token_factory(database.metrics.clock)
            if extra is not None:
                tokens.append(extra)
        if tokens:
            resilience.token = tokens[0] if len(tokens) == 1 else CompositeToken(tokens)
        checkpoints = None
        if self.config.checkpoint_dir is not None:
            checkpoints = CheckpointManager(
                self.config.checkpoint_dir,
                every=self.config.checkpoint_every,
                metrics=database.metrics,
                profiler=database.profiler,
            )
        resume_state = None
        resume_skips = CounterRegistry()
        if self.config.resume_from is not None:
            # A snapshot only resumes the run that is actually being
            # re-evaluated: checkpoints stamped with a different EDB
            # fingerprint (the inputs were mutated since) are skipped
            # exactly like torn files.
            expected_edb = edb_fingerprint(
                {
                    name: np.asarray(edb_data[name], dtype=np.int64).reshape(
                        -1, analyzed.arities[name]
                    )
                    for name in sorted(analyzed.edb)
                    if name in edb_data
                }
            )
            resume_state = CheckpointManager.load(
                self.config.resume_from,
                counters=resume_skips,
                expected_edb=expected_edb,
            )
            if resume_state.program != program_name:
                raise CheckpointError(
                    f"checkpoint is for program {resume_state.program!r}, "
                    f"not {program_name!r}",
                    checkpoint_program=resume_state.program,
                    program=program_name,
                )
        self.last_database = database
        interpreter = self.last_interpreter = SemiNaiveInterpreter(
            database,
            analyzed,
            self.config,
            edb_schemas=edb_schemas,
            checkpoints=checkpoints,
            resume_from=resume_state,
        )
        result = EvaluationResult(
            engine=self.name, program=program_name, dataset=dataset
        )
        wall_start = time.perf_counter()
        try:
            # The program span wraps *everything* — EDB load, table setup,
            # the fixpoint, and result extraction — so the span forest
            # accounts for all simulated time (attributed_fraction ≈ 1).
            with database.profiler.span(
                f"program {program_name}",
                CATEGORY_PROGRAM,
                program=program_name,
                dataset=dataset,
            ):
                interpreter.load_edb(edb_data)
                interpreter.create_idb_tables()
                report = interpreter.run()
                # Extraction streams spilled prefixes (table_snapshot)
                # instead of faulting them in: a fixpoint that only fits
                # under budget *because* it spilled must not OOM while
                # being read out.
                fixpoint = {
                    name: {
                        tuple(int(value) for value in row)
                        for row in database.table_snapshot(name)
                    }
                    for name in sorted(analyzed.idb)
                }
        except OutOfMemoryError as error:
            result.status = "oom"
            result.failure = self._failure(error, interpreter)
        except EvaluationTimeout as error:
            result.status = "timeout"
            result.failure = self._failure(error, interpreter)
        except EvaluationCancelled as error:
            reason = error.context.get("reason", "cancelled")
            result.status = "deadline" if reason == "deadline" else "cancelled"
            result.failure = self._failure(error, interpreter)
        except DivergenceGuardTripped as error:
            result.status = "guard"
            result.failure = self._failure(error, interpreter)
        except FaultRetriesExhausted as error:
            result.status = "fault"
            result.failure = self._failure(error, interpreter)
        except SpillError as error:
            result.status = "storage"
            result.failure = self._failure(error, interpreter)
        else:
            result.iterations = report.iterations
            result.detail["pbme_strata"] = float(len(report.pbme_strata))
            result.tuples.update(fixpoint)
            self.last_report = report
        finally:
            if not self._keep_alive:
                database.release_spill()
        if result.failure is not None:
            # Every failed run carries a `kind` discriminator; errors that
            # set one at the raise site (the divergence guard's budget
            # name, a token's reason) win over the generic status.
            result.failure.setdefault(
                "kind", result.failure.get("reason", result.status)
            )
        result.wall_seconds = time.perf_counter() - wall_start
        result.sim_seconds = database.sim_seconds
        result.peak_memory_bytes = database.peak_memory_bytes
        result.peak_transient_bytes = database.metrics.peak_transient_bytes
        result.memory_trace = database.metrics.memory_trace
        result.cpu_trace = database.metrics.cpu_trace
        if (
            resilience.active
            or checkpoints is not None
            or resume_state is not None
            or database.spill is not None
        ):
            recap = resilience.summary()
            if database.spill is not None:
                recap["spill"] = {
                    "peak_spilled_bytes": database.metrics.peak_spilled_bytes,
                    "capacity_exhausted": database.spill.capacity_exhausted,
                }
                if database.profiler.enabled:
                    counters = database.profiler.counters
                    recap["spill"].update(
                        tables_spilled=counters.get("spill.tables_spilled"),
                        segments_written=counters.get("spill.segments_written"),
                        segment_reads=counters.get("spill.segment_reads"),
                        fault_ins=counters.get("spill.fault_ins"),
                        torn_quarantined=counters.get("spill.torn_quarantined"),
                    )
            if checkpoints is not None:
                recap["checkpoints_written"] = checkpoints.written
                if checkpoints.last_path is not None:
                    recap["last_checkpoint"] = str(checkpoints.last_path)
            if resume_state is not None:
                recap["resumed_from"] = {
                    "stratum": resume_state.stratum,
                    "iteration": resume_state.iteration,
                }
                for skip_counter in (
                    "checkpoint_corrupt_skipped",
                    "checkpoint_stale_skipped",
                ):
                    skipped = resume_skips.get(skip_counter)
                    if skipped:
                        recap[skip_counter] = skipped
                        database.profiler.counters.inc(skip_counter, skipped)
            result.resilience = recap
        if database.profiler.enabled:
            result.profile = ProfileReport.from_profiler(
                database.profiler, database.sim_seconds
            )
        return result

    def answer(
        self,
        program: ProgramSpec | AnalyzedProgram | str,
        goal: dast.Atom | str,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
        rewrite: MagicRewrite | None = None,
    ) -> EvaluationResult:
        """Answer a point query, evaluating only the demanded cone.

        ``goal`` is a goal atom (or its source text, e.g. ``"tc(5, x)"``)
        whose bound constants drive a magic-set rewrite of ``program``;
        the rewritten program runs through the ordinary semi-naive
        pipeline and the result's ``tuples`` holds exactly the goal
        predicate's answer set — tuple-identical to post-filtering a full
        materialization by the same pattern. Goals with no bound
        constants (and goals on predicates the rewrite must not restrict)
        degenerate to evaluating the unrewritten program; goals on EDB
        relations are answered by filtering the input directly.

        ``rewrite`` lets callers that already planned the goal (the query
        service prices admission on the cone estimate) skip re-planning.
        """
        analyzed, program_name, _ = _resolve_program(program)
        goal_atom = parse_goal(goal) if isinstance(goal, str) else goal
        if rewrite is None:
            rewrite = magic_rewrite(analyzed, goal_atom)
        if goal_atom.predicate in analyzed.edb:
            arity = analyzed.arities[goal_atom.predicate]
            rows = np.asarray(
                edb_data[goal_atom.predicate], dtype=np.int64
            ).reshape(-1, arity)
            result = EvaluationResult(
                engine=self.name, program=program_name, dataset=dataset
            )
            result.tuples[goal_atom.predicate] = filter_answers(
                (tuple(row) for row in rows.tolist()), goal_atom
            )
            result.detail["magic_rewritten"] = 0.0
            result.detail["answer_rows"] = float(
                len(result.tuples[goal_atom.predicate])
            )
            return result
        target = (
            analyze_program(rewrite.program) if rewrite.rewritten else analyzed
        )
        result = self.evaluate(target, edb_data, dataset=dataset)
        result.program = program_name
        if self.last_database is not None:
            counters = self.last_database.profiler.counters
            if rewrite.rewritten:
                counters.inc("magic.rewrites")
                if rewrite.pinned:
                    counters.inc("magic.pinned_predicates", len(rewrite.pinned))
            else:
                counters.inc("magic.degenerate")
        result.detail["magic_rewritten"] = 1.0 if rewrite.rewritten else 0.0
        result.detail["magic_cone_predicates"] = float(len(rewrite.cone))
        if result.status == "ok":
            answers = filter_answers(
                result.tuples.get(rewrite.answer_predicate, ()), goal_atom
            )
            result.tuples = {goal_atom.predicate: answers}
            result.detail["answer_rows"] = float(len(answers))
        return result

    def materialize(
        self,
        program: ProgramSpec | AnalyzedProgram | str,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
    ) -> "MaterializedFixpoint":
        """Evaluate to fixpoint and keep it live for incremental updates.

        Unlike :meth:`evaluate`, the backing database (tables, join
        cache, spill segments) survives the call; the returned
        :class:`MaterializedFixpoint` serves ``maintain()`` batches from
        the warm state until ``release()``. A failed evaluation still
        returns a view — poisoned, so batch submissions fail fast — with
        the failure recorded in ``view.result``.
        """
        analyzed, program_name, _ = _resolve_program(program)
        self._keep_alive = True
        try:
            result = self.evaluate(program, edb_data, dataset)
        finally:
            self._keep_alive = False
        view = MaterializedFixpoint(
            engine_name=self.name,
            analyzed=analyzed,
            program=program_name,
            dataset=dataset,
            database=self.last_database,
            interpreter=self.last_interpreter,
            result=result,
        )
        if result.status != "ok":
            view.status = "poisoned"
        return view

    def _build_resilience(self) -> ResilienceContext:
        """Assemble the resilience context this config asks for."""
        injector = None
        if self.config.fault_seed is not None:
            injector = FaultInjector(self.config.fault_seed, rate=self.config.fault_rate)
        guard = None
        if (
            self.config.max_iterations is not None
            or self.config.max_total_rows is not None
        ):
            guard = RuntimeGuard(
                max_iterations=self.config.max_iterations,
                max_total_rows=self.config.max_total_rows,
            )
        # Jitter only engages under fault injection (where concurrent
        # retriers exist to desynchronize); it shares the fault seed so
        # chaos runs stay bit-reproducible.
        jitter_seed = (
            derive_seed(self.config.fault_seed, "retry-jitter")
            if self.config.fault_seed is not None
            else None
        )
        return ResilienceContext(
            injector=injector,
            retry=RetryPolicy(
                max_attempts=self.config.retries,
                backoff_base=self.config.retry_backoff,
                jitter_seed=jitter_seed,
            ),
            degradation=DegradationController(enabled=self.config.degradation),
            guard=guard,
        )

    @staticmethod
    def _failure(error, interpreter: SemiNaiveInterpreter) -> dict:
        """Structured failure context, annotated with the loop position."""
        error.add_context(
            stratum=interpreter.current_stratum if interpreter.current_stratum >= 0 else None,
            iteration=interpreter.current_iteration
            if interpreter.current_iteration >= 0
            else None,
        )
        return error.to_dict()


@dataclass
class MaintenanceResult:
    """Outcome of one maintenance batch against a materialized fixpoint.

    Shape-compatible with :class:`~repro.common.records.EvaluationResult`
    where the query service touches results (``status``, ``iterations``,
    ``sim_seconds``, ``sizes()``, ``resilience``, ``failure``), so update
    sessions flow through the same finalize/telemetry paths as queries.
    """

    engine: str
    program: str
    dataset: str
    status: str = "ok"
    iterations: int = 0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    failure: dict | None = None
    resilience: dict = field(default_factory=dict)
    #: EDB relation → effective rows applied ({"inserted", "deleted"}).
    applied: dict = field(default_factory=dict)
    #: IDB relation → net fixpoint change ({"inserted", "deleted"}).
    idb_deltas: dict = field(default_factory=dict)
    #: Total net rows moved by the batch (EDB + IDB, both directions).
    delta_rows: int = 0
    idb_sizes: dict = field(default_factory=dict)

    def sizes(self) -> dict[str, int]:
        return dict(self.idb_sizes)


class MaterializedFixpoint:
    """A live fixpoint: database + warm interpreter, accepting updates.

    Produced by :meth:`RecStep.materialize`. ``maintain()`` applies one
    EDB batch and re-establishes the fixpoint incrementally; any
    evaluation-class failure mid-maintenance poisons the view (its
    tables may hold mixed state), after which further batches fail fast
    until the view is released.
    """

    def __init__(
        self,
        engine_name: str,
        analyzed: AnalyzedProgram,
        program: str,
        dataset: str,
        database: Database,
        interpreter: SemiNaiveInterpreter,
        result: EvaluationResult,
    ) -> None:
        self.engine_name = engine_name
        self.analyzed = analyzed
        self.program = program
        self.dataset = dataset
        self.database = database
        self.interpreter = interpreter
        #: The materializing evaluation's result (the cold-start cost).
        self.result = result
        #: "ready" | "poisoned" | "released".
        self.status = "ready"
        self.updates_applied = 0

    def sizes(self) -> dict[str, int]:
        return {
            name: self.database.table_size(name)
            for name in sorted(self.analyzed.idb)
        }

    def fixpoint(self) -> dict[str, set[tuple[int, ...]]]:
        """The current maintained fixpoint as sets of tuples."""
        return {
            name: {
                tuple(int(value) for value in row)
                for row in self.database.table_snapshot(name)
            }
            for name in sorted(self.analyzed.idb)
        }

    def maintain(
        self,
        inserts: dict[str, np.ndarray] | None = None,
        deletes: dict[str, np.ndarray] | None = None,
        token=None,
    ) -> MaintenanceResult:
        """Apply one EDB update batch; see ``SemiNaiveInterpreter.maintain``.

        ``token`` (a duck-typed cancellation token) is installed on the
        view's resilience context for the duration of the batch, so a
        stuck rederivation heartbeats and cancels exactly like ``run()``
        — the watchdog covers maintenance, not just cold starts.
        """
        result = MaintenanceResult(
            engine=self.engine_name, program=self.program, dataset=self.dataset
        )
        if self.status != "ready":
            result.status = "fault"
            result.failure = {
                "error": "ViewUnavailable",
                "kind": f"view-{self.status}",
                "view_status": self.status,
            }
            return result
        database = self.database
        sim_start = database.sim_seconds
        wall_start = time.perf_counter()
        previous_token = database.resilience.token
        if token is not None:
            database.resilience.token = token
        poison = True
        try:
            report = self.interpreter.maintain(inserts or {}, deletes or {})
        except DatalogError as error:
            # Batch validation fails before any mutation: the view is
            # still exact, only this request is bad.
            poison = False
            result.status = "fault"
            to_dict = getattr(error, "to_dict", None)
            result.failure = (
                to_dict()
                if callable(to_dict)
                else {"error": type(error).__name__, "message": str(error)}
            )
        except OutOfMemoryError as error:
            result.status = "oom"
            result.failure = RecStep._failure(error, self.interpreter)
        except EvaluationTimeout as error:
            result.status = "timeout"
            result.failure = RecStep._failure(error, self.interpreter)
        except EvaluationCancelled as error:
            reason = error.context.get("reason", "cancelled")
            result.status = "deadline" if reason == "deadline" else "cancelled"
            result.failure = RecStep._failure(error, self.interpreter)
        except DivergenceGuardTripped as error:
            result.status = "guard"
            result.failure = RecStep._failure(error, self.interpreter)
        except FaultRetriesExhausted as error:
            result.status = "fault"
            result.failure = RecStep._failure(error, self.interpreter)
        except SpillError as error:
            result.status = "storage"
            result.failure = RecStep._failure(error, self.interpreter)
        else:
            poison = False
            result.iterations = report.iterations
            result.applied = report.applied
            result.idb_deltas = report.idb_deltas
            result.delta_rows = report.delta_rows()
            self.updates_applied += 1
        database.resilience.token = previous_token
        if poison:
            self.status = "poisoned"
        if result.failure is not None:
            result.failure.setdefault(
                "kind", result.failure.get("reason", result.status)
            )
        result.sim_seconds = database.sim_seconds - sim_start
        result.wall_seconds = time.perf_counter() - wall_start
        result.idb_sizes = self.sizes()
        return result

    def snapshot_state(self, wal_seqno: int = 0) -> CheckpointState:
        """Snapshot the maintained fixpoint as a durable base checkpoint.

        Unlike in-evaluation checkpoints the snapshot carries the EDB
        tables too (under ``edb:`` keys), so recovery is self-contained:
        the base file alone rebuilds the view without the original input
        arrays. ``stratum_complete`` is set (iteration ``-1``), which
        keeps the file name constant across compactions — ``os.replace``
        is the atomic commit.
        """
        from repro.core import compiler

        database = self.database
        tables: dict[str, np.ndarray] = {
            f"full:{name}": database.table_snapshot(compiler.full_table(name))
            for name in sorted(self.analyzed.idb)
        }
        for name in sorted(self.analyzed.edb):
            tables[f"edb:{name}"] = database.table_snapshot(name)
        report = self.interpreter.report
        return CheckpointState(
            program=self.program,
            stratum=len(self.analyzed.strata) - 1,
            iteration=-1,
            tables=tables,
            iterations_total=report.iterations,
            pbme_strata=list(report.pbme_strata),
            sim_seconds=database.sim_seconds,
            edb_fingerprint=self.interpreter.edb_fingerprint,
            wal_seqno=wal_seqno,
        )

    def release(self) -> None:
        """Free the view's off-memory footprint; the view stops serving."""
        if self.status == "released":
            return
        self.status = "released"
        self.database.release_spill()


def explain_program(program: ProgramSpec | AnalyzedProgram | str) -> str:
    """Render the SQL RecStep generates for every stratum of a program.

    The textual counterpart of Figure 4, for any program: per IDB, the
    init query and (for recursive strata) the UIE delta query.
    """
    from repro.core.compiler import QueryGenerator, mdelta_table, render_uie_sql

    analyzed, name, _ = _resolve_program(program)
    lines = [f"program {name}: {len(analyzed.strata)} strata"]
    for compiled in QueryGenerator(analyzed).compile():
        stratum = compiled.stratum
        kind = "recursive" if stratum.recursive else "non-recursive"
        lines.append("")
        lines.append(
            f"stratum {stratum.index} ({kind}): "
            f"{', '.join(sorted(stratum.predicates))}"
        )
        for predicate in compiled.predicates:
            init = predicate.init_query()
            if init is not None:
                lines.append(f"  init:  INSERT INTO {mdelta_table(predicate.predicate)} {init};")
            if stratum.recursive and predicate.delta_subqueries:
                lines.append(f"  delta: {render_uie_sql(predicate)}")
    return "\n".join(lines)


def _resolve_program(
    program: ProgramSpec | AnalyzedProgram | str,
) -> tuple[AnalyzedProgram, str, dict[str, tuple[str, ...]]]:
    if isinstance(program, ProgramSpec):
        return program.parse(), program.name, dict(program.edb_schemas)
    if isinstance(program, AnalyzedProgram):
        return program, program.program.name, {}
    analyzed = analyze_program(parse_program(program))
    return analyzed, analyzed.program.name, {}

"""Incremental view maintenance: serve EDB churn from the warm fixpoint.

``MaintenanceRun`` applies one batch of EDB insertions/deletions to a
database that already holds a program's fixpoint and re-establishes that
fixpoint without recomputing from scratch. Strata are revisited in
topological order and each is maintained by the cheapest sound method
for its shape:

* **skip** — none of the stratum's body relations changed; its fulls are
  still exact.
* **counting** — non-recursive, negation- and aggregate-free strata keep
  a derivation-count table (``<pred>_ivm_cnt``). A batch contributes
  signed count deltas via the standard bag decomposition
  ``Δ(A ⋈ B) = ΔA ⋈ B_old + A_new ⋈ ΔB``: position ``p`` reads the
  batch table, positions before it the new state, positions after it
  the old snapshot. Tuples whose count crosses zero enter/leave the
  full relation.
* **DRed** — recursive monotone strata over-delete (every derivation
  touching a deleted tuple, to a fixpoint over old state), apply the
  deletions, then warm-start the ordinary semi-naive loop with a seed Δ
  of rederivation candidates plus insertion-derived tuples. When the
  batch carries no deletions into the stratum the over-deletion and the
  O(|full|) rederivation scan are skipped entirely — insert-only
  maintenance costs only the delta propagation.
* **recompute** — strata with negation or aggregation fall back to a
  from-scratch re-evaluation of just that stratum (inputs are already
  maintained), reusing ``_run_stratum`` unchanged.

Everything runs through the ``Database`` primitives, so maintenance is
metered, spill-aware, fault-injectable and cancellable exactly like a
cold evaluation; the join-state cache is kept warm across maintenance
(appends extend indexes incrementally, deletions evict via the
unconditional epoch bump).

Batch semantics: insertions and deletions are sets; a tuple listed in
both is a no-op if already present and an insertion if absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import DatalogError
from repro.core import compiler
from repro.core.compiler import CompiledPredicate, CompiledStratum
from repro.core.setdiff_policy import DsdPolicy
from repro.engine import kernels
from repro.obs import CATEGORY_ITERATION, CATEGORY_STRATUM
from repro.sql import ast as sast

#: How a stratum was (or would be) maintained.
CLASS_SKIP = "skip"
CLASS_COUNTING = "counting"
CLASS_DRED = "dred"
CLASS_RECOMPUTE = "recompute"


@dataclass
class MaintenanceReport:
    """What one maintenance batch did."""

    #: Semi-naive iterations spent across all maintained strata.
    iterations: int = 0
    #: Stratum index → maintenance class applied this batch.
    strata: dict[int, str] = field(default_factory=dict)
    #: EDB relation → effective tuples applied ({"inserted", "deleted"}).
    applied: dict[str, dict[str, int]] = field(default_factory=dict)
    #: IDB relation → net fixpoint change ({"inserted", "deleted"}).
    idb_deltas: dict[str, dict[str, int]] = field(default_factory=dict)

    def delta_rows(self) -> int:
        """Total net rows the batch moved (EDB and IDB, both directions)."""
        total = 0
        for sizes in (*self.applied.values(), *self.idb_deltas.values()):
            total += sizes["inserted"] + sizes["deleted"]
        return total


def classify_stratum(compiled: CompiledStratum) -> str:
    """The maintenance class a stratum's *shape* admits (batch-independent)."""
    if any(rule.negative_atoms() for rule in compiled.stratum.rules) or any(
        predicate.aggregate for predicate in compiled.predicates
    ):
        return CLASS_RECOMPUTE
    return CLASS_DRED if compiled.stratum.recursive else CLASS_COUNTING


class MaintenanceRun:
    """One maintenance batch against a warm interpreter.

    The run borrows the interpreter's private machinery (generator,
    policies, ``_evaluate_predicate``/``_run_stratum``) — this module is
    the interpreter's maintenance half, split out for size.
    """

    def __init__(
        self,
        interpreter,
        inserts: dict[str, np.ndarray],
        deletes: dict[str, np.ndarray],
    ) -> None:
        self._interp = interpreter
        self._db = interpreter._db
        self._analyzed = interpreter._analyzed
        self._generator = interpreter._generator
        self._inserts = inserts
        self._deletes = deletes
        #: relation → (net inserted rows, net deleted rows), EDB and IDB.
        self._net: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: Work tables to drop when the batch is done.
        self._work_tables: list[str] = []
        self.report = MaintenanceReport()

    # -- top level ---------------------------------------------------------

    def run(self) -> MaintenanceReport:
        counters = self._db.profiler.counters
        counters.inc("ivm.maintain_runs")
        compiled = self._generator.compile()
        self._classes = {cs.stratum.index: classify_stratum(cs) for cs in compiled}
        effective = self._effective_edb_batch()
        #: Deletions anywhere in the batch, or a dirty recompute stratum
        #: (negation can delete downstream even from pure insertions):
        #: only then do DRed readers need old-state snapshots.
        dirty = self._dirty_closure(compiled, effective)
        self._deletes_possible = any(
            dels.shape[0] for _, dels in effective.values()
        ) or any(
            self._classes[cs.stratum.index] == CLASS_RECOMPUTE
            and (cs.stratum.predicates & dirty)
            for cs in compiled
        )
        self._init_count_tables(compiled, dirty)
        self._apply_edb_batch(compiled, effective)
        try:
            for cs in compiled:
                index = cs.stratum.index
                if not self._inputs_changed(cs):
                    self.report.strata[index] = CLASS_SKIP
                    counters.inc("ivm.strata_skipped")
                    continue
                self._db.resilience.check_cancelled(stratum=index)
                cls = self._classes[index]
                self.report.strata[index] = cls
                self._snapshot_before(cs, compiled)
                with self._db.profiler.span(
                    f"maintain stratum {index}",
                    CATEGORY_STRATUM,
                    predicates=sorted(cs.stratum.predicates),
                    maintenance=cls,
                ):
                    if cls == CLASS_COUNTING:
                        counters.inc("ivm.strata_counting")
                        self._maintain_counting(cs)
                    elif cls == CLASS_DRED:
                        counters.inc("ivm.strata_dred")
                        self._maintain_dred(cs)
                    else:
                        counters.inc("ivm.strata_recomputed")
                        self._recompute(cs)
                self._publish_deltas(cs)
        finally:
            self._cleanup()
        self._db.commit()
        return self.report

    # -- batch normalization and EDB mutation ------------------------------

    def _effective_edb_batch(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Normalize the request against the current EDB contents."""
        effective: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in sorted(set(self._inserts) | set(self._deletes)):
            if name not in self._analyzed.edb:
                raise DatalogError(f"unknown EDB relation {name!r} in update batch")
            arity = self._analyzed.arities[name]
            ins = self._as_rows(self._inserts.get(name), arity)
            dels = self._as_rows(self._deletes.get(name), arity)
            existing = self._db.table_array(name)
            if dels.shape[0]:
                if ins.shape[0]:
                    dels = kernels.rows_difference(dels, ins)
                if dels.shape[0]:
                    dels = kernels.rows_intersection(dels, existing)
            if ins.shape[0]:
                ins = kernels.rows_difference(ins, existing)
            if ins.shape[0] or dels.shape[0]:
                effective[name] = (ins, dels)
        return effective

    @staticmethod
    def _as_rows(rows, arity: int) -> np.ndarray:
        if rows is None:
            return np.empty((0, arity), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64).reshape(-1, arity)

    def _apply_edb_batch(
        self,
        compiled: list[CompiledStratum],
        effective: dict[str, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        for name, (ins, dels) in effective.items():
            self._net[name] = (ins, dels)
            if self._need_old(name, compiled, from_stratum=0):
                self._make_work_table(
                    compiler.ivm_old_table(name), self._db.table_array(name)
                )
            if dels.shape[0]:
                self._db.delete_rows(name, dels)
                self._make_work_table(compiler.ivm_del_table(name), dels)
            if ins.shape[0]:
                self._db.append_rows(name, ins)
                self._make_work_table(compiler.ivm_ins_table(name), ins)
            self.report.applied[name] = {
                "inserted": int(ins.shape[0]),
                "deleted": int(dels.shape[0]),
            }

    def _publish_deltas(self, cs: CompiledStratum) -> None:
        """Expose a maintained stratum's net deltas to downstream strata."""
        for predicate in cs.predicates:
            name = predicate.predicate
            ins, dels = self._net.get(name, (None, None))
            if ins is None:
                continue
            if ins.shape[0]:
                self._make_work_table(compiler.ivm_ins_table(name), ins)
            if dels.shape[0]:
                self._make_work_table(compiler.ivm_del_table(name), dels)
            self.report.idb_deltas[name] = {
                "inserted": int(ins.shape[0]),
                "deleted": int(dels.shape[0]),
            }

    # -- change tracking and old-state snapshots ---------------------------

    def _changed(self, name: str) -> bool:
        entry = self._net.get(name)
        return entry is not None and bool(entry[0].shape[0] or entry[1].shape[0])

    def _body_predicates(self, cs: CompiledStratum, positive_only: bool = False):
        for rule in cs.stratum.rules:
            for atom in rule.positive_atoms():
                yield atom.predicate
            if not positive_only:
                for atom in rule.negative_atoms():
                    yield atom.predicate

    def _inputs_changed(self, cs: CompiledStratum) -> bool:
        return any(self._changed(name) for name in self._body_predicates(cs))

    def _dirty_closure(self, compiled, effective) -> set[str]:
        """Relations that *may* change this batch (reachability, not data)."""
        dirty = {name for name in effective}
        for cs in compiled:
            if any(name in dirty for name in self._body_predicates(cs)):
                dirty |= cs.stratum.predicates
        return dirty

    def _need_old(
        self, name: str, compiled: list[CompiledStratum], from_stratum: int
    ) -> bool:
        """Does a downstream stratum read ``name``'s pre-batch state?

        Counting readers always evaluate minus/plus rows against old
        state at later join positions; DRed readers only consult old
        state while over-deleting, which a deletion-free batch never
        does.
        """
        for cs in compiled:
            if cs.stratum.index < from_stratum:
                continue
            cls = self._classes[cs.stratum.index]
            if cls == CLASS_COUNTING or (cls == CLASS_DRED and self._deletes_possible):
                if any(
                    read == name
                    for read in self._body_predicates(cs, positive_only=True)
                ):
                    return True
        return False

    def _snapshot_before(self, cs: CompiledStratum, compiled) -> None:
        """Snapshot this stratum's relations before mutating them."""
        for predicate in cs.predicates:
            name = predicate.predicate
            if self._need_old(name, compiled, from_stratum=cs.stratum.index + 1):
                self._make_work_table(
                    compiler.ivm_old_table(name), self._db.table_array(name)
                )

    # -- shared helpers ----------------------------------------------------

    def _make_work_table(self, table: str, rows: np.ndarray) -> None:
        self._db.load_table(table, compiler.columns_for(rows.shape[1]), rows)
        self._work_tables.append(table)

    def _fresh_table(self, name: str, columns) -> None:
        if name in self._db.catalog:
            self._db.execute_ast(sast.DropTable(name))
        self._db.create_table(name, columns)

    def _eval_rows(self, select: sast.Select, arity: int) -> np.ndarray:
        """Evaluate one subquery to raw (bag) rows."""
        rows = self._db.execute_ast(sast.SelectStatement(select))
        if rows is None or rows.size == 0:
            return np.empty((0, arity), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64).reshape(-1, arity)

    @staticmethod
    def _group_sum(tuples: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if tuples.shape[0] == 0:
            return tuples, counts.astype(np.int64)
        uniq, inverse = np.unique(tuples, axis=0, return_inverse=True)
        sums = np.bincount(
            inverse.reshape(-1), weights=counts, minlength=uniq.shape[0]
        ).astype(np.int64)
        return uniq, sums

    def _cleanup(self) -> None:
        for table in self._work_tables:
            if table in self._db.catalog:
                self._db.execute_ast(sast.DropTable(table))
        self._work_tables.clear()

    # -- counting maintenance ----------------------------------------------

    def _init_count_tables(self, compiled: list[CompiledStratum], dirty: set[str]) -> None:
        """Lazily build count tables for counting strata this batch may touch.

        Runs *before* any mutation, so the initial counts describe the
        pre-batch state the signed deltas are applied to. One O(stratum)
        evaluation on first touch; the table persists across batches.
        """
        tracked = self._interp._ivm_count_tables
        for cs in compiled:
            if self._classes[cs.stratum.index] != CLASS_COUNTING:
                continue
            if not (cs.stratum.predicates & dirty):
                continue
            for predicate in cs.predicates:
                name = predicate.predicate
                cnt = compiler.ivm_count_table(name)
                if cnt in tracked:
                    continue
                parts = [
                    self._eval_rows(select, predicate.arity)
                    for select in predicate.init_subqueries
                ]
                if predicate.facts:
                    parts.append(np.asarray(predicate.facts, dtype=np.int64))
                rows = (
                    np.concatenate(parts)
                    if parts
                    else np.empty((0, predicate.arity), dtype=np.int64)
                )
                tuples, counts = self._group_sum(rows, np.ones(rows.shape[0]))
                self._db.load_table(
                    cnt,
                    (*compiler.columns_for(predicate.arity), "cnt"),
                    np.column_stack([tuples, counts]) if tuples.shape[0] else
                    np.empty((0, predicate.arity + 1), dtype=np.int64),
                )
                tracked.add(cnt)

    def _maintain_counting(self, cs: CompiledStratum) -> None:
        for predicate in cs.predicates:
            # Heartbeat per predicate: counting maintenance of a wide
            # stratum must stay cancellable like every other loop here.
            self._db.resilience.check_cancelled(
                stratum=cs.stratum.index, phase="ivm-counting"
            )
            name = predicate.predicate
            arity = predicate.arity
            cnt_table = compiler.ivm_count_table(name)
            stored = self._db.table_array(cnt_table)
            old_tuples = stored[:, :arity].astype(np.int64, copy=True)
            old_counts = stored[:, arity].astype(np.int64, copy=True)

            delta_tuples = [old_tuples]
            delta_counts = [old_counts]
            for rule in self._analyzed.rules_for(name, cs.stratum):
                if rule.is_fact:
                    continue
                positive = rule.positive_atoms()
                for p, atom in enumerate(positive):
                    source = atom.predicate
                    if not self._changed(source):
                        continue
                    ins, dels = self._net[source]
                    for sign, batch, batch_table in (
                        (1, ins, compiler.ivm_ins_table(source)),
                        (-1, dels, compiler.ivm_del_table(source)),
                    ):
                        if batch.shape[0] == 0:
                            continue
                        overrides = {p: batch_table}
                        for q, other in enumerate(positive):
                            # Positions before p read the new state,
                            # positions after it the pre-batch state —
                            # the exact bag-delta decomposition.
                            if q > p and self._changed(other.predicate):
                                overrides[q] = compiler.ivm_old_table(other.predicate)
                        rows = self._eval_rows(
                            self._generator.compile_rule_with_sources(rule, overrides),
                            arity,
                        )
                        if rows.shape[0]:
                            delta_tuples.append(rows)
                            delta_counts.append(
                                np.full(rows.shape[0], sign, dtype=np.int64)
                            )

            tuples, counts = self._group_sum(
                np.concatenate(delta_tuples), np.concatenate(delta_counts)
            )
            keep = counts > 0
            new_tuples, new_counts = tuples[keep], counts[keep]
            appear = kernels.rows_difference(new_tuples, old_tuples)
            vanish = kernels.rows_difference(old_tuples, new_tuples)
            if appear.shape[0]:
                self._db.append_rows(name, appear)
            if vanish.shape[0]:
                self._db.delete_rows(name, vanish)
            self._db.replace_rows(
                cnt_table,
                np.column_stack([new_tuples, new_counts])
                if new_tuples.shape[0]
                else np.empty((0, arity + 1), dtype=np.int64),
            )
            self._net[name] = (appear, vanish)

    # -- DRed maintenance --------------------------------------------------

    def _maintain_dred(self, cs: CompiledStratum) -> None:
        stratum = cs.stratum
        overdel = self._overdelete(cs) if self._stratum_sees_deletes(cs) else {
            p.predicate: np.empty((0, p.arity), dtype=np.int64) for p in cs.predicates
        }
        counters = self._db.profiler.counters
        for name, rows in overdel.items():
            if rows.shape[0]:
                self._db.delete_rows(name, rows)
                counters.inc("ivm.overdeleted_rows", int(rows.shape[0]))

        # Warm-start semi-naive: fresh Δ/mΔ tables, seeds into mΔ.
        for predicate in cs.predicates:
            columns = compiler.columns_for(predicate.arity)
            self._fresh_table(compiler.delta_table(predicate.predicate), columns)
            self._fresh_table(compiler.mdelta_table(predicate.predicate), columns)
            self._interp._policies[predicate.predicate] = DsdPolicy(
                enabled=self._interp._config.dsd
            )
        for predicate in cs.predicates:
            seeds = self._dred_seeds(cs, predicate, overdel[predicate.predicate])
            if seeds.shape[0]:
                self._db.append_rows(
                    compiler.mdelta_table(predicate.predicate), seeds
                )

        appended = {
            p.predicate: [np.empty((0, p.arity), dtype=np.int64)]
            for p in cs.predicates
        }
        iteration = 0
        from repro.core.interpreter import IterationRecord

        while True:
            record = IterationRecord(stratum=stratum.index, iteration=iteration)
            with self._db.profiler.span(
                f"maintain iteration {iteration}", CATEGORY_ITERATION
            ) as span:
                for predicate in cs.predicates:
                    query = None if iteration == 0 else predicate.delta_query()
                    self._interp._evaluate_predicate(
                        predicate, query, record, init=iteration == 0
                    )
                span.set(delta_sizes=dict(record.delta_sizes))
            for predicate in cs.predicates:
                delta = self._db.table_array(
                    compiler.delta_table(predicate.predicate)
                )
                if delta.shape[0]:
                    appended[predicate.predicate].append(delta)
            self.report.iterations += 1
            self._db.note_iteration(
                stratum.index,
                iteration,
                sum(record.delta_sizes.values()),
                span.duration,
            )
            if all(size == 0 for size in record.delta_sizes.values()):
                break
            self._db.resilience.check_cancelled(
                stratum=stratum.index, iteration=iteration
            )
            iteration += 1

        for predicate in cs.predicates:
            name = predicate.predicate
            added = kernels.unique_rows(np.concatenate(appended[name]))
            removed = overdel[name]
            rederived = kernels.rows_intersection(added, removed)
            if rederived.shape[0]:
                counters.inc("ivm.rederived_rows", int(rederived.shape[0]))
            self._net[name] = (
                kernels.rows_difference(added, removed),
                kernels.rows_difference(removed, added),
            )
        self._interp._drop_working_tables(cs.predicates)
        # Unused by later strata; members' reads all happened above.
        for predicate in cs.predicates:
            odelta = compiler.ivm_odelta_table(predicate.predicate)
            if odelta in self._db.catalog:
                self._db.execute_ast(sast.DropTable(odelta))

    def _stratum_sees_deletes(self, cs: CompiledStratum) -> bool:
        return any(
            self._changed(name) and self._net[name][1].shape[0]
            for name in self._body_predicates(cs, positive_only=True)
        )

    def _old_source_overrides(
        self, positive, skip: int, members: set[str]
    ) -> dict[int, str]:
        """Point non-Δ positions of an over-deletion subquery at old state.

        Same-stratum relations still *are* old state (deletions are
        applied only after the fixpoint); changed lower relations read
        their snapshots.
        """
        overrides: dict[int, str] = {}
        for q, atom in enumerate(positive):
            if q == skip or atom.predicate in members:
                continue
            if self._changed(atom.predicate):
                overrides[q] = compiler.ivm_old_table(atom.predicate)
        return overrides

    def _overdelete(self, cs: CompiledStratum) -> dict[str, np.ndarray]:
        """DRed phase one: the over-deletion fixpoint, evaluated on old state."""
        stratum = cs.stratum
        members = stratum.predicates
        arity_of = {p.predicate: p.arity for p in cs.predicates}
        overdel = {
            name: np.empty((0, arity_of[name]), dtype=np.int64) for name in arity_of
        }

        # Seeds: derivations using a deleted lower-stratum tuple.
        seeds = {name: [overdel[name]] for name in arity_of}
        for rule in stratum.rules:
            if rule.is_fact:
                continue
            positive = rule.positive_atoms()
            for p, atom in enumerate(positive):
                source = atom.predicate
                if source in members or not self._changed(source):
                    continue
                if self._net[source][1].shape[0] == 0:
                    continue
                overrides = self._old_source_overrides(positive, p, members)
                overrides[p] = compiler.ivm_del_table(source)
                seeds[rule.head.predicate].append(
                    self._eval_rows(
                        self._generator.compile_rule_with_sources(rule, overrides),
                        arity_of[rule.head.predicate],
                    )
                )

        frontier: dict[str, np.ndarray] = {}
        for name in arity_of:
            fresh = kernels.unique_rows(np.concatenate(seeds[name]))
            overdel[name] = fresh
            frontier[name] = fresh
            self._make_work_table(compiler.ivm_odelta_table(name), fresh)

        # Propagate through the stratum's own recursion, still on old state.
        round_index = 0
        while any(rows.shape[0] for rows in frontier.values()):
            round_index += 1
            self._db.resilience.check_cancelled(
                stratum=stratum.index, iteration=round_index
            )
            derived = {
                name: [np.empty((0, arity_of[name]), dtype=np.int64)]
                for name in arity_of
            }
            for rule in stratum.rules:
                if rule.is_fact:
                    continue
                positive = rule.positive_atoms()
                for p, atom in enumerate(positive):
                    if atom.predicate not in members:
                        continue
                    if frontier[atom.predicate].shape[0] == 0:
                        continue
                    overrides = self._old_source_overrides(positive, p, members)
                    overrides[p] = compiler.ivm_odelta_table(atom.predicate)
                    derived[rule.head.predicate].append(
                        self._eval_rows(
                            self._generator.compile_rule_with_sources(rule, overrides),
                            arity_of[rule.head.predicate],
                        )
                    )
            for name in arity_of:
                fresh = kernels.rows_difference(
                    np.concatenate(derived[name]), overdel[name]
                )
                frontier[name] = fresh
                if fresh.shape[0]:
                    overdel[name] = np.concatenate([overdel[name], fresh])
                self._db.replace_rows(compiler.ivm_odelta_table(name), fresh)
        return overdel

    def _dred_seeds(
        self, cs: CompiledStratum, predicate: CompiledPredicate, removed: np.ndarray
    ) -> np.ndarray:
        """The warm-start Δ seed: rederivation candidates + insertion joins."""
        parts: list[np.ndarray] = [np.empty((0, predicate.arity), dtype=np.int64)]
        if removed.shape[0]:
            # Over-deleted tuples one-step derivable from the *new* state
            # are rederivation candidates; the delta loop restores their
            # transitive consequences. This is the only O(|full|) scan
            # of maintenance, paid just when deletions reached here.
            derivable = [
                self._eval_rows(select, predicate.arity)
                for select in predicate.init_subqueries
            ]
            if predicate.facts:
                derivable.append(np.asarray(predicate.facts, dtype=np.int64))
            candidates = kernels.unique_rows(np.concatenate([removed[:0], *derivable]))
            parts.append(kernels.rows_intersection(candidates, removed))
        for rule in self._analyzed.rules_for(predicate.predicate, cs.stratum):
            if rule.is_fact:
                continue
            positive = rule.positive_atoms()
            for p, atom in enumerate(positive):
                source = atom.predicate
                if source in cs.stratum.predicates or not self._changed(source):
                    continue
                if self._net[source][0].shape[0] == 0:
                    continue
                # Other positions read the new fulls: anything appended
                # later re-enters through Δ, so one pass per insertion
                # position is complete.
                rows = self._eval_rows(
                    self._generator.compile_rule_with_sources(
                        rule, {p: compiler.ivm_ins_table(source)}
                    ),
                    predicate.arity,
                )
                parts.append(rows)
        return np.concatenate(parts)

    # -- fallback: per-stratum recompute -----------------------------------

    def _recompute(self, cs: CompiledStratum) -> None:
        """Re-evaluate one stratum from scratch against maintained inputs."""
        old: dict[str, np.ndarray] = {}
        for predicate in cs.predicates:
            name = predicate.predicate
            old[name] = np.array(self._db.table_array(name), dtype=np.int64)
            self._db.replace_rows(
                name, np.empty((0, predicate.arity), dtype=np.int64)
            )
            columns = compiler.columns_for(predicate.arity)
            self._fresh_table(compiler.delta_table(name), columns)
            self._fresh_table(compiler.mdelta_table(name), columns)
        before = self._interp.report.iterations
        self._interp._run_stratum(cs)
        self.report.iterations += self._interp.report.iterations - before
        for predicate in cs.predicates:
            name = predicate.predicate
            new = self._db.table_array(name)
            self._net[name] = (
                kernels.rows_difference(new, old[name]),
                kernels.rows_difference(old[name], new),
            )

"""RecStep core: the paper's primary contribution.

``RecStep`` compiles Datalog to SQL over the ``repro.engine`` backend and
evaluates it semi-naively with the paper's optimizations: UIE, OOF, DSD,
EOST, FAST-DEDUP, and the PBME bit-matrix mode for dense graph programs.
"""

from repro.core.config import OofMode, PbmeMode, RecStepConfig
from repro.core.recstep import RecStep

__all__ = ["RecStep", "RecStepConfig", "OofMode", "PbmeMode"]

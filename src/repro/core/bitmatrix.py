"""Parallel Bit-Matrix Evaluation (Section 5.3, Algorithms 2 and 3).

For dense-graph programs whose IDB has a small active domain, RecStep
replaces hash-based join+dedup with an n x n bit matrix: joins become
row ORs, dedup becomes bit tests, and the two stages fuse (no
intermediate materialization). We implement the matrix as packed
``uint64`` words and reproduce both schedules the paper studies:

* **zero-coordination** (the default): each thread owns a round-robin
  partition of matrix rows and runs to completion independently; skew in
  generated work shows up as idle threads (Figure 7, SG);
* **coordination** (SG-PBME-COORD): oversized deltas are repacked into a
  global work pool, trading communication overhead for load balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DatalogError
from repro.core import compiler
from repro.core.config import PbmeMode, RecStepConfig
from repro.datalog import ast as dast
from repro.datalog.analyzer import AnalyzedProgram, Stratum
from repro.engine import kernels
from repro.engine.database import Database

#: Simulated seconds per visited bit-pair during matrix expansion.
COST_PER_BIT_VISIT = 2.5e-8
#: Simulated seconds of communication per rebalanced work order (COORD).
COORD_ORDER_OVERHEAD = 2.0e-4
#: Work-order size threshold for the COORD variant (pairs per order).
COORD_THRESHOLD = 4096


# --------------------------------------------------------------------------
# Packed bit matrix
# --------------------------------------------------------------------------


class PackedBitMatrix:
    """An n x n boolean matrix packed into uint64 words."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"matrix dimension must be positive, got {n}")
        self.n = n
        self.words = (n + 63) // 64
        self.bits = np.zeros((n, self.words), dtype=np.uint64)

    def memory_bytes(self) -> int:
        return self.bits.nbytes

    def set_pairs(self, rows: np.ndarray, cols: np.ndarray) -> None:
        masks = np.uint64(1) << (cols.astype(np.uint64) & np.uint64(63))
        flat = rows.astype(np.int64) * self.words + (cols >> 6)
        np.bitwise_or.at(self.bits.reshape(-1), flat, masks)

    def test_pairs(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean array: bit (row, col) already set?"""
        words = self.bits[rows, cols >> 6]
        return (words >> (cols.astype(np.uint64) & np.uint64(63))) & np.uint64(1) != 0

    def count(self) -> int:
        return int(np.sum(np.bitwise_count(self.bits)))

    def row_bits(self, row_vector: np.ndarray) -> np.ndarray:
        """Column indices of set bits in one packed row vector."""
        unpacked = np.unpackbits(row_vector.view(np.uint8), bitorder="little")
        return np.flatnonzero(unpacked[: self.n])

    def extract_pairs(self) -> np.ndarray:
        """All (row, col) set bits as an (m, 2) int64 matrix."""
        unpacked = np.unpackbits(self.bits.view(np.uint8), bitorder="little")
        unpacked = unpacked.reshape(self.n, self.words * 64)[:, : self.n]
        rows, cols = np.nonzero(unpacked)
        return np.column_stack([rows, cols]).astype(np.int64)


# --------------------------------------------------------------------------
# Shape detection
# --------------------------------------------------------------------------


@dataclass
class PbmeDecision:
    applicable: bool
    reason: str
    shape: str = ""           # "TC" or "SG"
    idb: str = ""
    base_relation: str = ""   # TC: base-rule EDB; SG: the arc relation
    edge_relation: str = ""   # TC: recursive-rule EDB
    domain_size: int = 0
    stratum: Stratum | None = None


def _match_tc_shape(analyzed: AnalyzedProgram, stratum: Stratum) -> PbmeDecision | None:
    """P(x,y) :- B(x,y).  P(x,y) :- P(x,z), A(z,y)."""
    if len(stratum.predicates) != 1 or not stratum.recursive:
        return None
    (predicate,) = stratum.predicates
    if analyzed.arities[predicate] != 2:
        return None
    rules = [rule for rule in stratum.rules if rule.head.predicate == predicate]
    if len(rules) != 2:
        return None
    base = rec = None
    for rule in rules:
        if any(atom.predicate == predicate for atom in rule.body_atoms()):
            rec = rule
        else:
            base = rule
    if base is None or rec is None:
        return None
    # Base: single positive binary atom, head vars in order, nothing else.
    if (
        len(base.body) != 1
        or base.negative_atoms()
        or not _plain_binary(base.head)
        or not _plain_binary(base.positive_atoms()[0])
        or base.head.terms != base.positive_atoms()[0].terms
    ):
        return None
    # Recursive: P(x,z), A(z,y) with head (x, y); no comparisons/negation.
    if len(rec.body) != 2 or rec.negative_atoms() or rec.comparisons():
        return None
    atoms = rec.positive_atoms()
    p_atom = next((a for a in atoms if a.predicate == predicate), None)
    a_atom = next((a for a in atoms if a.predicate != predicate), None)
    if p_atom is None or a_atom is None:
        return None
    if a_atom.predicate in stratum.predicates or not _plain_binary(p_atom) or not _plain_binary(a_atom):
        return None
    hx, hy = rec.head.terms
    px, pz = p_atom.terms
    az, ay = a_atom.terms
    if (hx, hy, px) != (px, ay, hx) or pz != az:
        return None
    return PbmeDecision(
        applicable=True,
        reason="TC-shaped stratum",
        shape="TC",
        idb=predicate,
        base_relation=base.positive_atoms()[0].predicate,
        edge_relation=a_atom.predicate,
        stratum=stratum,
    )


def _match_sg_shape(analyzed: AnalyzedProgram, stratum: Stratum) -> PbmeDecision | None:
    """P(x,y) :- A(p,x), A(p,y), x != y.  P(x,y) :- A(a,x), P(a,b), A(b,y)."""
    if len(stratum.predicates) != 1 or not stratum.recursive:
        return None
    (predicate,) = stratum.predicates
    if analyzed.arities[predicate] != 2:
        return None
    rules = [rule for rule in stratum.rules if rule.head.predicate == predicate]
    if len(rules) != 2:
        return None
    base = rec = None
    for rule in rules:
        if any(atom.predicate == predicate for atom in rule.body_atoms()):
            rec = rule
        else:
            base = rule
    if base is None or rec is None:
        return None
    base_atoms = base.positive_atoms()
    if (
        len(base_atoms) != 2
        or base.negative_atoms()
        or len(base.comparisons()) != 1
        or base_atoms[0].predicate != base_atoms[1].predicate
        or not all(_plain_binary(a) for a in base_atoms)
    ):
        return None
    arc = base_atoms[0].predicate
    p0, x0 = base_atoms[0].terms
    p1, y1 = base_atoms[1].terms
    comparison = base.comparisons()[0]
    if p0 != p1 or base.head.terms != (x0, y1) or comparison.op != "!=":
        return None
    rec_atoms = rec.positive_atoms()
    if len(rec_atoms) != 3 or rec.negative_atoms() or rec.comparisons():
        return None
    p_atoms = [a for a in rec_atoms if a.predicate == predicate]
    a_atoms = [a for a in rec_atoms if a.predicate == arc]
    if len(p_atoms) != 1 or len(a_atoms) != 2:
        return None
    if not all(_plain_binary(a) for a in rec_atoms):
        return None
    (pa, pb) = p_atoms[0].terms
    hx, hy = rec.head.terms
    first = next((a for a in a_atoms if a.terms == (pa, hx)), None)
    second = next((a for a in a_atoms if a.terms == (pb, hy)), None)
    if first is None or second is None:
        return None
    return PbmeDecision(
        applicable=True,
        reason="SG-shaped stratum",
        shape="SG",
        idb=predicate,
        base_relation=arc,
        edge_relation=arc,
        stratum=stratum,
    )


def _plain_binary(atom: dast.Atom) -> bool:
    return atom.arity == 2 and all(isinstance(t, dast.Variable) for t in atom.terms)


def pbme_applicability(
    analyzed: AnalyzedProgram,
    stratum: Stratum,
    database: Database,
    config: RecStepConfig,
) -> PbmeDecision:
    """Decide whether PBME evaluates this stratum (Section 5.3).

    Conditions: PBME enabled, the stratum matches the TC or SG pattern,
    the active domain is non-negative, and (in AUTO mode) the bit matrix
    plus index structures fit in the memory budget.
    """
    if config.pbme is PbmeMode.OFF:
        return PbmeDecision(applicable=False, reason="pbme disabled")
    decision = _match_tc_shape(analyzed, stratum) or _match_sg_shape(analyzed, stratum)
    if decision is None:
        if config.pbme is PbmeMode.ON:
            raise DatalogError(
                f"pbme=ON but stratum {stratum.index} does not match TC/SG"
            )
        return PbmeDecision(applicable=False, reason="no TC/SG shape")

    relations = {decision.base_relation, decision.edge_relation}
    high = 0
    for relation in relations:
        rows = database.catalog.get_table(relation).data()
        if rows.shape[0] == 0:
            continue
        if int(rows.min()) < 0:
            return PbmeDecision(applicable=False, reason="negative domain values")
        high = max(high, int(rows.max()))
    n = high + 1
    decision.domain_size = n

    matrix_bytes = n * ((n + 63) // 64) * 8
    index_bytes = matrix_bytes if decision.shape == "SG" else 0
    budget = database.metrics.memory_budget
    if config.pbme is PbmeMode.AUTO:
        if matrix_bytes + index_bytes > 0.8 * budget:
            return PbmeDecision(
                applicable=False,
                reason=f"bit matrix ({(matrix_bytes + index_bytes) / 1e6:.0f} MB) "
                "does not fit the memory budget",
            )
        # A spill tier changes the calculus: the packed matrix is small,
        # but the materialized closure it hands back must be fully
        # resident — the relational path can evict cold prefixes to disk
        # while PBME cannot. When the worst-case output alone overflows
        # the budget, degrade to disk rather than to a path that is
        # guaranteed to OOM on extraction.
        if database.spill is not None:
            tuple_bytes = database.catalog.get_table(decision.idb).tuple_bytes()
            if n * n * tuple_bytes > 0.8 * budget:
                return PbmeDecision(
                    applicable=False,
                    reason="projected closure cannot stay resident; the "
                    "spill tier keeps the relational path safe",
                )
        # Degradation ladder, last rung: under critical memory pressure an
        # eligible stratum takes the matrix path even when the density
        # heuristic would keep it relational — the packed matrix is the
        # lowest-footprint representation available.
        degradation = database.resilience.degradation
        if degradation.prefer_pbme():
            degradation.note("prefer-pbme")
            database.profiler.counters.inc("degradation_pbme_fallback")
            decision.reason += " (pbme preferred under memory pressure)"
            return decision
        # PBME pays off on *dense* graphs (Section 5.3); sparse inputs such
        # as the CSDA program graphs stay on the relational path.
        edge_count = database.table_size(decision.edge_relation)
        if n > 0 and edge_count / (n * n) < 5e-4:
            return PbmeDecision(
                applicable=False,
                reason=f"graph too sparse for PBME (density {edge_count / (n * n):.2e})",
            )
    return decision


# --------------------------------------------------------------------------
# Evaluation
# --------------------------------------------------------------------------


def run_pbme_stratum(
    decision: PbmeDecision,
    database: Database,
    config: RecStepConfig,
    report,
) -> None:
    """Evaluate a TC/SG stratum with the bit matrix and record metrics."""
    from repro.obs import CATEGORY_ITERATION

    n = decision.domain_size
    profiler = database.profiler
    with profiler.span(
        f"pbme {decision.shape}",
        CATEGORY_ITERATION,
        shape=decision.shape,
        idb=decision.idb,
        domain_size=n,
    ) as span:
        edge_rows = database.table_array(decision.edge_relation)
        base_rows = database.table_array(decision.base_relation)

        if decision.shape == "TC":
            matrix, per_thread_cost, depth = _run_tc(
                base_rows, edge_rows, n, config.threads, database
            )
            makespan, utilization = _zero_coordination_schedule(per_thread_cost)
            iterations = depth
        else:
            matrix, per_thread_cost, iterations, rebalances = _run_sg(
                edge_rows, n, config.threads, config.sg_coordination, database
            )
            if config.sg_coordination:
                total = float(per_thread_cost.sum())
                width = max(1.0, config.threads * 0.95)
                makespan = total / width + rebalances * COORD_ORDER_OVERHEAD
                utilization = min(1.0, total / (config.threads * makespan)) if makespan else 1.0
            else:
                makespan, utilization = _zero_coordination_schedule(per_thread_cost)

        database.metrics.advance(makespan, utilization)
        bit_ops = int(round(float(per_thread_cost.sum()) / COST_PER_BIT_VISIT))
        profiler.counters.inc("pbme_strata")
        profiler.counters.inc("pbme_bit_ops", bit_ops)
        pairs = matrix.extract_pairs()
        database.replace_rows(compiler.full_table(decision.idb), pairs)
        database.analyze(compiler.full_table(decision.idb))
        span.set(
            rows_out=int(pairs.shape[0]),
            depth=iterations,
            bit_ops=bit_ops,
            utilization=round(utilization, 4),
        )
        report.iterations += iterations
    if profiler.enabled:
        # PBME saturates the stratum in one batch pass, so its telemetry
        # lands at the stratum boundary: one latency/size observation and
        # one resource-timeline sample (the per-iteration cadence does
        # not exist on this path).
        profiler.histograms.observe("pbme.seconds", span.duration)
        profiler.histograms.observe("pbme.rows", float(pairs.shape[0]))
        database.sample_timeline(
            stratum=decision.stratum.index if decision.stratum is not None else 0,
            pbme_depth=iterations,
        )
    # The bit matrix saturates the stratum in one batch pass (it cannot
    # diverge), so its budget accounting lands at the stratum boundary —
    # after the partial fixpoint is committed, mirroring where a deadline
    # would interpose for this path.
    database.resilience.check_guard_stratum(
        decision.stratum.index if decision.stratum is not None else 0,
        iterations,
        int(pairs.shape[0]),
    )


def _zero_coordination_schedule(per_thread_cost: np.ndarray) -> tuple[float, float]:
    """Makespan/utilization when each thread runs its partition alone."""
    makespan = float(per_thread_cost.max()) if per_thread_cost.size else 0.0
    if makespan <= 0:
        return 0.0, 1.0
    utilization = float(per_thread_cost.sum()) / (per_thread_cost.size * makespan)
    return makespan, utilization


def _run_tc(
    base_rows: np.ndarray,
    edge_rows: np.ndarray,
    n: int,
    threads: int,
    database: Database,
) -> tuple[PackedBitMatrix, np.ndarray, int]:
    """Algorithm 2: per-row frontier expansion, rows partitioned round-robin."""
    edge_matrix = PackedBitMatrix(n)
    if edge_rows.shape[0]:
        edge_matrix.set_pairs(edge_rows[:, 0], edge_rows[:, 1])
    result = PackedBitMatrix(n)
    if base_rows.shape[0]:
        result.set_pairs(base_rows[:, 0], base_rows[:, 1])

    transient = edge_matrix.memory_bytes() + result.memory_bytes()
    database.metrics.allocate_transient(transient)

    per_thread_cost = np.zeros(max(1, threads), dtype=np.float64)
    max_depth = 0
    words = result.words
    for row in range(n):
        current = result.bits[row].copy()
        frontier = result.row_bits(current)
        cost = 0.0
        depth = 0
        while frontier.size:
            depth += 1
            reached = np.bitwise_or.reduce(edge_matrix.bits[frontier], axis=0)
            cost += frontier.size * words * 64 * COST_PER_BIT_VISIT
            added = reached & ~current
            current |= reached
            frontier = result.row_bits(added)
        result.bits[row] = current
        per_thread_cost[row % max(1, threads)] += cost
        max_depth = max(max_depth, depth)

    database.metrics.release_transient(transient - result.memory_bytes())
    database.metrics.release_transient(result.memory_bytes())
    return result, per_thread_cost, max_depth


def _run_sg(
    arc_rows: np.ndarray,
    n: int,
    threads: int,
    coordination: bool,
    database: Database,
) -> tuple[PackedBitMatrix, np.ndarray, int, int]:
    """Algorithm 3: pair worklist over the bit matrix with a child index.

    Work is attributed to the thread owning the originating matrix row;
    generated pairs inherit their producer's thread (the thread-local
    delta of Algorithm 3), which is what makes skew possible.
    """
    k = max(1, threads)
    matrix = PackedBitMatrix(n)
    index_bytes = matrix.memory_bytes()  # Varc vector index (line 4)
    transient = matrix.memory_bytes() + index_bytes
    database.metrics.allocate_transient(transient)

    parents = arc_rows[:, 0] if arc_rows.shape[0] else np.empty(0, np.int64)
    children = arc_rows[:, 1] if arc_rows.shape[0] else np.empty(0, np.int64)

    # Seeds: sg(x, y) for siblings x != y (join arc with itself on parent).
    li, ri = kernels.equi_join_indices(parents, parents)
    seed_x = children[li]
    seed_y = children[ri]
    keep = seed_x != seed_y
    seed_x, seed_y = seed_x[keep], seed_y[keep]

    per_thread_cost = np.zeros(k, dtype=np.float64)
    rebalances = 0

    def dedup_against_matrix(
        xs: np.ndarray, ys: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if xs.size == 0:
            return xs, ys, owners
        key = xs * np.int64(n) + ys
        _, first = np.unique(key, return_index=True)
        xs, ys, owners = xs[first], ys[first], owners[first]
        fresh = ~matrix.test_pairs(xs, ys)
        xs, ys, owners = xs[fresh], ys[fresh], owners[fresh]
        if xs.size:
            matrix.set_pairs(xs, ys)
        return xs, ys, owners

    seed_owner = (seed_x % k).astype(np.int64)
    delta_x, delta_y, delta_owner = dedup_against_matrix(seed_x, seed_y, seed_owner)
    seed_cost = np.bincount(seed_owner % k, minlength=k) * COST_PER_BIT_VISIT
    per_thread_cost += seed_cost

    #: Expanded (q, p) rows per batch: bounds the host-side size of the
    #: degree-squared product while leaving modeled costs untouched.
    chunk_output_rows = 4_000_000
    out_degree = np.bincount(parents, minlength=n).astype(np.int64) if parents.size else np.zeros(n, np.int64)

    def chunk_boundaries(xs: np.ndarray, ys: np.ndarray) -> list[tuple[int, int]]:
        """Split the delta so each batch expands to ~chunk_output_rows."""
        if xs.size == 0:
            return []
        weights = out_degree[xs] * out_degree[ys]
        cumulative = np.cumsum(weights)
        boundaries = []
        start = 0
        base = 0
        for index in range(xs.size):
            if cumulative[index] - base > chunk_output_rows and index > start:
                boundaries.append((start, index))
                start = index
                base = cumulative[index - 1]
        boundaries.append((start, xs.size))
        return boundaries

    iterations = 0
    while delta_x.size:
        iterations += 1
        next_x: list[np.ndarray] = []
        next_y: list[np.ndarray] = []
        next_owner: list[np.ndarray] = []
        for start, stop in chunk_boundaries(delta_x, delta_y):
            chunk_x = delta_x[start:stop]
            chunk_y = delta_y[start:stop]
            chunk_owner = delta_owner[start:stop]
            # Expand: (a, b) -> (q, p) for q in children(a), p in children(b).
            li, ri = kernels.equi_join_indices(chunk_x, parents)
            mid_q = children[ri]
            mid_b = chunk_y[li]
            mid_owner = chunk_owner[li]
            li2, ri2 = kernels.equi_join_indices(mid_b, parents)
            out_q = mid_q[li2]
            out_p = children[ri2]
            out_owner = mid_owner[li2]

            visit_counts = np.bincount(out_owner, minlength=k)
            per_thread_cost += visit_counts * COST_PER_BIT_VISIT
            if coordination:
                rebalances += int(np.sum(visit_counts > COORD_THRESHOLD))

            fresh_x, fresh_y, fresh_owner = dedup_against_matrix(out_q, out_p, out_owner)
            if fresh_x.size:
                next_x.append(fresh_x)
                next_y.append(fresh_y)
                next_owner.append(fresh_owner)
        if next_x:
            delta_x = np.concatenate(next_x)
            delta_y = np.concatenate(next_y)
            delta_owner = np.concatenate(next_owner)
        else:
            delta_x = delta_x[:0]
            delta_y = delta_y[:0]
            delta_owner = delta_owner[:0]

    database.metrics.release_transient(transient)
    return matrix, per_thread_cost, iterations, rebalances

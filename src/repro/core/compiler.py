"""The query generator: Datalog rules to mini-SQL (Section 4, Figure 1).

For every IDB relation the generator produces:

* an *init* query — the union of all its rules over full relations,
  evaluated once per stratum (iteration 0);
* per recursive rule and per same-stratum body atom, one *delta
  subquery* in which exactly that atom reads the relation's ∆-table —
  the semi-naive expansion of Section 3.2.

Under UIE the delta subqueries are emitted as one ``INSERT INTO ...
UNION ALL`` statement; with UIE off each subquery becomes its own
INSERT into a temporary table plus a final merge query, reproducing the
"Individual IDB Evaluation" alternative of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DatalogError
from repro.datalog import ast as dast
from repro.datalog.analyzer import AnalyzedProgram, Stratum
from repro.sql import ast as sast


def full_table(predicate: str) -> str:
    return predicate


def delta_table(predicate: str) -> str:
    return f"{predicate}_delta"


def mdelta_table(predicate: str) -> str:
    return f"{predicate}_mdelta"


def tmp_table(predicate: str, index: int) -> str:
    return f"{predicate}_tmp_mdelta{index}"


# IVM working tables (core/ivm.py). The ``_ivm_`` infix keeps them out of
# the way of the semi-naive ``_delta``/``_mdelta`` namespace.


def ivm_ins_table(predicate: str) -> str:
    """Effective insertions of one maintenance batch."""
    return f"{predicate}_ivm_ins"


def ivm_del_table(predicate: str) -> str:
    """Effective deletions of one maintenance batch."""
    return f"{predicate}_ivm_del"


def ivm_old_table(predicate: str) -> str:
    """Pre-batch snapshot of a mutated relation (old-state reads)."""
    return f"{predicate}_ivm_old"


def ivm_overdel_table(predicate: str) -> str:
    """Accumulated over-deleted tuples of a DRed stratum."""
    return f"{predicate}_ivm_overdel"


def ivm_odelta_table(predicate: str) -> str:
    """The Δ of the over-deletion fixpoint (DRed's deletion frontier)."""
    return f"{predicate}_ivm_odelta"


def ivm_count_table(predicate: str) -> str:
    """Derivation-count table of a counting-maintained relation."""
    return f"{predicate}_ivm_cnt"


def columns_for(arity: int) -> tuple[str, ...]:
    return tuple(f"c{i}" for i in range(arity))


@dataclass
class CompiledPredicate:
    """All queries evaluating one IDB relation."""

    predicate: str
    arity: int
    aggregate: str | None                       # MIN/MAX/... or None
    init_subqueries: list[sast.Select] = field(default_factory=list)
    delta_subqueries: list[sast.Select] = field(default_factory=list)
    facts: list[tuple[int, ...]] = field(default_factory=list)

    def init_query(self) -> sast.Query | None:
        return _as_query(self.init_subqueries)

    def delta_query(self) -> sast.Query | None:
        return _as_query(self.delta_subqueries)


@dataclass
class CompiledStratum:
    stratum: Stratum
    predicates: list[CompiledPredicate]


def _as_query(selects: list[sast.Select]) -> sast.Query | None:
    if not selects:
        return None
    if len(selects) == 1:
        return selects[0]
    return sast.UnionAll(tuple(selects))


class QueryGenerator:
    """Compiles an analyzed program stratum by stratum."""

    def __init__(self, analyzed: AnalyzedProgram) -> None:
        self._analyzed = analyzed

    def compile(self) -> list[CompiledStratum]:
        compiled: list[CompiledStratum] = []
        for stratum in self._analyzed.strata:
            predicates: list[CompiledPredicate] = []
            for predicate in sorted(stratum.idb_predicates()):
                predicates.append(self._compile_predicate(predicate, stratum))
            compiled.append(CompiledStratum(stratum=stratum, predicates=predicates))
        return compiled

    # -- per-predicate compilation ----------------------------------------------

    def _compile_predicate(self, predicate: str, stratum: Stratum) -> CompiledPredicate:
        arity = self._analyzed.arities[predicate]
        aggregate = self._analyzed.aggregate_func(predicate)
        compiled = CompiledPredicate(predicate=predicate, arity=arity, aggregate=aggregate)
        for rule in self._analyzed.rules_for(predicate, stratum):
            if rule.is_fact:
                compiled.facts.append(_fact_row(rule))
                continue
            compiled.init_subqueries.append(self._compile_rule(rule, delta_atom=None))
            if stratum.recursive:
                recursive_positions = [
                    index
                    for index, atom in enumerate(rule.positive_atoms())
                    if atom.predicate in stratum.predicates
                ]
                for position in recursive_positions:
                    compiled.delta_subqueries.append(
                        self._compile_rule(rule, delta_atom=position)
                    )
        return compiled

    # -- per-rule compilation --------------------------------------------------------

    def compile_rule_with_sources(
        self, rule: dast.Rule, source_overrides: dict[int, str]
    ) -> sast.Select:
        """Compile ``rule`` with selected positive atoms redirected.

        ``source_overrides`` maps positive-atom index → table name; atoms
        not listed read their full relation. This is the maintenance
        (core/ivm.py) entry point: delta-propagation subqueries point one
        atom at a batch's ``_ivm_ins``/``_ivm_del`` table and the others
        at old snapshots or current fulls. Negation always reads the full
        relation — negated predicates live in strictly lower strata, so
        by the time a stratum is maintained they are already current.
        """
        return self._compile_rule(rule, delta_atom=None, source_overrides=source_overrides)

    def _compile_rule(
        self,
        rule: dast.Rule,
        delta_atom: int | None,
        source_overrides: dict[int, str] | None = None,
    ) -> sast.Select:
        """Translate one rule to a SELECT.

        ``delta_atom`` is the index (among positive atoms) reading the
        ∆-table in this semi-naive subquery, or ``None`` for the init
        form where all atoms read full relations. ``source_overrides``
        (mutually exclusive with ``delta_atom``) redirects individual
        positive atoms to arbitrary tables.
        """
        positive = rule.positive_atoms()
        if not positive:
            raise DatalogError(f"rule {rule} has no positive body atom")

        bindings: dict[str, sast.ColumnRef] = {}
        where: list[sast.Predicate] = []
        tables: list[sast.TableRef] = []

        overrides = source_overrides or {}
        for index, atom in enumerate(positive):
            alias = f"b{index}"
            if index in overrides:
                source = overrides[index]
            elif index == delta_atom:
                source = delta_table(atom.predicate)
            else:
                source = full_table(atom.predicate)
            tables.append(sast.TableRef(source, alias))
            for position, term in enumerate(atom.terms):
                column_ref = sast.ColumnRef(alias, f"c{position}")
                if isinstance(term, dast.Constant):
                    where.append(sast.Comparison("=", column_ref, sast.Literal(term.value)))
                elif isinstance(term, dast.Variable):
                    if term.name in bindings:
                        where.append(sast.Comparison("=", column_ref, bindings[term.name]))
                    else:
                        bindings[term.name] = column_ref
                # Wildcards bind nothing.

        for comparison in rule.comparisons():
            where.append(
                sast.Comparison(
                    "<>" if comparison.op == "!=" else comparison.op,
                    _scalar_to_sql(comparison.left, bindings),
                    _scalar_to_sql(comparison.right, bindings),
                )
            )

        for negative_index, atom in enumerate(rule.negative_atoms()):
            where.append(self._compile_negation(atom, negative_index, bindings))

        items, group_by = self._compile_head(rule.head, bindings)
        return sast.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
        )

    def _compile_negation(
        self,
        atom: dast.Atom,
        negative_index: int,
        bindings: dict[str, sast.ColumnRef],
    ) -> sast.NotExists:
        alias = f"n{negative_index}"
        conditions: list[sast.Predicate] = []
        for position, term in enumerate(atom.terms):
            column_ref = sast.ColumnRef(alias, f"c{position}")
            if isinstance(term, dast.Constant):
                conditions.append(sast.Comparison("=", column_ref, sast.Literal(term.value)))
            elif isinstance(term, dast.Variable):
                conditions.append(sast.Comparison("=", column_ref, bindings[term.name]))
            elif isinstance(term, dast.Wildcard):
                continue
        subquery = sast.Select(
            items=(sast.SelectItem(sast.Literal(1), None),),
            tables=(sast.TableRef(full_table(atom.predicate), alias),),
            where=tuple(conditions),
        )
        return sast.NotExists(subquery)

    def _compile_head(
        self, head: dast.Atom, bindings: dict[str, sast.ColumnRef]
    ) -> tuple[list[sast.SelectItem], list[sast.Expr]]:
        items: list[sast.SelectItem] = []
        group_by: list[sast.Expr] = []
        has_aggregate = any(isinstance(term, dast.AggTerm) for term in head.terms)
        for position, term in enumerate(head.terms):
            column = f"c{position}"
            if isinstance(term, dast.AggTerm):
                argument = _scalar_to_sql(term.expr, bindings)
                items.append(sast.SelectItem(sast.AggregateCall(term.func, argument), column))
            elif isinstance(term, dast.Variable):
                expr = bindings[term.name]
                items.append(sast.SelectItem(expr, column))
                if has_aggregate:
                    group_by.append(expr)
            elif isinstance(term, dast.Constant):
                expr = sast.Literal(term.value)
                items.append(sast.SelectItem(expr, column))
                # Literals need not be grouped; they are constant per row.
            else:
                raise DatalogError(f"unsupported head term {term!r}")
        return items, group_by


def _scalar_to_sql(expr: dast.ScalarExpr, bindings: dict[str, sast.ColumnRef]) -> sast.Expr:
    if isinstance(expr, dast.Constant):
        return sast.Literal(expr.value)
    if isinstance(expr, dast.Variable):
        try:
            return bindings[expr.name]
        except KeyError:
            raise DatalogError(f"variable {expr.name!r} is unbound") from None
    if isinstance(expr, dast.Arithmetic):
        return sast.BinaryOp(
            expr.op, _scalar_to_sql(expr.left, bindings), _scalar_to_sql(expr.right, bindings)
        )
    raise DatalogError(f"unsupported scalar expression {expr!r}")


def _fact_row(rule: dast.Rule) -> tuple[int, ...]:
    row: list[int] = []
    for term in rule.head.terms:
        if not isinstance(term, dast.Constant):
            raise DatalogError(f"fact {rule} must be ground")
        row.append(term.value)
    return tuple(row)


# --------------------------------------------------------------------------
# SQL text rendering (Figure 4)
# --------------------------------------------------------------------------


def render_uie_sql(compiled: CompiledPredicate) -> str:
    """The single UNION ALL INSERT statement UIE issues."""
    query = compiled.delta_query() or compiled.init_query()
    if query is None:
        return ""
    return f"INSERT INTO {mdelta_table(compiled.predicate)} {query};"


def render_iie_sql(compiled: CompiledPredicate) -> str:
    """The per-subquery INSERTs plus merge that IIE issues (Figure 4)."""
    subqueries = compiled.delta_subqueries or compiled.init_subqueries
    statements: list[str] = []
    for index, select in enumerate(subqueries):
        statements.append(f"INSERT INTO {tmp_table(compiled.predicate, index)} {select};")
    columns = columns_for(compiled.arity)
    arms = []
    for index in range(len(subqueries)):
        item_list = ", ".join(f"t{index}.{c} AS {c}" for c in columns)
        arms.append(f"SELECT {item_list} FROM {tmp_table(compiled.predicate, index)} t{index}")
    if arms:
        merged = " UNION ALL ".join(arms)
        statements.append(f"INSERT INTO {mdelta_table(compiled.predicate)} {merged};")
    return "\n".join(statements)

"""Command-line frontend: evaluate ``.datalog`` files.

The paper's system reads "a .datalog file, which, along with the rules of
the Datalog program, provides paths for the input and output tables"
(Section 4). This module implements that format:

    .input arc arc_edges.tsv
    .output tc tc_result.tsv

    tc(x, y) :- arc(x, y).
    tc(x, y) :- tc(x, z), arc(z, y).

Directives start with ``.``; everything else is the Datalog program.
Paths are resolved relative to the ``.datalog`` file. Run with::

    python -m repro.cli program.datalog [--engine RecStep] [--threads 20]

A program may end with point queries (``?- tc(5, x).``), or one may be
given on the command line with ``--query "tc(5, x)"`` (which overrides
the file's). Point goals are answered through the magic-set demand
rewrite: only the goal's cone is evaluated, and the answers are
tuple-identical to post-filtering a full materialization.

Exit codes (the contract scripts may rely on):

* ``0`` — the run completed (``status == "ok"``).
* ``1`` — hard failure: OOM, timeout, fault, storage, cancellation —
  no trustworthy result was produced.
* ``2`` — usage error (argparse's own convention).
* ``3`` — degraded but served: a divergence guard or cooperative
  deadline stopped the run at an iteration boundary with a structured
  partial result (``status "guard"``/``"deadline"``). The outputs, if
  written, reflect the partial fixpoint; callers who need the full
  fixpoint must treat 3 as a failure, callers probing behavior under
  pressure can treat it as success-with-caveats.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.harness import make_engine
from repro.common.errors import DatalogError
from repro.datalog.analyzer import analyze_program
from repro.datalog.parser import parse_goal, parse_program
from repro.datasets.io import load_relation, save_relation
from repro.programs.library import ProgramSpec


@dataclass
class DatalogFile:
    """A parsed ``.datalog`` file: program source plus I/O bindings."""

    source: str
    inputs: dict[str, Path] = field(default_factory=dict)
    outputs: dict[str, Path] = field(default_factory=dict)


def parse_datalog_file(path: str | Path) -> DatalogFile:
    """Split a ``.datalog`` file into directives and program text."""
    path = Path(path)
    base = path.parent
    program_lines: list[str] = []
    inputs: dict[str, Path] = {}
    outputs: dict[str, Path] = {}
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("."):
            program_lines.append(line)
            continue
        parts = stripped.split()
        if parts[0] == ".input" and len(parts) == 3:
            inputs[parts[1]] = base / parts[2]
        elif parts[0] == ".output" and len(parts) == 3:
            outputs[parts[1]] = base / parts[2]
        else:
            raise DatalogError(
                f"{path}:{line_number}: malformed directive {stripped!r} "
                "(expected '.input REL PATH' or '.output REL PATH')"
            )
    return DatalogFile(source="\n".join(program_lines), inputs=inputs, outputs=outputs)


def run_datalog_file(
    path: str | Path,
    engine_name: str = "RecStep",
    threads: int = 20,
    memory_budget: int | None = None,
    enforce_budgets: bool = True,
    profile: bool = False,
    fault_seed: int | None = None,
    fault_rate: float | None = None,
    degrade: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
    resume_from: str | None = None,
    deadline: float | None = None,
    max_iterations: int | None = None,
    max_total_rows: int | None = None,
    join_cache: bool = True,
    partitioned_exec: bool = True,
    partitions: int | None = None,
    spill_dir: str | None = None,
    serve_trace: str | None = None,
    metrics_out: str | None = None,
    serve_updates: str | None = None,
    wal_root: str | None = None,
    serve_recover: bool = False,
    query: str | None = None,
):
    """Parse, load, evaluate, and write outputs; returns the result.

    ``enforce_budgets`` defaults to True everywhere (CLI, ``Database``,
    ``RecStepConfig``): evaluations fail with OOM/timeout at the modeled
    server limits unless explicitly disabled (``--no-enforce-budgets``).
    """
    datalog_file = parse_datalog_file(path)
    analyzed = analyze_program(parse_program(datalog_file.source, name=str(path)))

    missing = analyzed.edb - set(datalog_file.inputs)
    if missing:
        raise DatalogError(
            f"no .input directive for EDB relations: {sorted(missing)}"
        )
    unknown_outputs = set(datalog_file.outputs) - analyzed.idb
    if unknown_outputs:
        raise DatalogError(
            f".output names unknown IDB relations: {sorted(unknown_outputs)}"
        )

    edb_data = {
        name: load_relation(file_path, arity=analyzed.arities[name])
        for name, file_path in datalog_file.inputs.items()
        if name in analyzed.edb
    }

    spec = ProgramSpec(
        name=Path(path).stem,
        title=str(path),
        domain="user",
        source=datalog_file.source,
        outputs=tuple(sorted(datalog_file.outputs)),
    )
    extra = {}
    if memory_budget is not None:
        extra["memory_budget"] = memory_budget
    if profile:
        if engine_name != "RecStep":
            raise DatalogError("--profile is only supported by the RecStep engine")
        extra["profile"] = True
    if not join_cache:
        if engine_name != "RecStep":
            raise DatalogError("--no-join-cache is only supported by the RecStep engine")
        extra["join_cache"] = False
    if not partitioned_exec:
        if engine_name != "RecStep":
            raise DatalogError(
                "--no-partitioned-exec is only supported by the RecStep engine"
            )
        extra["partitioned_exec"] = False
    if partitions is not None:
        if engine_name != "RecStep":
            raise DatalogError("--partitions is only supported by the RecStep engine")
        extra["partitions"] = partitions
    resilience_options = {
        "fault_seed": fault_seed,
        "degradation": degrade or None,
        "spill_dir": spill_dir,
        "checkpoint_dir": checkpoint_dir,
        "resume_from": resume_from,
        "deadline": deadline,
        "max_iterations": max_iterations,
        "max_total_rows": max_total_rows,
    }
    wanted = {k: v for k, v in resilience_options.items() if v is not None}
    if wanted:
        if engine_name != "RecStep":
            raise DatalogError(
                "resilience options are only supported by the RecStep engine: "
                + ", ".join(sorted(wanted))
            )
        if degrade or spill_dir is not None:
            # The spill rung lives on the degradation ladder: asking for a
            # spill directory implies arming the ladder.
            wanted["degradation"] = True
        if fault_rate is not None:
            wanted["fault_rate"] = fault_rate
        if checkpoint_every is not None:
            wanted["checkpoint_every"] = checkpoint_every
        extra.update(wanted)
    engine = make_engine(
        engine_name, threads=threads, enforce_budgets=enforce_budgets, **extra
    )
    goals = (
        [parse_goal(query)] if query is not None else list(analyzed.program.queries)
    )
    if goals:
        if engine_name != "RecStep":
            raise DatalogError(
                "point queries (--query / '?- goal.') are only supported by "
                "the RecStep engine"
            )
        if (
            serve_trace is not None
            or metrics_out is not None
            or serve_updates is not None
            or wal_root is not None
            or serve_recover
        ):
            raise DatalogError(
                "point queries cannot be combined with the service-route "
                "options (--serve-trace/--metrics-out/--serve-updates/"
                "--wal-root/--serve-recover)"
            )
        return _answer_goals(engine, spec, goals, edb_data, datalog_file, analyzed, path)
    if serve_recover and wal_root is None:
        raise DatalogError("--serve-recover requires --wal-root")
    if (
        serve_trace is not None
        or metrics_out is not None
        or serve_updates is not None
        or wal_root is not None
    ):
        if engine_name != "RecStep":
            raise DatalogError(
                "--serve-trace/--metrics-out/--serve-updates/--wal-root are "
                "only supported by the RecStep engine"
            )
        result = _run_via_service(
            engine.config,
            spec,
            edb_data,
            Path(path).stem,
            serve_trace,
            metrics_out,
            serve_updates,
            wal_root=wal_root,
            recover=serve_recover,
        )
    else:
        result = engine.evaluate(spec, edb_data, dataset=Path(path).stem)

    if result.status == "ok":
        for name, file_path in datalog_file.outputs.items():
            rows = np.asarray(sorted(result.tuples[name]), dtype=np.int64)
            rows = rows.reshape(-1, analyzed.arities[name])
            save_relation(file_path, rows)
    return result


def _answer_goals(engine, spec, goals, edb_data, datalog_file, analyzed, path):
    """Answer each point goal through the magic-set demand rewrite.

    Goals run in file order; the first non-ok result stops the run and is
    returned as-is (its status drives the exit code). A goal whose
    predicate has an ``.output`` binding writes its answer set there —
    the demand-restricted answers, not a full materialization.
    """
    result = None
    for goal in goals:
        result = engine.answer(spec, goal, edb_data, dataset=Path(path).stem)
        if result.status != "ok":
            return result
        answers = result.tuples[goal.predicate]
        if goal.predicate in datalog_file.outputs:
            rows = np.asarray(sorted(answers), dtype=np.int64)
            rows = rows.reshape(-1, analyzed.arities[goal.predicate])
            save_relation(datalog_file.outputs[goal.predicate], rows)
    return result


def _run_via_service(
    engine_config,
    spec,
    edb_data,
    dataset: str,
    trace_path: str | None,
    metrics_path: str | None = None,
    updates_path: str | None = None,
    wal_root: str | None = None,
    recover: bool = False,
):
    """Route one evaluation through :class:`QueryService`.

    The query runs as a single-slot service session — same admission,
    watchdog, and drain machinery as a busy server. ``--serve-trace``
    writes the full shutdown report (session lifecycle, admission state,
    breaker board, server counters); ``--metrics-out`` writes just the
    telemetry export (``metrics_snapshot``: per-class latency histograms
    and the admission-queue timeline). Either implies the service route.

    ``--serve-updates FILE`` additionally materializes the fixpoint and
    replays FILE as an update log — JSON lines, each
    ``{"inserts": {rel: [[...], ...]}, "deletes": {...}}`` (optionally a
    ``"batch_id"``) — against the live view, so the written outputs are
    the *maintained* fixpoint after the whole log, not the cold-start
    one.

    With ``--wal-root DIR`` the materialized view persists a base
    checkpoint + write-ahead log under DIR; ``--serve-recover`` skips
    evaluation entirely and rebuilds the view named after the program
    from DIR (base + log replay), writing the recovered fixpoint.
    """
    import json
    from dataclasses import replace

    from repro.server import QueryRequest, QueryService, ServerConfig

    updates = _load_update_log(updates_path) if updates_path is not None else []

    # A session-scoped engine knob like --spill-dir becomes the service's
    # spill root: the service hands each session its own subdirectory.
    spill_root = engine_config.spill_dir
    if spill_root is not None:
        engine_config = replace(engine_config, spill_dir=None)
    service = QueryService(
        ServerConfig(
            max_concurrent=1,
            queue_limit=max(1, len(updates) + 1),
            spill_root=spill_root,
            wal_root=wal_root,
        ),
        engine_config=engine_config,
    )
    maintained = None
    if recover:
        recovery = service.recover(wal_root)
        view_id = next(
            (
                session_id
                for session_id, view in service._views.items()
                if view.program == spec.name
            ),
            None,
        )
        if view_id is None:
            raise DatalogError(
                f"--serve-recover found no recoverable view for program "
                f"{spec.name!r} under {wal_root}: {recovery['failed'] or 'empty root'}"
            )
        response = {"session_id": view_id}
        maintained = service._views[view_id].fixpoint()
    else:
        response = service.submit(
            QueryRequest(
                program=spec,
                edb_data=edb_data,
                dataset=dataset,
                materialize=updates_path is not None or wal_root is not None,
            )
        )
        if not response["accepted"]:  # single-slot idle service: cannot happen
            raise DatalogError(f"service rejected the query: {response}")
        view_id = response["session_id"]
        update_ids: list[str] = []
        for index, (inserts, deletes, batch_id) in enumerate(updates):
            ack = service.submit(
                QueryRequest(
                    program=spec,
                    edb_data={},
                    dataset=dataset,
                    kind="update",
                    target_session=view_id,
                    inserts=inserts,
                    deletes=deletes,
                    batch_id=batch_id,
                )
            )
            if not ack["accepted"]:
                raise DatalogError(
                    f"service rejected update batch {index}: {ack}"
                )
            update_ids.append(ack["session_id"])
        service.pump()
        if updates_path is not None:
            service.flush()
            for update_id in update_ids:
                update = service.sessions.get(update_id)
                if update.result is None or update.result.status != "ok":
                    raise DatalogError(
                        f"update batch session {update_id} failed: {update.failure}"
                    )
            maintained = service._views[view_id].fixpoint()
    report = service.drain()
    if trace_path is not None:
        Path(trace_path).write_text(
            json.dumps(report, indent=2, sort_keys=True, default=_json_fallback) + "\n"
        )
    if metrics_path is not None:
        Path(metrics_path).write_text(
            json.dumps(
                service.metrics_snapshot(),
                indent=2,
                sort_keys=True,
                default=_json_fallback,
            )
            + "\n"
        )
    session = service.sessions.get(response["session_id"])
    if session.result is None:
        raise DatalogError(
            f"service session {session.id} ended without a result: "
            f"{session.failure}"
        )
    if maintained is not None:
        # Outputs reflect the post-churn fixpoint the updates produced.
        session.result.tuples = maintained
    return session.result


def _load_update_log(path: str | Path) -> list[tuple[dict, dict, str | None]]:
    """Parse a JSONL update log into (inserts, deletes, batch_id) batches."""
    import json

    batches: list[tuple[dict, dict, str | None]] = []
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise DatalogError(
                f"{path}:{line_number}: malformed update batch: {error}"
            ) from None
        if not isinstance(doc, dict):
            raise DatalogError(
                f"{path}:{line_number}: update batch must be a JSON object"
            )
        def _rows(side: str) -> dict:
            out = {}
            for name, rows in (doc.get(side) or {}).items():
                out[name] = np.asarray(rows, dtype=np.int64)
            return out

        batch_id = doc.get("batch_id")
        batches.append(
            (_rows("inserts"), _rows("deletes"), None if batch_id is None else str(batch_id))
        )
    return batches


def _json_fallback(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return str(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Evaluate a .datalog file"
    )
    parser.add_argument("file", help="path to the .datalog program")
    parser.add_argument(
        "--engine",
        default="RecStep",
        help="engine name (RecStep, Souffle, BigDatalog, Graspan, bddbddb, Naive)",
    )
    parser.add_argument("--threads", type=int, default=20, help="simulated workers")
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="modeled memory budget (default: the scaled server budget); "
        "tighten it to exercise the degradation ladder and spill tier",
    )
    parser.add_argument(
        "--no-enforce-budgets",
        action="store_true",
        help="disable the modeled memory/time budgets (budgets are enforced "
        "by default: runs fail with OOM/timeout at the modeled server limits)",
    )
    parser.add_argument(
        "--inject-faults",
        type=int,
        metavar="SEED",
        default=None,
        help="arm the deterministic fault-injection harness with this seed "
        "(RecStep only); injected faults are retried with backoff and the "
        "run reaches the same fixpoint as a fault-free one",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="P",
        help="per-visit fault probability for --inject-faults (default 0.02)",
    )
    parser.add_argument(
        "--degrade",
        action="store_true",
        help="enable the memory-pressure degradation ladder (lean dedup -> "
        "forced TPSD -> PBME fallback) instead of failing at the OOM line",
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="enable the spill-to-disk storage tier: under memory pressure "
        "the degradation ladder evicts cold table prefixes to segment files "
        "in DIR instead of shedding work (RecStep only; implies --degrade "
        "semantics for the spill rung; results are bit-identical to an "
        "in-memory run)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N iterations (requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write evaluation checkpoints into DIR (resumable with "
        "--resume-from)",
    )
    parser.add_argument(
        "--resume-from",
        metavar="PATH",
        default=None,
        help="resume from a checkpoint file, or the latest checkpoint in a "
        "directory",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cooperative deadline in simulated seconds; the run stops at "
        "the next iteration boundary with a structured partial report",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="divergence guard: stop after N productive fixpoint iterations "
        "with a structured partial report (status 'guard')",
    )
    parser.add_argument(
        "--max-total-rows",
        type=int,
        default=None,
        metavar="N",
        help="divergence guard: stop once the evaluation has derived N total "
        "delta rows with a structured partial report (status 'guard')",
    )
    parser.add_argument(
        "--serve-trace",
        metavar="FILE",
        default=None,
        help="route the evaluation through the concurrent query service "
        "(admission, watchdog, drain) and write the machine-readable "
        "service report to FILE as JSON (RecStep only)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="route the evaluation through the query service and write its "
        "telemetry export (per-class latency histograms, admission-queue "
        "timeline) to FILE as JSON (RecStep only; implies the service route)",
    )
    parser.add_argument(
        "--serve-updates",
        metavar="FILE",
        default=None,
        help="route the evaluation through the query service, keep the "
        "fixpoint materialized, and replay FILE as an update log (JSON "
        "lines of {\"inserts\": {rel: [[..]]}, \"deletes\": ...}) against "
        "it via incremental maintenance; outputs are the post-churn "
        "fixpoint (RecStep only; implies the service route)",
    )
    parser.add_argument(
        "--wal-root",
        metavar="DIR",
        default=None,
        help="route the evaluation through the query service and persist the "
        "materialized view durably under DIR (base checkpoint + write-ahead "
        "log of update batches); a later --serve-recover run rebuilds the "
        "view from DIR (RecStep only; implies the service route and "
        "materialization)",
    )
    parser.add_argument(
        "--serve-recover",
        action="store_true",
        help="instead of evaluating, recover the program's materialized view "
        "from --wal-root (latest base checkpoint + log replay) and write the "
        "recovered fixpoint to the outputs",
    )
    parser.add_argument(
        "--no-join-cache",
        action="store_true",
        help="disable the iteration-persistent join-state cache (RecStep "
        "only); results are identical either way, only modeled cost and "
        "memory change",
    )
    parser.add_argument(
        "--no-partitioned-exec",
        action="store_true",
        help="disable radix-partitioned join/dedup/set-difference "
        "execution (RecStep only); results are identical either way, "
        "only modeled cost and memory change",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="P",
        help="radix bucket count for partitioned execution (RecStep "
        "only; rounded up to a power of two, default 256)",
    )
    parser.add_argument(
        "--query",
        metavar="GOAL",
        default=None,
        help="answer a single point goal (e.g. 'tc(5, x)') through the "
        "magic-set demand rewrite instead of materializing every IDB "
        "relation: constants bind positions, names are free variables, "
        "'_' is a wildcard (RecStep only; overrides any '?- goal.' "
        "queries in the file)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the evaluation and print a hotspot table (RecStep only)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto); "
        "implies --profile",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=15,
        metavar="N",
        help="rows in the hotspot table (default 15)",
    )
    args = parser.parse_args(argv)

    result = run_datalog_file(
        args.file,
        engine_name=args.engine,
        threads=args.threads,
        memory_budget=args.memory_budget,
        enforce_budgets=not args.no_enforce_budgets,
        profile=args.profile or args.trace_out is not None,
        fault_seed=args.inject_faults,
        fault_rate=args.fault_rate,
        degrade=args.degrade,
        spill_dir=args.spill_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=args.resume_from,
        deadline=args.deadline,
        max_iterations=args.max_iterations,
        max_total_rows=args.max_total_rows,
        join_cache=not args.no_join_cache,
        partitioned_exec=not args.no_partitioned_exec,
        partitions=args.partitions,
        serve_trace=args.serve_trace,
        metrics_out=args.metrics_out,
        serve_updates=args.serve_updates,
        wal_root=args.wal_root,
        serve_recover=args.serve_recover,
        query=args.query,
    )
    print(f"engine:       {result.engine}")
    print(f"status:       {result.status}")
    print(f"iterations:   {result.iterations}")
    print(f"sim seconds:  {result.sim_seconds:.4f}")
    for name, size in sorted(result.sizes().items()):
        print(f"|{name}| = {size}")
    if "answer_rows" in result.detail and result.status == "ok":
        # Point-goal run: the tuples ARE the answer set; show it (capped).
        for name, answers in sorted(result.tuples.items()):
            shown = sorted(answers)[:_ANSWER_PREVIEW_ROWS]
            for row in shown:
                print(f"  {name}{tuple(row)}")
            if len(answers) > len(shown):
                print(f"  ... {len(answers) - len(shown)} more")
    if result.failure:
        detail = ", ".join(
            f"{k}={v}" for k, v in result.failure.items() if k not in ("error", "message")
        )
        print(f"failure:      {result.failure['error']}: {result.failure['message']}")
        if detail:
            print(f"              [{detail}]")
    if result.resilience:
        for key, value in sorted(result.resilience.items()):
            print(f"resilience:   {key} = {value}")
    if result.profile is not None:
        print()
        print(result.profile.render_hotspots(args.profile_top))
        rules = result.profile.render_rules()
        if rules.count("\n") > 1:  # more than just the header/separator
            print()
            print(rules)
        if result.profile.histograms:
            print()
            print(result.profile.render_histograms())
        if args.trace_out:
            from repro.obs import write_chrome_trace

            trace_path = write_chrome_trace(result.profile, args.trace_out)
            print()
            print(f"trace written to {trace_path} (load in chrome://tracing or Perfetto)")
    return exit_code_for(result.status)


#: Rows of a point-goal answer set printed before eliding.
_ANSWER_PREVIEW_ROWS = 20

#: The CLI exit-code contract (module docstring has the full story):
#: 0 ok, 1 hard failure, 2 usage (argparse's own), 3 degraded-but-served.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3

#: Statuses that stopped the run cooperatively at an iteration boundary
#: and left a structured partial result behind.
_DEGRADED_STATUSES = frozenset({"guard", "deadline"})


def exit_code_for(status: str) -> int:
    """Map a result status to the CLI exit code."""
    if status == "ok":
        return EXIT_OK
    if status in _DEGRADED_STATUSES:
        return EXIT_DEGRADED
    return EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())

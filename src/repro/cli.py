"""Command-line frontend: evaluate ``.datalog`` files.

The paper's system reads "a .datalog file, which, along with the rules of
the Datalog program, provides paths for the input and output tables"
(Section 4). This module implements that format:

    .input arc arc_edges.tsv
    .output tc tc_result.tsv

    tc(x, y) :- arc(x, y).
    tc(x, y) :- tc(x, z), arc(z, y).

Directives start with ``.``; everything else is the Datalog program.
Paths are resolved relative to the ``.datalog`` file. Run with::

    python -m repro.cli program.datalog [--engine RecStep] [--threads 20]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.harness import make_engine
from repro.common.errors import DatalogError
from repro.datalog.analyzer import analyze_program
from repro.datalog.parser import parse_program
from repro.datasets.io import load_relation, save_relation
from repro.programs.library import ProgramSpec


@dataclass
class DatalogFile:
    """A parsed ``.datalog`` file: program source plus I/O bindings."""

    source: str
    inputs: dict[str, Path] = field(default_factory=dict)
    outputs: dict[str, Path] = field(default_factory=dict)


def parse_datalog_file(path: str | Path) -> DatalogFile:
    """Split a ``.datalog`` file into directives and program text."""
    path = Path(path)
    base = path.parent
    program_lines: list[str] = []
    inputs: dict[str, Path] = {}
    outputs: dict[str, Path] = {}
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("."):
            program_lines.append(line)
            continue
        parts = stripped.split()
        if parts[0] == ".input" and len(parts) == 3:
            inputs[parts[1]] = base / parts[2]
        elif parts[0] == ".output" and len(parts) == 3:
            outputs[parts[1]] = base / parts[2]
        else:
            raise DatalogError(
                f"{path}:{line_number}: malformed directive {stripped!r} "
                "(expected '.input REL PATH' or '.output REL PATH')"
            )
    return DatalogFile(source="\n".join(program_lines), inputs=inputs, outputs=outputs)


def run_datalog_file(
    path: str | Path,
    engine_name: str = "RecStep",
    threads: int = 20,
    enforce_budgets: bool = False,
    profile: bool = False,
):
    """Parse, load, evaluate, and write outputs; returns the result."""
    datalog_file = parse_datalog_file(path)
    analyzed = analyze_program(parse_program(datalog_file.source, name=str(path)))

    missing = analyzed.edb - set(datalog_file.inputs)
    if missing:
        raise DatalogError(
            f"no .input directive for EDB relations: {sorted(missing)}"
        )
    unknown_outputs = set(datalog_file.outputs) - analyzed.idb
    if unknown_outputs:
        raise DatalogError(
            f".output names unknown IDB relations: {sorted(unknown_outputs)}"
        )

    edb_data = {
        name: load_relation(file_path, arity=analyzed.arities[name])
        for name, file_path in datalog_file.inputs.items()
        if name in analyzed.edb
    }

    spec = ProgramSpec(
        name=Path(path).stem,
        title=str(path),
        domain="user",
        source=datalog_file.source,
        outputs=tuple(sorted(datalog_file.outputs)),
    )
    extra = {}
    if profile:
        if engine_name != "RecStep":
            raise DatalogError("--profile is only supported by the RecStep engine")
        extra["profile"] = True
    engine = make_engine(
        engine_name, threads=threads, enforce_budgets=enforce_budgets, **extra
    )
    result = engine.evaluate(spec, edb_data, dataset=Path(path).stem)

    if result.status == "ok":
        for name, file_path in datalog_file.outputs.items():
            rows = np.asarray(sorted(result.tuples[name]), dtype=np.int64)
            rows = rows.reshape(-1, analyzed.arities[name])
            save_relation(file_path, rows)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Evaluate a .datalog file"
    )
    parser.add_argument("file", help="path to the .datalog program")
    parser.add_argument(
        "--engine",
        default="RecStep",
        help="engine name (RecStep, Souffle, BigDatalog, Graspan, bddbddb, Naive)",
    )
    parser.add_argument("--threads", type=int, default=20, help="simulated workers")
    parser.add_argument(
        "--enforce-budgets",
        action="store_true",
        help="fail with OOM/timeout at the modeled server limits",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the evaluation and print a hotspot table (RecStep only)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto); "
        "implies --profile",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=15,
        metavar="N",
        help="rows in the hotspot table (default 15)",
    )
    args = parser.parse_args(argv)

    result = run_datalog_file(
        args.file,
        engine_name=args.engine,
        threads=args.threads,
        enforce_budgets=args.enforce_budgets,
        profile=args.profile or args.trace_out is not None,
    )
    print(f"engine:       {result.engine}")
    print(f"status:       {result.status}")
    print(f"iterations:   {result.iterations}")
    print(f"sim seconds:  {result.sim_seconds:.4f}")
    for name, size in sorted(result.sizes().items()):
        print(f"|{name}| = {size}")
    if result.profile is not None:
        print()
        print(result.profile.render_hotspots(args.profile_top))
        rules = result.profile.render_rules()
        if rules.count("\n") > 1:  # more than just the header/separator
            print()
            print(rules)
        if args.trace_out:
            from repro.obs import write_chrome_trace

            trace_path = write_chrome_trace(result.profile, args.trace_out)
            print()
            print(f"trace written to {trace_path} (load in chrome://tracing or Perfetto)")
    return 0 if result.status == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())

"""repro: a reproduction of RecStep (VLDB 2019).

"Scaling-Up In-Memory Datalog Processing: Observations and Techniques"
— a general-purpose parallel Datalog engine built on an in-memory
relational backend, plus the baseline engines and benchmark harness the
paper evaluates against.

Public entry points:

* :class:`repro.RecStep` — the Datalog engine (the paper's system).
* :class:`repro.RecStepConfig` — optimization switches (UIE/OOF/DSD/...).
* :mod:`repro.programs` — the benchmark Datalog programs (TC, SG, CSPA...).
* :mod:`repro.datasets` — synthetic dataset generators (Gn-p, RMAT, ...).
* :mod:`repro.baselines` — Souffle/BigDatalog/bddbddb/Graspan models.
* :mod:`repro.engine` — the standalone mini-RDBMS (SQL in, arrays out).
"""

from repro.common.records import EvaluationResult
from repro.core import OofMode, PbmeMode, RecStep, RecStepConfig
from repro.engine import Database

__version__ = "1.0.0"

__all__ = [
    "RecStep",
    "RecStepConfig",
    "OofMode",
    "PbmeMode",
    "Database",
    "EvaluationResult",
    "__version__",
]

"""Synthetic Andersen's-analysis datasets 1..7 (Section 6.2).

The paper generates seven datasets "ranging from small size to large
size based on the characteristics of a tiny real dataset", where "the
number of variables (the size of active domains of each EDB relation)
increases from dataset 1 to dataset 7". We reproduce that with the
classic Andersen input model:

* ``addressOf(y, h)`` — variables take addresses of *heap objects*
  (a separate id range, like allocation sites in C);
* ``assign`` — a layered, sub-critical DAG of copies (most variables are
  assigned from at most one other variable);
* ``load``/``store`` — module-local pointer dereferences (real code
  dereferences variables of the enclosing function, not random globals).

Locality and sub-criticality keep points-to sets bounded; without them
the analysis percolates toward all-pairs and nothing like the paper's
"moderate number of tuples" comes out. Dataset ``k`` doubles dataset
``k-1``'s variable count.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_seed, make_rng
from repro.datasets.graphs import clean_edges

#: Variables in dataset 1; dataset k has ``BASE_VARIABLES * 2**(k-1)``.
BASE_VARIABLES = 150

#: Heap objects (allocation sites) per variable.
HEAP_FACTOR = 0.4

#: Statements per variable: (addressOf, assign, load, store).
STATEMENT_MIX = (0.5, 0.75, 0.10, 0.10)

#: Locality window for load/store operands (a "function" of variables).
MODULE = 16

#: Depth of the layered assign DAG.
LAYERS = 10


def andersen_dataset(number: int, seed: int = 0) -> dict[str, np.ndarray]:
    """EDB relations for Andersen's analysis, datasets 1..7."""
    if not 1 <= number <= 7:
        raise ValueError(f"Andersen datasets are numbered 1..7, got {number}")
    variables = BASE_VARIABLES * (1 << (number - 1))
    rng = make_rng(derive_seed(seed, "andersen", number))
    heap = int(variables * HEAP_FACTOR)

    def local_pair(count: int) -> np.ndarray:
        base = rng.integers(0, max(1, variables - MODULE), size=count, dtype=np.int64)
        left = base + rng.integers(0, MODULE, size=count)
        right = base + rng.integers(0, MODULE, size=count)
        return np.column_stack([left, right])

    a_count = int(variables * STATEMENT_MIX[0])
    address_of = np.column_stack(
        [
            rng.integers(0, variables, size=a_count, dtype=np.int64),
            variables + rng.integers(0, max(1, heap), size=a_count, dtype=np.int64),
        ]
    )

    s_count = int(variables * STATEMENT_MIX[1])
    per_layer = variables // LAYERS
    src_layer = rng.integers(0, LAYERS - 1, size=s_count, dtype=np.int64)
    src = src_layer * per_layer + rng.integers(0, per_layer, size=s_count)
    dst = (src_layer + 1) * per_layer + rng.integers(0, per_layer, size=s_count)

    l_count = int(variables * STATEMENT_MIX[2])
    t_count = int(variables * STATEMENT_MIX[3])
    return {
        "addressOf": clean_edges(address_of, allow_self_loops=True),
        "assign": clean_edges(np.column_stack([dst, src])),
        "load": clean_edges(local_pair(l_count), allow_self_loops=True),
        "store": clean_edges(local_pair(t_count), allow_self_loops=True),
    }

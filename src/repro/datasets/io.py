"""Edge-list file I/O.

RecStep's paper frontend reads ``.datalog`` files with paths to input
tables; examples here read/write the same whitespace-separated integer
format so users can bring their own data.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def save_relation(path: str | Path, rows: np.ndarray) -> None:
    """Write a relation as whitespace-separated integers, one tuple/line."""
    rows = np.asarray(rows, dtype=np.int64)
    np.savetxt(path, rows, fmt="%d", delimiter="\t")


def load_relation(path: str | Path, arity: int | None = None) -> np.ndarray:
    """Read a whitespace-separated integer relation file."""
    rows = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if rows.size == 0:
        return np.empty((0, arity or 0), dtype=np.int64)
    if arity is not None and rows.shape[1] != arity:
        raise ValueError(
            f"{path}: expected arity {arity}, found {rows.shape[1]} columns"
        )
    return rows

"""Proxies for the paper's real-world graphs.

livejournal, orkut, arabic and twitter are multi-GB downloads; offline we
substitute R-MAT graphs whose vertex count, edge count, and skew are the
originals scaled by ~1/100 (arabic, twitter by 1/200 to keep the largest
runs minutes, not hours). What the experiments exercise — relative sizes,
heavy-tailed degrees, and the memory envelope that OOMs Souffle and
BigDatalog on the two biggest graphs — survives the scaling.

    name         original (V, E)        proxy (V, E-draws)
    livejournal  4.8 M,  69 M           48 K, 690 K
    orkut        3.1 M, 117 M           31 K, 1.17 M
    arabic        23 M, 640 M          115 K, 3.2 M
    twitter       42 M, 1.47 B         210 K, 7.35 M
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_seed
from repro.datasets.rmat import rmat_graph

#: proxy vertex count and R-MAT edge factor per graph.
REALWORLD_SPECS: dict[str, tuple[int, int]] = {
    "livejournal": (48_000, 15),
    "orkut": (31_000, 38),
    "arabic": (115_000, 28),
    "twitter": (210_000, 35),
}


def realworld_graph(name: str, seed: int = 0) -> np.ndarray:
    """Edge list of the named real-world proxy."""
    try:
        n, edge_factor = REALWORLD_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown real-world graph {name!r}; available: {sorted(REALWORLD_SPECS)}"
        ) from None
    return rmat_graph(n, edge_factor=edge_factor, seed=derive_seed(seed, name))


def realworld_names() -> list[str]:
    return list(REALWORLD_SPECS)

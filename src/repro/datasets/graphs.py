"""Shared graph-generation helpers."""

from __future__ import annotations

import numpy as np


def clean_edges(edges: np.ndarray, allow_self_loops: bool = False) -> np.ndarray:
    """Deduplicate an edge list and (by default) drop self-loops."""
    if edges.shape[0] == 0:
        return edges.astype(np.int64).reshape(0, 2)
    edges = np.unique(np.asarray(edges, dtype=np.int64), axis=0)
    if not allow_self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    return edges


def with_weights(
    edges: np.ndarray, rng: np.random.Generator, low: int = 1, high: int = 100
) -> np.ndarray:
    """Append a uniform random integer weight column (for SSSP)."""
    weights = rng.integers(low, high, size=(edges.shape[0], 1), dtype=np.int64)
    return np.hstack([edges, weights])


def num_vertices(edges: np.ndarray) -> int:
    if edges.shape[0] == 0:
        return 0
    return int(edges[:, :2].max()) + 1


def degree_histogram(edges: np.ndarray) -> np.ndarray:
    """Out-degree per vertex (diagnostics and tests)."""
    n = num_vertices(edges)
    return np.bincount(edges[:, 0], minlength=n)

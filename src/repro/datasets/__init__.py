"""Synthetic dataset generators (Table 3's datasets, scaled to one host).

The paper's real datasets (livejournal/orkut/arabic/twitter and the
linux/postgresql/httpd program graphs) are multi-gigabyte downloads; this
offline reproduction generates structural proxies at ~1/100 scale with
the knobs that drive each experiment's shape (density for Gn-p, degree
skew for the social graphs, chain depth for CSDA, fan-out for CSPA).
EXPERIMENTS.md records every scale factor.
"""

from repro.datasets.andersen import andersen_dataset
from repro.datasets.gnp import gnp_graph
from repro.datasets.programgraphs import cspa_dataset, csda_dataset
from repro.datasets.realworld import realworld_graph
from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.rmat import rmat_graph

__all__ = [
    "gnp_graph",
    "rmat_graph",
    "realworld_graph",
    "andersen_dataset",
    "cspa_dataset",
    "csda_dataset",
    "DATASETS",
    "load_dataset",
]

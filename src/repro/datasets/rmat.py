"""R-MAT recursive-matrix graphs (Chakrabarti et al., SDM 2004).

Paper Section 6.2: "RMAT-n represents the graph that has n vertices and
10n directed edges", generated with the standard skewed partition
probabilities. The recursive quadrant descent is vectorized: all edges
descend one bit level per pass.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.datasets.graphs import clean_edges

#: Standard R-MAT quadrant probabilities (a, b, c, d).
RMAT_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    n: int,
    edge_factor: int = 10,
    probs: tuple[float, float, float, float] = RMAT_PROBS,
    seed: int = 0,
) -> np.ndarray:
    """R-MAT edge list with ``edge_factor * n`` draws before dedup."""
    if n <= 1:
        return np.empty((0, 2), dtype=np.int64)
    a, b, c, d = probs
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError(f"R-MAT probabilities must sum to 1, got {probs}")
    rng = make_rng(seed)
    levels = max(1, int(np.ceil(np.log2(n))))
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(levels):
        src <<= 1
        dst <<= 1
        draw = rng.random(m)
        # Quadrants: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        in_b = (draw >= a) & (draw < a + b)
        in_c = (draw >= a + b) & (draw < a + b + c)
        in_d = draw >= a + b + c
        dst += (in_b | in_d).astype(np.int64)
        src += (in_c | in_d).astype(np.int64)
    size = 1 << levels
    if size > n:
        src %= n
        dst %= n
    return clean_edges(np.column_stack([src, dst]))


def rmat_name(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"RMAT-{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"RMAT-{n // 1_000}K"
    return f"RMAT-{n}"

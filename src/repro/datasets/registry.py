"""Central dataset registry: name -> EDB relations.

One naming scheme across tests, examples, and every bench:

* ``G500``, ``G1K``, ``G1K-0.01`` ...        — Gn-p graphs (``arc``)
* ``RMAT-10K`` ... ``RMAT-1M``               — R-MAT graphs (``arc``)
* ``cycle-300`` / ``cycle-400``              — directed n-cycles (``arc``)
* ``livejournal`` / ``orkut`` / ...          — real-world proxies (``arc``)
* ``andersen-1`` .. ``andersen-7``           — AA EDBs
* ``csda-linux`` / ``cspa-httpd`` / ...      — program-analysis EDBs

Graph datasets return ``{"arc": edges}``; callers add ``id`` (source
vertex) or a weight column as the program requires (see
``repro.analysis.harness``).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.andersen import andersen_dataset
from repro.datasets.gnp import gnp_graph
from repro.datasets.programgraphs import CSDA_SPECS, CSPA_SPECS, cspa_dataset, csda_dataset
from repro.datasets.realworld import REALWORLD_SPECS, realworld_graph
from repro.datasets.rmat import rmat_graph

#: Scaled stand-ins for the paper's G5K..G80K sweep (1/10 vertex scale,
#: density raised so the graphs stay "dense" in the paper's sense).
GNP_SIZES: dict[str, tuple[int, float]] = {
    "G500": (500, 0.01),
    "G700": (700, 0.01),
    "G1K": (1000, 0.01),
    "G1K-0.05": (1000, 0.05),
    "G1K-0.1": (1000, 0.1),
    "G2K": (2000, 0.01),
    "G4K": (4000, 0.01),
    "G8K": (8000, 0.01),
}

#: Directed n-cycles: the TC fixpoint is all n^2 pairs, reached in ~n
#: iterations of small deltas — base-dominated growth, the spill tier's
#: home turf. Deterministic (seed-independent) by construction.
CYCLE_SIZES: dict[str, int] = {
    "cycle-300": 300,
    "cycle-400": 400,
}


def cycle_graph(n: int) -> np.ndarray:
    src = np.arange(n, dtype=np.int64)
    return np.stack([src, (src + 1) % n], axis=1)


#: Scaled stand-ins for RMAT-1M .. RMAT-128M (1/100 vertex scale).
RMAT_SIZES: dict[str, int] = {
    "RMAT-10K": 10_000,
    "RMAT-20K": 20_000,
    "RMAT-40K": 40_000,
    "RMAT-80K": 80_000,
    "RMAT-160K": 160_000,
    "RMAT-320K": 320_000,
    "RMAT-640K": 640_000,
    "RMAT-1280K": 1_280_000,
}


def _build_registry() -> dict[str, Callable[[int], dict[str, np.ndarray]]]:
    registry: dict[str, Callable[[int], dict[str, np.ndarray]]] = {}
    for name, (n, p) in GNP_SIZES.items():
        registry[name] = lambda seed, n=n, p=p: {"arc": gnp_graph(n, p, seed=seed)}
    for name, n in RMAT_SIZES.items():
        registry[name] = lambda seed, n=n: {"arc": rmat_graph(n, seed=seed)}
    for name, n in CYCLE_SIZES.items():
        registry[name] = lambda seed, n=n: {"arc": cycle_graph(n)}
    for name in REALWORLD_SPECS:
        registry[name] = lambda seed, name=name: {"arc": realworld_graph(name, seed=seed)}
    for number in range(1, 8):
        registry[f"andersen-{number}"] = lambda seed, k=number: andersen_dataset(k, seed=seed)
    for name in CSDA_SPECS:
        registry[f"csda-{name}"] = lambda seed, name=name: csda_dataset(name, seed=seed)
    for name in CSPA_SPECS:
        registry[f"cspa-{name}"] = lambda seed, name=name: cspa_dataset(name, seed=seed)
    return registry


DATASETS: dict[str, Callable[[int], dict[str, np.ndarray]]] = _build_registry()


def load_dataset(name: str, seed: int = 0) -> dict[str, np.ndarray]:
    """Generate the named dataset's EDB relations (deterministic in seed)."""
    try:
        generator = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return generator(seed)

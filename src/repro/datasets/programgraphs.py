"""Program-graph proxies for the Graspan benchmarks (linux/postgresql/httpd).

Two very different structures drive the paper's two analyses:

* **CSDA** (dataflow): control-flow graphs are long, mostly sequential
  chains with occasional branches — evaluation needs on the order of a
  *thousand* small iterations (Section 6.3: "the evaluation of CSDA on
  all three datasets needs many iterations (~1000)"), which is exactly
  the regime where per-query overhead dominates and RecStep loses.
* **CSPA** (points-to): assignment/dereference graphs are shallow but
  bushy — few iterations with large deltas, the regime where RecStep's
  data parallelism wins.

Scale: ~1/50 of the original program sizes; chain depth (CSDA) is kept
at paper scale because iteration *count* is the load-bearing property.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_seed, make_rng
from repro.datasets.graphs import clean_edges

#: CSDA proxy: (number of chains, chain length, branch probability,
#: null-seed count). Chain length sets the iteration count.
CSDA_SPECS: dict[str, tuple[int, int, float, int]] = {
    "linux": (60, 1100, 0.08, 260),
    "postgresql": (40, 800, 0.08, 160),
    "httpd": (24, 500, 0.08, 100),
}

#: CSPA proxy: number of program variables. Assign/dereference edge
#: counts derive from it (sub-critical assign branching, module-local
#: dereferences) so the valueFlow/valueAlias fixpoint is large but stays
#: inside the scaled 1.6 GB memory model — RecStep must complete all
#: three, like the paper. httpd is smallest: that is where per-query
#: overhead weighs most and Souffle edges out RecStep (Figure 15c).
CSPA_SPECS: dict[str, int] = {
    "linux": 1_700,
    "postgresql": 1_200,
    "httpd": 1_000,
}
#: Assign edges per variable (sub-critical: expected reach stays bounded).
CSPA_ASSIGN_FACTOR = 0.9
#: Dereference pairs per variable.
CSPA_DEREF_FACTOR = 0.12
#: Locality window for dereference endpoints (a "module" of variables).
CSPA_MODULE = 8
#: Depth of the layered assign DAG.
CSPA_LAYERS = 10


def csda_dataset(name: str, seed: int = 0) -> dict[str, np.ndarray]:
    """``arc`` (control-flow) and ``nullEdge`` (initial null facts)."""
    try:
        chains, length, branch_p, seeds = CSDA_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown CSDA dataset {name!r}; available: {sorted(CSDA_SPECS)}"
        ) from None
    rng = make_rng(derive_seed(seed, "csda", name))
    edges: list[np.ndarray] = []
    for chain in range(chains):
        base = chain * length
        vertices = np.arange(base, base + length, dtype=np.int64)
        edges.append(np.column_stack([vertices[:-1], vertices[1:]]))
        # Occasional short forward branches (if/else joins).
        branch_mask = rng.random(length - 3) < branch_p
        sources = vertices[:-3][branch_mask]
        edges.append(np.column_stack([sources, sources + 2]))
    arc = clean_edges(np.vstack(edges))
    # Null definitions enter near chain heads so facts flow the full depth.
    chain_ids = rng.integers(0, chains, size=seeds, dtype=np.int64)
    offsets = rng.integers(0, max(1, length // 20), size=seeds, dtype=np.int64)
    starts = chain_ids * length + offsets
    null_edges = clean_edges(
        np.column_stack([starts, starts + 1]), allow_self_loops=True
    )
    return {"arc": arc, "nullEdge": null_edges}


def cspa_dataset(name: str, seed: int = 0) -> dict[str, np.ndarray]:
    """``assign`` and ``dereference`` relations for the CSPA proxy."""
    try:
        variables = CSPA_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown CSPA dataset {name!r}; available: {sorted(CSPA_SPECS)}"
        ) from None
    rng = make_rng(derive_seed(seed, "cspa", name))
    assigns = int(variables * CSPA_ASSIGN_FACTOR)
    derefs = int(variables * CSPA_DEREF_FACTOR)
    # Layered DAG assignments: deep enough for interesting value flow,
    # sub-critical branching so reach stays bounded (paper: cloning makes
    # contexts part of the data, keeping the graph DAG-like).
    per_layer = variables // CSPA_LAYERS
    src_layer = rng.integers(0, CSPA_LAYERS - 1, size=assigns, dtype=np.int64)
    src = src_layer * per_layer + rng.integers(0, per_layer, size=assigns)
    dst = (src_layer + 1) * per_layer + rng.integers(0, per_layer, size=assigns)
    assign = clean_edges(np.column_stack([dst, src]))  # assign(to, from)
    # Dereferences are *local*: both endpoints live in the same module-
    # sized window of variables. Real program graphs have this locality;
    # without it, memoryAlias wires global shortcuts into valueFlow and
    # the fixpoint degenerates toward n^2 (nothing like the paper's data).
    base = rng.integers(
        0, max(1, variables - CSPA_MODULE), size=derefs, dtype=np.int64
    )
    deref_var = base + rng.integers(0, CSPA_MODULE, size=derefs)
    deref_val = base + rng.integers(0, CSPA_MODULE, size=derefs)
    dereference = clean_edges(
        np.column_stack([deref_var, deref_val]), allow_self_loops=True
    )
    return {"assign": assign, "dereference": dereference}

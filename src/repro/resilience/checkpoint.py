"""Checkpoint/resume for semi-naive evaluation.

Semi-naive state is small and regular: per IDB relation a full table and
a Δ table, plus a handful of counters and the DSD policy's remembered
``mu``. Snapshotting all of it at a stratum/iteration boundary is enough
to resume an interrupted evaluation to the *identical* fixpoint — the
incremental-engine property (FlowLog: "restartable by construction")
retrofitted onto the relational path.

Checkpoint format: one ``.npz`` per checkpoint. Table contents live
under ``table:full:<name>`` / ``table:delta:<name>`` keys as int64
matrices; everything scalar lives in a JSON document stored as a uint8
array under ``__meta__`` (no pickling, so checkpoints are portable and
safe to load). ``iteration`` in the metadata is the last *completed*
iteration of the in-progress stratum; ``-1`` marks a stratum boundary
(the stratum finished, its working tables already dropped).

Crash safety: a save writes to a ``.tmp`` sibling, fsyncs, and
``os.replace``s it into place, so a crash mid-write can never leave a
half-written file under a checkpoint name. The metadata carries a CRC32
over the table payload; ``load``/``latest`` verify it and treat torn or
corrupt files like missing ones — skipped with a counter bump, falling
back to the previous checkpoint — so a crashed writer never takes down
a subsequent resume.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import RecStepError
from repro.obs.counters import NULL_COUNTERS
from repro.obs.profiler import NULL_PROFILER

#: Modeled checkpoint-write bandwidth cost (simulated seconds per byte);
#: roughly the storage manager's sequential commit bandwidth.
CHECKPOINT_SECONDS_PER_BYTE = 1.0 / 1.2e9

#: Metadata format version, bumped on incompatible layout changes.
#: Version 2 added the mandatory payload checksum; version 3 the EDB
#: content fingerprint (resume must not revive a fixpoint whose inputs
#: have since been mutated).
CHECKPOINT_VERSION = 3

_CHECKPOINT_NAME = re.compile(r"ckpt-s(\d+)-(?:i(\d+)|final)\.npz$")


class CheckpointError(RecStepError):
    """A checkpoint file is missing, corrupt, or from another program."""


class StaleCheckpointError(CheckpointError):
    """A readable checkpoint whose EDB fingerprint no longer matches."""


def edb_fingerprint(edb_data: dict[str, np.ndarray]) -> str:
    """Content fingerprint of an EDB: order-insensitive, duplicate-sensitive.

    CRC32 over every relation's name, shape, and lexicographically
    sorted rows (arrays must already be ``(rows, arity)``-shaped). Row
    order never matters — two loads of the same dataset fingerprint
    identically — but contents do, so any insert/delete churn changes
    the digest.
    """
    crc = 0
    for name in sorted(edb_data):
        rows = np.ascontiguousarray(np.asarray(edb_data[name], dtype=np.int64))
        if rows.shape[0] > 1:
            rows = np.ascontiguousarray(rows[np.lexsort(rows.T[::-1])])
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(repr(rows.shape).encode("ascii"), crc)
        crc = zlib.crc32(rows.tobytes(), crc)
    return f"{crc:08x}"


@dataclass
class CheckpointState:
    """Everything needed to resume an evaluation at a boundary."""

    program: str
    stratum: int
    iteration: int  # last completed iteration; -1 = stratum finished
    tables: dict[str, np.ndarray] = field(default_factory=dict)
    dsd_mu: dict[str, float] = field(default_factory=dict)
    iterations_total: int = 0
    pbme_strata: list[int] = field(default_factory=list)
    sim_seconds: float = 0.0
    #: Content fingerprint of the EDB the snapshot was computed from
    #: (see :func:`edb_fingerprint`); "" when the writer didn't know it.
    edb_fingerprint: str = ""
    #: Highest write-ahead-log seqno folded into this snapshot; recovery
    #: replays only records strictly above it. 0 for snapshots written
    #: outside the durable-view path.
    wal_seqno: int = 0

    def nbytes(self) -> int:
        return sum(array.nbytes for array in self.tables.values())

    @property
    def stratum_complete(self) -> bool:
        return self.iteration < 0


class CheckpointManager:
    """Writes, prunes, and reloads evaluation checkpoints.

    Args:
        directory: where checkpoint files live (created on first save).
        every: keep one iteration checkpoint every N iterations (stratum
            boundaries are always checkpointed).
        keep: how many checkpoint files to retain (oldest pruned first).
        metrics: when given, each save charges modeled write time to the
            simulated clock, so checkpoint overhead shows up in runtimes.
        profiler: obs sink for checkpoint spans/counters.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 1,
        keep: int = 2,
        metrics=None,
        profiler=NULL_PROFILER,
    ) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.directory = Path(directory)
        self.every = every
        self.keep = max(1, keep)
        self.metrics = metrics
        self.profiler = profiler
        self.written = 0
        self.last_path: Path | None = None

    # -- saving ------------------------------------------------------------------

    def maybe_save(self, state: CheckpointState) -> Path | None:
        """Save if the boundary matches the interval (always for strata)."""
        if not state.stratum_complete and state.iteration % self.every != 0:
            return None
        return self.save(state)

    def save(self, state: CheckpointState) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        suffix = "final" if state.stratum_complete else f"i{state.iteration:05d}"
        path = self.directory / f"ckpt-s{state.stratum:03d}-{suffix}.npz"
        meta = {
            "version": CHECKPOINT_VERSION,
            "program": state.program,
            "stratum": state.stratum,
            "iteration": state.iteration,
            "dsd_mu": state.dsd_mu,
            "iterations_total": state.iterations_total,
            "pbme_strata": list(state.pbme_strata),
            "sim_seconds": state.sim_seconds,
            "edb_fingerprint": state.edb_fingerprint,
            "wal_seqno": state.wal_seqno,
            "checksum": _payload_checksum(state.tables),
        }
        arrays = {f"table:{key}": value for key, value in state.tables.items()}
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        with self.profiler.span(
            "CHECKPOINT",
            "statement",
            stratum=state.stratum,
            iteration=state.iteration,
            bytes=state.nbytes(),
        ):
            # Crash-safe commit: write a sibling temp file (never matched
            # by the checkpoint glob), fsync it, then atomically rename.
            # A crash before the replace leaves the previous checkpoint
            # under this name untouched; a crash after leaves the new one
            # complete. There is no window with a torn file in place.
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self.metrics is not None:
                self.metrics.advance(
                    state.nbytes() * CHECKPOINT_SECONDS_PER_BYTE, utilization=0.02
                )
            self.profiler.counters.inc("checkpoints_written")
            self.profiler.counters.inc("checkpoint_bytes_written", state.nbytes())
        self.written += 1
        self.last_path = path
        self._prune()
        return path

    def _prune(self) -> None:
        """Retain the newest ``keep`` *valid* checkpoints.

        Corrupt files must not count toward ``keep``: a torn file
        occupying a retention slot would let repeated crashes evict
        every good snapshot. The retained window is validated (newest
        first) and checksum-failing files are deleted outright, with a
        ``checkpoint_corrupt_pruned`` bump each, so the window always
        holds loadable state.
        """
        checkpoints = sorted(
            (p for p in self.directory.glob("ckpt-*.npz") if _CHECKPOINT_NAME.search(p.name)),
            key=_sort_key,
            reverse=True,
        )
        kept = 0
        for path in checkpoints:
            if kept >= self.keep:
                path.unlink(missing_ok=True)
                continue
            if path == self.last_path:
                # The file this save just wrote and fsynced; skip re-reading.
                kept += 1
                continue
            try:
                self._load_file(path)
            except CheckpointError:
                path.unlink(missing_ok=True)
                self.profiler.counters.inc("checkpoint_corrupt_pruned")
                continue
            kept += 1

    # -- loading -----------------------------------------------------------------

    @classmethod
    def load(
        cls,
        path: str | Path,
        counters=NULL_COUNTERS,
        expected_edb: str | None = None,
    ) -> CheckpointState:
        """Load a checkpoint file, or the newest *valid* one in a directory.

        A directory load walks checkpoints newest-first and skips any
        that are torn or corrupt (truncated write, bad checksum, foreign
        file) — each skip bumps ``checkpoint_corrupt_skipped`` on
        ``counters`` — so a crashed writer degrades resume to the
        previous boundary instead of aborting it. With ``expected_edb``
        (an :func:`edb_fingerprint` digest), snapshots computed from a
        *different* EDB are likewise skipped — bumping
        ``checkpoint_stale_skipped`` — so a resume after input churn
        recomputes instead of silently reviving a stale fixpoint.
        """
        path = Path(path)
        if not path.is_dir():
            state = cls._load_file(path)
            cls._check_fresh(state, expected_edb, path)
            return state
        candidates = cls._candidates(path)
        if not candidates:
            raise CheckpointError(
                f"no checkpoint files in directory {path}", path=str(path)
            )
        last_error: CheckpointError | None = None
        for candidate in candidates:
            try:
                state = cls._load_file(candidate)
                cls._check_fresh(state, expected_edb, candidate)
                return state
            except StaleCheckpointError as error:
                counters.inc("checkpoint_stale_skipped")
                last_error = error
            except CheckpointError as error:
                counters.inc("checkpoint_corrupt_skipped")
                last_error = error
        raise CheckpointError(
            f"all {len(candidates)} checkpoints in {path} are corrupt or stale "
            f"(last error: {last_error})",
            path=str(path),
        ) from last_error

    @classmethod
    def latest(
        cls,
        directory: str | Path,
        counters=NULL_COUNTERS,
        expected_edb: str | None = None,
    ) -> Path | None:
        """The most advanced *readable, fresh* checkpoint in ``directory``.

        Torn/corrupt files are skipped (with a ``checkpoint_corrupt_
        skipped`` bump each) rather than returned, so callers never
        resume from a file that cannot be loaded; fingerprint mismatches
        against ``expected_edb`` are skipped with
        ``checkpoint_stale_skipped``, mirroring the torn-file handling.
        """
        for candidate in cls._candidates(directory):
            try:
                state = cls._load_file(candidate)
                cls._check_fresh(state, expected_edb, candidate)
            except StaleCheckpointError:
                counters.inc("checkpoint_stale_skipped")
                continue
            except CheckpointError:
                counters.inc("checkpoint_corrupt_skipped")
                continue
            return candidate
        return None

    @staticmethod
    def _check_fresh(
        state: CheckpointState, expected_edb: str | None, path: Path
    ) -> None:
        if expected_edb is None or state.edb_fingerprint == expected_edb:
            return
        raise StaleCheckpointError(
            f"checkpoint {path} was computed from EDB "
            f"{state.edb_fingerprint or '<unknown>'}, but the current EDB "
            f"fingerprints as {expected_edb}: the inputs changed since the "
            "snapshot",
            path=str(path),
        )

    @staticmethod
    def _candidates(directory: str | Path) -> list[Path]:
        """Checkpoint files in ``directory``, most advanced boundary first."""
        return sorted(
            (
                p
                for p in Path(directory).glob("ckpt-*.npz")
                if _CHECKPOINT_NAME.search(p.name)
            ),
            key=_sort_key,
            reverse=True,
        )

    @staticmethod
    def _load_file(path: Path) -> CheckpointState:
        try:
            with np.load(path, allow_pickle=False) as bundle:
                if "__meta__" not in bundle:
                    raise CheckpointError(
                        f"{path} is not a checkpoint (missing metadata)",
                        path=str(path),
                    )
                meta = json.loads(bytes(bundle["__meta__"].tobytes()).decode("utf-8"))
                tables = {
                    key[len("table:"):]: np.asarray(bundle[key], dtype=np.int64)
                    for key in bundle.files
                    if key.startswith("table:")
                }
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile,
                json.JSONDecodeError) as error:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {error}", path=str(path)
            ) from error
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {meta.get('version')!r}, "
                f"expected {CHECKPOINT_VERSION}",
                path=str(path),
            )
        expected = meta.get("checksum")
        actual = _payload_checksum(tables)
        if expected != actual:
            raise CheckpointError(
                f"checkpoint {path} failed checksum verification "
                f"(stored {expected!r}, computed {actual!r}): torn or "
                "corrupt payload",
                path=str(path),
            )
        return CheckpointState(
            program=meta["program"],
            stratum=int(meta["stratum"]),
            iteration=int(meta["iteration"]),
            tables=tables,
            dsd_mu={k: float(v) for k, v in meta.get("dsd_mu", {}).items()},
            iterations_total=int(meta.get("iterations_total", 0)),
            pbme_strata=[int(i) for i in meta.get("pbme_strata", [])],
            sim_seconds=float(meta.get("sim_seconds", 0.0)),
            edb_fingerprint=str(meta.get("edb_fingerprint", "")),
            wal_seqno=int(meta.get("wal_seqno", 0)),
        )


def _payload_checksum(tables: dict[str, np.ndarray]) -> int:
    """CRC32 over every table's name, shape, and contents (order-stable)."""
    crc = 0
    for name in sorted(tables):
        array = np.ascontiguousarray(tables[name], dtype=np.int64)
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(repr(array.shape).encode("ascii"), crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc


def _sort_key(path: Path) -> tuple[int, int]:
    match = _CHECKPOINT_NAME.search(path.name)
    assert match is not None
    stratum = int(match.group(1))
    iteration = int(match.group(2)) if match.group(2) is not None else 1 << 30
    return (stratum, iteration)

"""Deterministic fault injection.

The harness reproduces the failure modes the paper's evaluation is full
of — worker crashes, transient allocation errors, memory-pressure spikes
— but deterministically: every named injection site draws from its own
seeded stream (derived via :func:`repro.common.rng.derive_seed`), so a
run with a fixed seed injects exactly the same faults at exactly the
same operations every time. Faults are raised *before* an operation's
side effects, which makes every faultable operation trivially
retryable: the retry layer re-invokes it and the evaluation reaches the
byte-identical fixpoint of a fault-free run.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import TransientStorageError
from repro.common.rng import derive_seed

#: Default probability that a visit to a fault site raises.
DEFAULT_FAULT_RATE = 0.02
#: Fraction of the memory budget a pressure spike inflates usage to.
DEFAULT_SPIKE_TO = 0.90

#: name -> description of every injection site the engine consults. The
#: injector accepts any name; these are the ones wired into the engine.
FAULT_SITES = {
    "dedup": "Database.dedup_table entry (transient allocation failure)",
    "set_difference": "Database.set_difference entry",
    "insert_select": "INSERT..SELECT dispatch (evaluation queries)",
    "append": "Database.append_rows (the R <- R U delta step)",
    "aggregate": "Database.aggregate_merge entry",
    "commit": "Database.commit (EOST flush)",
    "spill_write": "SpillManager segment write (transient, retried; raised "
    "before the tmp file is opened so a retry re-runs cleanly)",
    "spill_read": "SpillManager segment read (transient, retried)",
    "spill_enospc": "disk-full at a segment write: non-retryable, the table "
    "stays resident and the ladder proceeds to its next rung",
    "spike": "transient memory-pressure spike at query dispatch",
    "phase:*": "per-task worker failure inside a parallel phase "
    "(scan/probe/build/dedup/aggregate/bitmatrix)",
    "wal_append": "write-ahead-log append entry (transient, raised before "
    "any byte is written so a retry re-runs cleanly)",
    "wal_fsync": "write-ahead-log fsync (transient, raised before the "
    "frame is written)",
    "wal_torn": "crash mid-append: a partial frame lands durably, the log "
    "truncates back to the last record boundary and the append retries",
}


class FaultInjector:
    """Draws deterministic fault decisions for named sites.

    Args:
        seed: master seed; every site derives an independent stream.
        rate: per-visit probability of a transient storage fault.
        worker_rate: per-phase probability of a worker/task failure
            (defaults to ``rate``).
        spike_rate: per-dispatch probability of a memory-pressure spike
            (defaults to ``rate / 2``).
        spike_to: budget fraction a spike inflates the footprint to.
    """

    def __init__(
        self,
        seed: int,
        rate: float = DEFAULT_FAULT_RATE,
        worker_rate: float | None = None,
        spike_rate: float | None = None,
        spike_to: float = DEFAULT_SPIKE_TO,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"fault rate must be in [0, 1), got {rate}")
        self.seed = seed
        self.rate = rate
        self.worker_rate = rate if worker_rate is None else worker_rate
        self.spike_rate = rate / 2.0 if spike_rate is None else spike_rate
        self.spike_to = spike_to
        self._streams: dict[str, np.random.Generator] = {}
        #: site -> faults injected (the injector's own ledger; the retry
        #: layer mirrors totals into obs counters).
        self.injected: dict[str, int] = {}

    def _stream(self, site: str) -> np.random.Generator:
        stream = self._streams.get(site)
        if stream is None:
            stream = np.random.default_rng(derive_seed(self.seed, "fault", site))
            self._streams[site] = stream
        return stream

    def _fires(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if float(self._stream(site).random()) < rate:
            self.injected[site] = self.injected.get(site, 0) + 1
            return True
        return False

    # -- sites ---------------------------------------------------------------

    def check(self, site: str) -> None:
        """Raise a retryable fault at a Database operation site."""
        if self._fires(site, self.rate):
            raise TransientStorageError(
                f"injected transient storage fault at {site!r}", site=site
            )

    def task_reruns(self, phase_name: str, num_tasks: int) -> int:
        """Worker failures for one parallel phase: tasks to re-execute.

        A failed task's work is simply redone (the cost model adds the
        rerun to the phase makespan); no exception escapes the phase.
        """
        if num_tasks <= 0:
            return 0
        site = f"phase:{phase_name}"
        return 1 if self._fires(site, self.worker_rate) else 0

    def disk_full(self) -> bool:
        """Injected ENOSPC at a spill segment write.

        Returned as a boolean rather than raised: running out of disk is
        not retryable, so the SpillManager treats it exactly like a real
        exhausted disk budget (structured in-memory fallback).
        """
        return self._fires("spill_enospc", self.rate)

    def torn_write(self) -> bool:
        """Injected crash mid-append at a WAL write.

        Returned as a boolean rather than raised: the log must first
        write the partial frame (the durable evidence of the crash) and
        repair itself before surfacing a retryable fault.
        """
        return self._fires("wal_torn", self.rate)

    def spike_fraction(self) -> float | None:
        """Budget fraction to spike the footprint to, or None (no spike)."""
        if self._fires("spike", self.spike_rate):
            return self.spike_to
        return None

    def total_injected(self) -> int:
        return sum(self.injected.values())

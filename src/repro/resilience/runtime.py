"""The runtime context binding resilience features to one evaluation.

A :class:`ResilienceContext` is what the :class:`~repro.engine.database.
Database` actually holds: the fault injector (or None), the retry
policy, the degradation controller, and an optional cancellation/
deadline token. The default context is inert — every hook is a single
``is None`` branch — so evaluations without resilience features pay
nothing, mirroring how ``repro.obs`` ships null objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FaultRetriesExhausted, TransientFaultError
from repro.obs.counters import NULL_COUNTERS
from repro.resilience.degradation import DegradationController
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import RuntimeGuard
from repro.resilience.retry import RetryPolicy


@dataclass
class ResilienceContext:
    """Per-evaluation resilience state, bound to a Database's metrics."""

    injector: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degradation: DegradationController = field(
        default_factory=DegradationController
    )
    token: object | None = None  # CancellationToken, duck-typed
    guard: RuntimeGuard | None = None  # runtime divergence guard
    _metrics: object | None = field(default=None, repr=False)
    _counters: object = field(default=NULL_COUNTERS, repr=False)

    def bind(self, metrics, counters) -> None:
        """Attach the evaluation's metrics recorder and obs counters.

        Called by the Database at construction (and again when profiling
        is enabled later, so counters land in the live registry).
        """
        self._metrics = metrics
        self._counters = counters
        self.degradation.bind(metrics, counters)
        if self.guard is not None:
            self.guard.bind(self.degradation, counters)
        if self.degradation.enabled:
            metrics.pressure_listener = self.degradation.on_pressure

    @property
    def active(self) -> bool:
        """Any resilience feature engaged (for run-report gating)."""
        return (
            self.injector is not None
            or self.degradation.enabled
            or self.token is not None
            or (self.guard is not None and self.guard.enabled)
        )

    # -- fault injection + retry ---------------------------------------------------

    def run(self, site: str, operation):
        """Run ``operation`` under fault injection with retries.

        Faults are injected at operation entry (before side effects), so
        a retry simply re-invokes the operation. Backoff is charged to
        the simulated clock: retried task time lands in the makespan.
        """
        if self.injector is None:
            return operation()
        retries = 0
        while True:
            try:
                self.injector.check(site)
                return operation()
            except TransientFaultError as error:
                self._counters.inc("faults_injected")
                retries += 1
                if retries >= self.retry.max_attempts:
                    raise FaultRetriesExhausted(
                        f"operation at {site!r} still failing after "
                        f"{retries} attempts",
                        site=site,
                        attempts=retries,
                    ) from error
                self._counters.inc("fault_retries")
                if self._metrics is not None:
                    self._metrics.advance(
                        self.retry.backoff_seconds(retries, salt=site),
                        utilization=0.01,
                    )

    def maybe_spike(self) -> None:
        """Inject a transient memory-pressure spike (dispatch sites).

        The spike inflates the modeled footprint to a fraction of the
        budget and releases it immediately: watermark crossings (and the
        degradation ladder) fire, but the spike itself never exceeds the
        budget — pressure, not murder.
        """
        if self.injector is None or self._metrics is None:
            return
        fraction = self.injector.spike_fraction()
        if fraction is None:
            return
        metrics = self._metrics
        if metrics.memory_budget <= 0:
            return
        current = metrics.base_bytes + metrics.transient_bytes
        spike = int(metrics.memory_budget * fraction) - current
        if spike <= 0:
            return
        self._counters.inc("faults_memory_spikes")
        metrics.allocate_transient(spike)
        metrics.release_transient(spike)

    # -- cancellation ---------------------------------------------------------------

    def check_cancelled(self, **context) -> None:
        """Poll the cancellation/deadline token at a phase boundary."""
        if self.token is not None:
            self.token.check(**context)

    # -- divergence guard -----------------------------------------------------------

    def check_guard(self, stratum: int, iteration: int, delta_rows: int) -> None:
        """Account a productive iteration against the divergence budgets."""
        if self.guard is not None:
            self.guard.observe_iteration(stratum, iteration, delta_rows)

    def check_guard_stratum(
        self, stratum: int, iterations: int, delta_rows: int
    ) -> None:
        """Account a batch-evaluated stratum (PBME) against the budgets."""
        if self.guard is not None:
            self.guard.observe_stratum(stratum, iterations, delta_rows)

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> dict:
        """Machine-readable recap for run reports and EvaluationResults."""
        recap: dict = {}
        if self.injector is not None:
            recap["fault_seed"] = self.injector.seed
            recap["faults_injected"] = self.injector.total_injected()
            recap["fault_sites"] = dict(sorted(self.injector.injected.items()))
        if self.degradation.enabled:
            recap["pressure_level"] = self.degradation.level
            recap["degradations_taken"] = list(self.degradation.taken)
        if self.token is not None:
            recap["cancelled"] = bool(getattr(self.token, "cancelled", False))
        if self.guard is not None and self.guard.enabled:
            recap["guard"] = self.guard.summary()
        return recap

"""Cooperative cancellation and deadline tokens.

The hard time budget (:class:`~repro.common.errors.EvaluationTimeout`)
trips in the middle of whatever operation crossed it, which is faithful
to the paper's 10h-timeout DNF cells but leaves nothing behind. A token
is the graceful counterpart: the interpreter polls it at stratum and
iteration boundaries, where state is consistent, so a fired token
produces a structured partial-result report (and, with checkpointing
enabled, a resumable snapshot) instead of a bare exception.
"""

from __future__ import annotations

from repro.common.errors import EvaluationCancelled
from repro.common.timing import SimClock


class CancellationToken:
    """Manually cancellable token, checked at phase boundaries."""

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def check(self, **context) -> None:
        """Raise :class:`EvaluationCancelled` if the token has fired."""
        if self._cancelled:
            raise EvaluationCancelled(
                f"evaluation cancelled: {self._reason}",
                reason=self._reason or "cancelled",
                **context,
            )


class CompositeToken(CancellationToken):
    """Fans one poll out to several tokens (deadline + watchdog + manual).

    The first child whose ``check`` raises wins; ``cancelled`` reports
    True if any child (or the composite itself) has fired. Cancelling
    the composite directly also works — it behaves like one more child.
    """

    def __init__(self, children) -> None:
        super().__init__()
        self.children = list(children)

    @property
    def cancelled(self) -> bool:
        return self._cancelled or any(
            getattr(child, "cancelled", False) for child in self.children
        )

    def check(self, **context) -> None:
        for child in self.children:
            child.check(**context)
        super().check(**context)


class DeadlineToken(CancellationToken):
    """Fires once the simulated clock passes ``deadline_seconds``."""

    def __init__(self, clock: SimClock, deadline_seconds: float) -> None:
        super().__init__()
        if deadline_seconds < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline_seconds}")
        self._clock = clock
        self.deadline_seconds = deadline_seconds

    def check(self, **context) -> None:
        now = self._clock.now()
        if now >= self.deadline_seconds:
            self.cancel("deadline")
            raise EvaluationCancelled(
                f"simulated deadline of {self.deadline_seconds:.3f}s reached "
                f"at {now:.3f}s",
                reason="deadline",
                deadline_seconds=self.deadline_seconds,
                now=round(now, 6),
                **context,
            )
        super().check(**context)

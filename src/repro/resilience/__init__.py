"""Resilient evaluation: fault injection, retries, checkpoints, degradation.

The package that turns the paper's DNF cells into survivable events:

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  at named engine sites (worker failures, transient storage errors,
  memory-pressure spikes);
* :mod:`repro.resilience.retry` — exponential backoff accounted on the
  simulated clock;
* :mod:`repro.resilience.checkpoint` — snapshot/resume of semi-naive
  state at stratum/iteration boundaries;
* :mod:`repro.resilience.degradation` — the memory-pressure ladder
  (lean dedup → forced TPSD → PBME fallback) answering soft watermarks;
* :mod:`repro.resilience.cancellation` — cooperative deadline tokens
  checked at phase boundaries;
* :mod:`repro.resilience.runtime` — the per-evaluation context binding
  all of the above to a Database;
* :mod:`repro.resilience.wal` — append-only write-ahead logging of
  update batches for durable materialized views.
"""

from repro.resilience.cancellation import (
    CancellationToken,
    CompositeToken,
    DeadlineToken,
)
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointManager,
    CheckpointState,
)
from repro.resilience.degradation import LADDER, DegradationController
from repro.resilience.faults import DEFAULT_FAULT_RATE, FAULT_SITES, FaultInjector
from repro.resilience.guards import GUARD_SOFT_FRACTION, RuntimeGuard
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import ResilienceContext
from repro.resilience.wal import ViewDurability, WalError, WriteAheadLog

__all__ = [
    "CancellationToken",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointState",
    "CompositeToken",
    "DEFAULT_FAULT_RATE",
    "DeadlineToken",
    "DegradationController",
    "FAULT_SITES",
    "FaultInjector",
    "GUARD_SOFT_FRACTION",
    "LADDER",
    "ResilienceContext",
    "RetryPolicy",
    "RuntimeGuard",
    "ViewDurability",
    "WalError",
    "WriteAheadLog",
]

"""The memory-pressure degradation ladder.

When the modeled footprint crosses the :class:`MetricsRecorder` soft
watermarks, the controller escalates through a fixed ladder of
memory-lean fallbacks *before* the hard OOM ever fires — the same move
VLog makes with its column-oriented materialization: trade time for
footprint and keep the workload alive.

Ladder (in escalation order):

1. **shed-join-cache** (soft watermark): evict the iteration-persistent
   join indexes and stop building new ones — they are a pure
   speed-for-memory trade, so they are the first thing to give back.
2. **shed-partitioning** (soft watermark): keep operators on the shared
   hash-table path instead of radix-partitioned execution — the scatter
   buffers are transient speed-for-memory scratch, given back like the
   join cache (but per-operator, not sticky state: partitioning resumes
   if pressure recedes below the sticky level).
3. **lean-dedup** (soft watermark): deduplicate with the in-place
   sort-based path — slower per tuple, but no hash-bucket array.
4. **spill-cold-tables** (soft watermark): evict cold full-relation
   prefixes to checksummed segment files on disk and stream them back
   through the kernels — the footprint leaves RAM entirely instead of
   being shed, so work degrades to disk before anything is refused.
5. **force-tpsd** (critical watermark): override the DSD policy to the
   two-phase set difference, which never builds a hash table on the
   monotonically growing full relation.
6. **prefer-pbme** (critical watermark): let eligible TC/SG strata fall
   back to the bit-matrix engine even when the density heuristic would
   keep them relational — the packed matrix is the lowest-footprint
   representation we have.

Escalation is sticky (a level never drops) so a run's plan is
deterministic and its report can list exactly which degradations were
taken. Independently of the sticky level, each query also accepts the
*planned* transient bytes of the operation about to run: an allocation
that would itself breach the soft watermark degrades pre-flight, because
waiting for the watermark event would already be too late.
"""

from __future__ import annotations

from repro.obs.counters import NULL_COUNTERS

#: Step names, in ladder order (also the obs counter suffixes).
LADDER = (
    "shed-join-cache",
    "shed-partitioning",
    "lean-dedup",
    "spill-cold-tables",
    "force-tpsd",
    "prefer-pbme",
)

#: Pressure level at which each step engages.
_STEP_LEVEL = {
    "shed-join-cache": 1,
    "shed-partitioning": 1,
    "lean-dedup": 1,
    "spill-cold-tables": 1,
    "force-tpsd": 2,
    "prefer-pbme": 2,
}


class DegradationController:
    """Answers memory-pressure events with the degradation ladder."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.level = 0
        #: Steps actually exercised, in first-use order (for run reports).
        self.taken: list[str] = []
        self._metrics = None
        self._counters = NULL_COUNTERS

    def bind(self, metrics, counters) -> None:
        """Attach the evaluation's metrics recorder and obs counters."""
        self._metrics = metrics
        self._counters = counters

    # -- pressure events (MetricsRecorder listener) -----------------------------

    def on_pressure(self, level: int, fraction: float) -> None:
        """Watermark crossing: escalate the sticky ladder level."""
        if level > self.level:
            self.level = level

    # -- ladder queries (called by the engine at decision points) ---------------

    def _would_breach_soft(self, planned_bytes: int) -> bool:
        if self._metrics is None or planned_bytes <= 0:
            return False
        return self._metrics.budget_fraction(planned_bytes) >= self._metrics.soft_watermark

    def _engaged(self, step: str, planned_bytes: int) -> bool:
        if not self.enabled:
            return False
        return self.level >= _STEP_LEVEL[step] or self._would_breach_soft(planned_bytes)

    def shed_join_cache(self, planned_bytes: int = 0) -> bool:
        """Should the persistent join indexes be evicted and disabled?"""
        return self._engaged("shed-join-cache", planned_bytes)

    def shed_partitioning(self, planned_bytes: int = 0) -> bool:
        """Should an operator stay on the shared path instead of
        allocating radix scatter scratch?"""
        return self._engaged("shed-partitioning", planned_bytes)

    def lean_dedup(self, planned_bytes: int = 0) -> bool:
        """Should dedup take the memory-lean sort path?"""
        return self._engaged("lean-dedup", planned_bytes)

    def spill_cold_tables(self, planned_bytes: int = 0) -> bool:
        """Should cold full-relation prefixes be evicted to disk?"""
        return self._engaged("spill-cold-tables", planned_bytes)

    def force_tpsd(self, planned_bytes: int = 0) -> bool:
        """Should an OPSD set difference be overridden to TPSD?"""
        return self._engaged("force-tpsd", planned_bytes)

    def prefer_pbme(self) -> bool:
        """Should eligible strata fall back to the bit-matrix engine?"""
        return self.enabled and self.level >= _STEP_LEVEL["prefer-pbme"]

    # -- bookkeeping -------------------------------------------------------------

    def note(self, step: str) -> None:
        """Record that a degradation step changed behaviour just now."""
        self._counters.inc("degradations_taken")
        self._counters.inc(f"degradation_{step.replace('-', '_')}")
        if step not in self.taken:
            self.taken.append(step)

"""Retry policy with exponential backoff on the simulated clock.

Retried work is not free: every backoff advances the evaluation's
:class:`~repro.common.timing.SimClock`, so retry time lands in the phase
makespan exactly like real recovery time would — a heavily faulted run
is *slower* than a clean one (and can even trip the time budget), but it
reaches the identical fixpoint.

Backoff can carry deterministic jitter: pure exponential backoff
synchronizes concurrent retriers into thundering herds (every caller
that faulted together retries together, forever). With ``jitter_seed``
set, each backoff is scaled down by a fraction drawn from a
:func:`~repro.common.rng.derive_seed` stream keyed on the caller's
``salt`` and the retry index — different sites desynchronize, while the
same seed reproduces the exact same schedule across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_seed


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry parameters for transient faults.

    Attributes:
        max_attempts: total tries per operation (first attempt included).
        backoff_base: simulated seconds slept before the first retry.
        backoff_multiplier: growth factor per subsequent retry.
        jitter: maximum fraction of a backoff the jitter may shave off
            (0 disables; 0.5 means each sleep lands in [0.5x, 1.0x]).
        jitter_seed: seed for the deterministic jitter stream; ``None``
            (the default) keeps the legacy pure-exponential schedule.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    jitter_seed: int | None = None

    def backoff_seconds(self, retry_index: int, salt: str = "") -> float:
        """Backoff before retry ``retry_index`` (1-based).

        ``salt`` identifies the retrier (typically the fault site), so
        two callers backing off from the same retry index draw distinct
        jitter and stop colliding.
        """
        if retry_index < 1:
            raise ValueError(f"retry index must be >= 1, got {retry_index}")
        base = self.backoff_base * self.backoff_multiplier ** (retry_index - 1)
        if self.jitter_seed is None or self.jitter <= 0.0:
            return base
        unit = (
            derive_seed(self.jitter_seed, "retry-jitter", salt, str(retry_index))
            / float(1 << 63)
        )
        return base * (1.0 - self.jitter * unit)

    def total_backoff(self, retries: int, salt: str = "") -> float:
        """Simulated seconds spent if every one of ``retries`` fires."""
        return sum(self.backoff_seconds(i, salt) for i in range(1, retries + 1))

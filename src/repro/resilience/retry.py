"""Retry policy with exponential backoff on the simulated clock.

Retried work is not free: every backoff advances the evaluation's
:class:`~repro.common.timing.SimClock`, so retry time lands in the phase
makespan exactly like real recovery time would — a heavily faulted run
is *slower* than a clean one (and can even trip the time budget), but it
reaches the identical fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry parameters for transient faults.

    Attributes:
        max_attempts: total tries per operation (first attempt included).
        backoff_base: simulated seconds slept before the first retry.
        backoff_multiplier: growth factor per subsequent retry.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0

    def backoff_seconds(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError(f"retry index must be >= 1, got {retry_index}")
        return self.backoff_base * self.backoff_multiplier ** (retry_index - 1)

    def total_backoff(self, retries: int) -> float:
        """Simulated seconds spent if every one of ``retries`` fires."""
        return sum(self.backoff_seconds(i) for i in range(1, retries + 1))

"""Runtime divergence guards: iteration and row budgets on the live loop.

The static checker (:mod:`repro.datalog.convergence`) proves termination
for programs whose rules cannot invent new constants; anything with
arithmetic, wide domains, or adversarial input is outside its reach. The
runtime guard is the complementary defense: it watches the semi-naive
loop *as it runs* and trips when the evaluation blows through an
iteration budget (``max_iterations``) or a cumulative derived-row budget
(``max_total_rows``) without reaching a fixpoint. A trip raises
:class:`~repro.common.errors.DivergenceGuardTripped` at an iteration
boundary — the same consistent place a deadline fires — so the engine
can assemble the same structured partial-result report, distinguishable
by ``failure["kind"]``.

The guard is also wired into the degradation ladder: crossing the soft
fraction of either budget escalates the ladder one level, so a run that
is *heading* toward its row budget starts shedding memory (join caches,
hash dedup) before it is killed — the serving layer's early-warning
analogue of the memory watermarks.
"""

from __future__ import annotations

from repro.common.errors import DivergenceGuardTripped
from repro.obs.counters import NULL_COUNTERS

#: Fraction of either budget at which the guard emits a soft warning and
#: escalates the degradation ladder (mirrors the 80% memory watermark).
GUARD_SOFT_FRACTION = 0.80


class RuntimeGuard:
    """Enforces iteration/row budgets at semi-naive iteration boundaries.

    Semantics:

    * ``max_iterations`` bounds *productive* iterations: a program that
      converges in exactly ``max_iterations`` iterations completes; one
      that still has non-empty deltas after that many trips.
    * ``max_total_rows`` bounds the cumulative rows added to IDB deltas
      across all strata; the first boundary past the budget trips.

    Both budgets are optional; a guard with neither is inert.
    """

    def __init__(
        self,
        max_iterations: int | None = None,
        max_total_rows: int | None = None,
    ) -> None:
        for name, value in (
            ("max_iterations", max_iterations),
            ("max_total_rows", max_total_rows),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.max_iterations = max_iterations
        self.max_total_rows = max_total_rows
        self.iterations = 0
        self.total_rows = 0
        self._soft_fired: set[str] = set()
        self._degradation = None
        self._counters = NULL_COUNTERS

    @property
    def enabled(self) -> bool:
        return self.max_iterations is not None or self.max_total_rows is not None

    def bind(self, degradation, counters) -> None:
        """Attach the evaluation's degradation controller and counters."""
        self._degradation = degradation
        self._counters = counters

    def observe_iteration(
        self, stratum: int, iteration: int, delta_rows: int
    ) -> None:
        """Account one completed, still-productive iteration.

        Called by the interpreter at iteration boundaries — always for
        iteration 0 (the init queries are work by definition) and, in
        the recursive loop, only while deltas are non-empty (the
        converging iteration never reaches here). ``delta_rows`` is the
        total rows the iteration added across the stratum's delta
        tables.
        """
        self.iterations += 1
        self.total_rows += delta_rows
        self._check("max_iterations", self.iterations, self.max_iterations,
                    stratum, iteration)
        self._check("max_total_rows", self.total_rows, self.max_total_rows,
                    stratum, iteration)

    def observe_stratum(
        self, stratum: int, iterations: int, delta_rows: int
    ) -> None:
        """Account a whole stratum evaluated as one batch kernel.

        The bit-matrix evaluator (PBME) saturates a stratum in a single
        closed-form pass — it cannot diverge, and it exposes no
        per-iteration boundary to interpose on — so its work is charged
        against the budgets at the stratum boundary, the same place a
        deadline would fire for it.
        """
        self.iterations += iterations
        self.total_rows += delta_rows
        self._check("max_iterations", self.iterations, self.max_iterations,
                    stratum, iterations)
        self._check("max_total_rows", self.total_rows, self.max_total_rows,
                    stratum, iterations)

    def _check(
        self,
        kind: str,
        observed: int,
        budget: int | None,
        stratum: int,
        iteration: int,
    ) -> None:
        if budget is None:
            return
        if observed > budget:
            self._counters.inc(f"guard.{kind}_tripped")
            raise DivergenceGuardTripped(
                f"runtime divergence guard: {observed} exceeds "
                f"{kind}={budget} without reaching a fixpoint",
                kind=kind,
                observed=observed,
                budget=budget,
                stratum=stratum,
                iteration=iteration,
                iterations_seen=self.iterations,
                total_rows_seen=self.total_rows,
            )
        if observed >= GUARD_SOFT_FRACTION * budget and kind not in self._soft_fired:
            self._soft_fired.add(kind)
            self._counters.inc("guard.soft_warnings")
            if self._degradation is not None and self._degradation.enabled:
                # Escalate the ladder one level: a run burning through its
                # divergence budget should start trading speed for
                # footprint before the hard trip, exactly like a run
                # crossing the soft memory watermark.
                self._degradation.on_pressure(1, observed / budget)

    def summary(self) -> dict:
        """Machine-readable recap for run reports."""
        recap: dict = {
            "iterations": self.iterations,
            "total_rows": self.total_rows,
        }
        if self.max_iterations is not None:
            recap["max_iterations"] = self.max_iterations
        if self.max_total_rows is not None:
            recap["max_total_rows"] = self.max_total_rows
        if self._soft_fired:
            recap["soft_warnings"] = sorted(self._soft_fired)
        return recap

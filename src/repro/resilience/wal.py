"""Write-ahead logging for durable materialized views.

A materialized fixpoint is warm state: rebuilding it from the EDB is
always *possible*, but the serving tier's whole point is that it never
has to. This module makes the warm state survive the process. Each
durable view owns a directory::

    <wal_root>/<session-id>/
        view.json        # manifest: program source + admission quota
        base/            # CheckpointManager base snapshots (fulls + EDB)
        wal.log          # append-only update log (this module)

``wal.log`` is an append-only, CRC-framed, length-prefixed log of
update batches. Layout: a fixed prologue (``RWAL`` magic + format
version), then framed records — ``<u32 payload length><u32 CRC32 over
the payload><JSON payload>``. Record zero is always a *header* carrying
the compaction watermark (``base_seqno``: every record at or below it
is already folded into the base checkpoint) and the set of applied
client ``batch_id``s; subsequent records are *batch* records with a
monotonic ``seqno``, the optional client ``batch_id``, and the raw
insert/delete rows.

Durability discipline matches the spill/checkpoint tiers exactly:

* the log is **created** and **compacted** via tmp + fsync +
  ``os.replace`` (no window with a torn file under the live name);
* every **append** is write + flush + fsync of one complete frame;
* on **open**, a torn tail — a partial frame, a CRC mismatch, an
  undecodable payload — is truncated back to the last whole-record
  boundary (``wal.torn_truncated``), never read past;
* a header that cannot be read at all is unrecoverable and raises
  :class:`WalError` — the caller quarantines the view rather than
  guessing.

Appends run under the deterministic fault harness: ``wal_append`` and
``wal_fsync`` are transient entry faults (raised before any byte is
written, so a retry re-runs cleanly); ``wal_torn`` actually writes a
partial frame and fsyncs it before failing — the simulated
crash-mid-append — after which the log repairs itself by truncating
back to the last durable boundary (``wal.torn_repaired``), exactly the
operation recovery would perform.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import (
    FaultRetriesExhausted,
    RecStepError,
    TransientFaultError,
    TransientStorageError,
)
from repro.obs.counters import NULL_COUNTERS
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.retry import RetryPolicy

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1

_PROLOGUE = struct.Struct("<4sI")  # magic, format version
_FRAME = struct.Struct("<II")  # payload length, CRC32 over the payload

#: Sanity cap on one record's payload: a corrupt length field must not
#: make the reader attempt a multi-gigabyte allocation.
MAX_RECORD_BYTES = 64 << 20

#: File names inside one durable view's directory.
MANIFEST_NAME = "view.json"
BASE_DIR_NAME = "base"
WAL_NAME = "wal.log"


class WalError(RecStepError):
    """A write-ahead log is missing or unreadable beyond repair."""


@dataclass
class WalRecord:
    """One durably logged update batch."""

    seqno: int
    batch_id: str | None
    inserts: dict[str, np.ndarray] = field(default_factory=dict)
    deletes: dict[str, np.ndarray] = field(default_factory=dict)


def _rows_to_jsonable(batch: dict | None) -> dict:
    out: dict = {}
    for name, rows in (batch or {}).items():
        out[name] = np.asarray(rows, dtype=np.int64).tolist()
    return out


def _rows_from_jsonable(batch: dict) -> dict[str, np.ndarray]:
    return {
        name: np.asarray(rows, dtype=np.int64)
        for name, rows in (batch or {}).items()
    }


class WriteAheadLog:
    """One view's append-only update log.

    Construct via :meth:`create` (a fresh log, atomically published) or
    :meth:`open` (an existing log, torn tail truncated). Not a public
    entry point on its own — :class:`ViewDurability` owns the lifecycle.
    """

    def __init__(
        self,
        path: Path,
        *,
        program: str,
        base_seqno: int,
        applied_batch_ids: set[str],
        records: list[WalRecord],
        size_bytes: int,
        counters=NULL_COUNTERS,
        injector=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.path = Path(path)
        self.program = program
        #: Every record with ``seqno <= base_seqno`` is folded into the
        #: base checkpoint; replay starts strictly above it.
        self.base_seqno = base_seqno
        #: Client batch ids acknowledged by this log (header set plus
        #: every batch record still in the log) — the idempotence filter.
        self.applied_batch_ids = set(applied_batch_ids)
        self.records = list(records)
        self._size = size_bytes
        self._counters = counters
        self._injector = injector
        self._retry = retry or RetryPolicy()
        last = max([base_seqno] + [record.seqno for record in records])
        self.next_seqno = last + 1

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        program: str,
        base_seqno: int = 0,
        applied_batch_ids: set[str] | None = None,
        counters=NULL_COUNTERS,
        injector=None,
        retry: RetryPolicy | None = None,
    ) -> "WriteAheadLog":
        """Atomically publish a fresh log holding only its header."""
        path = Path(path)
        payload = cls._header_payload(program, base_seqno, applied_batch_ids or set())
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(_PROLOGUE.pack(WAL_MAGIC, WAL_VERSION))
            handle.write(cls._frame(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return cls.open(
            path, counters=counters, injector=injector, retry=retry
        )

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        counters=NULL_COUNTERS,
        injector=None,
        retry: RetryPolicy | None = None,
    ) -> "WriteAheadLog":
        """Open an existing log, truncating any torn tail.

        A log whose prologue or header record cannot be read is beyond
        repair — there is no boundary to truncate back to — and raises
        :class:`WalError`; everything after the last whole, checksummed
        record is truncated away with a ``wal.torn_truncated`` bump.
        """
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as error:
            raise WalError(
                f"cannot read write-ahead log {path}: {error}", path=str(path)
            ) from error
        if len(data) < _PROLOGUE.size:
            raise WalError(
                f"write-ahead log {path} is shorter than its prologue",
                path=str(path),
            )
        magic, version = _PROLOGUE.unpack_from(data, 0)
        if magic != WAL_MAGIC or version != WAL_VERSION:
            raise WalError(
                f"write-ahead log {path} has foreign prologue "
                f"(magic {magic!r}, version {version})",
                path=str(path),
            )
        docs, good_end, torn = cls._scan(data)
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            counters.inc("wal.torn_truncated")
        if not docs or docs[0].get("kind") != "header":
            raise WalError(
                f"write-ahead log {path} has no readable header record",
                path=str(path),
            )
        header = docs[0]
        records = [
            WalRecord(
                seqno=int(doc["seqno"]),
                batch_id=doc.get("batch_id"),
                inserts=_rows_from_jsonable(doc.get("inserts", {})),
                deletes=_rows_from_jsonable(doc.get("deletes", {})),
            )
            for doc in docs[1:]
            if doc.get("kind") == "batch"
        ]
        applied = set(header.get("applied", []))
        applied.update(r.batch_id for r in records if r.batch_id is not None)
        return cls(
            path,
            program=str(header.get("program", "")),
            base_seqno=int(header.get("base_seqno", 0)),
            applied_batch_ids=applied,
            records=records,
            size_bytes=good_end,
            counters=counters,
            injector=injector,
            retry=retry,
        )

    @staticmethod
    def _scan(data: bytes) -> tuple[list[dict], int, bool]:
        """Walk frames; return (docs, last good offset, torn tail seen)."""
        offset = _PROLOGUE.size
        docs: list[dict] = []
        good_end = offset
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                return docs, good_end, True
            length, crc = _FRAME.unpack_from(data, offset)
            if length > MAX_RECORD_BYTES:
                return docs, good_end, True
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                return docs, good_end, True
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return docs, good_end, True
            try:
                doc = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return docs, good_end, True
            docs.append(doc)
            offset = end
            good_end = end
        return docs, good_end, False

    # -- appends -----------------------------------------------------------------

    def append(
        self,
        inserts: dict | None,
        deletes: dict | None,
        batch_id: str | None = None,
    ) -> int:
        """Durably append one batch; returns its assigned seqno.

        The append must complete (fsync included) before the caller may
        mutate the view — write-ahead in the literal sense. Injected
        transient faults are retried up to the policy's attempt budget;
        exhaustion raises :class:`FaultRetriesExhausted` with the batch
        still *not* in the log (a torn partial frame is truncated back
        before the error surfaces, so the log stays at a record
        boundary).
        """
        seqno = self.next_seqno
        doc = {
            "kind": "batch",
            "seqno": seqno,
            "batch_id": batch_id,
            "inserts": _rows_to_jsonable(inserts),
            "deletes": _rows_to_jsonable(deletes),
        }
        frame = self._frame(json.dumps(doc, sort_keys=True).encode("utf-8"))
        retries = 0
        while True:
            try:
                self._append_frame(frame)
                break
            except TransientFaultError as error:
                self._counters.inc("wal.append_retries")
                retries += 1
                if retries >= self._retry.max_attempts:
                    raise FaultRetriesExhausted(
                        f"write-ahead append to {self.path.name} still "
                        f"failing after {retries} attempts",
                        site=getattr(error, "context", {}).get("site", "wal_append"),
                        attempts=retries,
                    ) from error
        self.records.append(
            WalRecord(
                seqno=seqno,
                batch_id=batch_id,
                inserts=_rows_from_jsonable(doc["inserts"]),
                deletes=_rows_from_jsonable(doc["deletes"]),
            )
        )
        if batch_id is not None:
            self.applied_batch_ids.add(batch_id)
        self.next_seqno = seqno + 1
        self._counters.inc("wal.appends")
        self._counters.inc("wal.bytes_appended", len(frame))
        return seqno

    def _append_frame(self, frame: bytes) -> None:
        if self._injector is not None:
            # Entry faults: raised before any byte lands, so the retry
            # loop re-runs the append cleanly.
            self._injector.check("wal_append")
            self._injector.check("wal_fsync")
            if self._injector.torn_write():
                # The simulated crash mid-append: a partial frame is
                # durably on disk when the "crash" hits. Repair exactly
                # like open() would — truncate to the last boundary —
                # then surface a retryable fault.
                with open(self.path, "ab") as handle:
                    handle.write(frame[: max(1, len(frame) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                self._repair()
                raise TransientStorageError(
                    "injected torn write-ahead append at 'wal_torn'",
                    site="wal_torn",
                )
        with open(self.path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        self._size += len(frame)

    def _repair(self) -> None:
        """Truncate back to the last durable record boundary."""
        with open(self.path, "r+b") as handle:
            handle.truncate(self._size)
            handle.flush()
            os.fsync(handle.fileno())
        self._counters.inc("wal.torn_repaired")

    # -- compaction --------------------------------------------------------------

    def compact(self, base_seqno: int, applied_batch_ids: set[str]) -> None:
        """Truncate the log to a fresh header via atomic replace.

        Called *after* a base checkpoint carrying ``wal_seqno ==
        base_seqno`` has been durably saved. A crash between the two
        steps is safe in either order of observation: the new base skips
        folded records by seqno, and the old base replays them.
        """
        payload = self._header_payload(
            self.program, base_seqno, applied_batch_ids
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(_PROLOGUE.pack(WAL_MAGIC, WAL_VERSION))
            handle.write(self._frame(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.base_seqno = base_seqno
        self.applied_batch_ids = set(applied_batch_ids)
        self.records = []
        self._size = _PROLOGUE.size + _FRAME.size + len(payload)
        self._counters.inc("wal.compactions")

    # -- introspection -----------------------------------------------------------

    def batches(self) -> list[WalRecord]:
        """Records not yet folded into the base checkpoint, in order."""
        return [r for r in self.records if r.seqno > self.base_seqno]

    @property
    def record_count(self) -> int:
        return len(self.records)

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def last_seqno(self) -> int:
        return self.next_seqno - 1

    # -- framing -----------------------------------------------------------------

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    @staticmethod
    def _header_payload(
        program: str, base_seqno: int, applied_batch_ids: set[str]
    ) -> bytes:
        doc = {
            "kind": "header",
            "program": program,
            "base_seqno": int(base_seqno),
            "applied": sorted(applied_batch_ids),
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")


class ViewDurability:
    """The durable half of one materialized view.

    Owns the view directory: the manifest, the base-checkpoint manager,
    and the write-ahead log. The manifest is written *last* at creation
    (tmp + fsync + replace), so its presence is the durability commit
    point — a crash mid-setup leaves a directory recovery ignores.

    The ``view`` arguments below are duck-typed
    :class:`~repro.core.recstep.MaterializedFixpoint` instances (this
    module must not import ``repro.core``); the only method used is
    ``snapshot_state(wal_seqno)``.
    """

    def __init__(
        self,
        directory: Path,
        wal: WriteAheadLog,
        checkpoints: CheckpointManager,
        last_applied_seqno: int,
        counters=NULL_COUNTERS,
    ) -> None:
        self.directory = Path(directory)
        self.wal = wal
        self.checkpoints = checkpoints
        #: Highest seqno whose batch the live view has actually applied
        #: (acknowledged); compaction folds the base up to exactly here.
        self.last_applied_seqno = last_applied_seqno
        self._counters = counters

    # -- creation ----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str | Path,
        view,
        manifest: dict,
        *,
        counters=NULL_COUNTERS,
        injector=None,
        retry: RetryPolicy | None = None,
    ) -> "ViewDurability":
        """Persist a just-materialized view: base checkpoint, empty log,
        then the manifest as the atomic commit point."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        checkpoints = CheckpointManager(directory / BASE_DIR_NAME)
        checkpoints.save(view.snapshot_state(wal_seqno=0))
        wal = WriteAheadLog.create(
            directory / WAL_NAME,
            program=view.program,
            counters=counters,
            injector=injector,
            retry=retry,
        )
        cls._write_manifest(directory / MANIFEST_NAME, manifest)
        counters.inc("wal.views_persisted")
        return cls(directory, wal, checkpoints, 0, counters=counters)

    @staticmethod
    def _write_manifest(path: Path, manifest: dict) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @staticmethod
    def read_manifest(directory: str | Path) -> dict:
        path = Path(directory) / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise WalError(
                f"cannot read view manifest {path}: {error}", path=str(path)
            ) from error
        if not isinstance(manifest, dict) or "source" not in manifest:
            raise WalError(
                f"view manifest {path} is malformed", path=str(path)
            )
        return manifest

    # -- the serving protocol ----------------------------------------------------

    def is_duplicate(self, batch_id: str | None) -> bool:
        """Has this client batch already been acknowledged?"""
        return batch_id is not None and batch_id in self.wal.applied_batch_ids

    def log_update(
        self, inserts: dict | None, deletes: dict | None, batch_id: str | None
    ) -> int:
        """Durably log one batch *before* the view mutates; returns its seqno."""
        return self.wal.append(inserts, deletes, batch_id=batch_id)

    def note_applied(self, seqno: int) -> None:
        """The logged batch at ``seqno`` was applied and acknowledged."""
        self.last_applied_seqno = max(self.last_applied_seqno, seqno)

    def should_compact(self, max_records: int, max_bytes: int) -> bool:
        applied = [
            r for r in self.wal.batches() if r.seqno <= self.last_applied_seqno
        ]
        if not applied:
            return False
        return len(applied) >= max_records or self.wal.size_bytes >= max_bytes

    def compact(self, view) -> None:
        """Roll a fresh base checkpoint, then truncate the log.

        Ordering is the crash-safety argument: the base (stamped with
        ``wal_seqno = last_applied_seqno``) is durably replaced first,
        the log truncated second. A crash before the checkpoint replays
        the old log onto the old base; a crash between the two replays
        the old log onto the *new* base, and every folded record is
        skipped by its seqno.
        """
        self.checkpoints.save(
            view.snapshot_state(wal_seqno=self.last_applied_seqno)
        )
        self.wal.compact(self.last_applied_seqno, self.wal.applied_batch_ids)

"""Graspan behavioural model (Wang et al., ASPLOS 2017).

A single-machine disk-based graph system for interprocedural static
analysis: computation is a worklist over *edge pairs* driven by a
context-free grammar, so it only expresses binary relations and neither
negation nor aggregation. The paper attributes its slowness to frequent
sorting, coordination, and poor multi-core utilization; being disk-based
it rarely OOMs — it is just slow.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, CostProfile
from repro.common.errors import UnsupportedFeatureError
from repro.datalog.analyzer import AnalyzedProgram


class GraspanLike(BaselineEngine):
    name = "Graspan"

    def make_profile(self, threads: int) -> CostProfile:
        return CostProfile(
            name=self.name,
            threads=threads,
            parallel_efficiency=0.18,        # poor multi-core utilization
            per_tuple_build=3.0e-6,
            per_tuple_probe=2.0e-6,
            per_tuple_materialize=1.5e-6,
            per_tuple_dedup=9.0e-6,          # sort-merge dedup every round
            per_iteration_overhead=2.0e-1,   # partition (re)load + sort from disk
            startup_overhead=2.0,
            memory_overhead_factor=0.8,      # disk-resident partitions
            transient_overhead_factor=1.2,
        )

    def check_supported(self, analyzed: AnalyzedProgram) -> None:
        features = analyzed.features
        if features:
            if features.has_aggregation:
                raise UnsupportedFeatureError(
                    "Graspan's grammar formulation cannot express aggregation"
                )
            if features.has_negation:
                raise UnsupportedFeatureError(
                    "Graspan's grammar formulation cannot express negation"
                )
            if features.max_arity > 2:
                raise UnsupportedFeatureError(
                    "Graspan is restricted to binary relations (graphs)"
                )

"""Souffle behavioural model.

Souffle compiles Datalog to native parallel C++ with B-tree/trie indexes
(Scholz et al., CC 2016). Its envelope per Table 1: mutual recursion and
stratified negation yes, *recursive aggregation no*. Its profile: very
cheap compiled per-tuple work, but per-iteration barriers across its
parallel sections; index maintenance makes inserts/dedup pricier,
parallel sections contend per target index and leave cores idle on
single-IDB workloads (the paper's REACH/AA observation), and B-tree
nodes cost extra memory (OOMs on the big dense graphs).
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, CostProfile
from repro.common.errors import UnsupportedFeatureError
from repro.datalog.analyzer import AnalyzedProgram


class SouffleLike(BaselineEngine):
    name = "Souffle"

    def make_profile(self, threads: int) -> CostProfile:
        return CostProfile(
            name=self.name,
            threads=threads,
            parallel_efficiency=0.60,
            per_tuple_build=6.5e-7,       # B-tree index insert
            per_tuple_probe=3.2e-7,
            per_tuple_materialize=1.5e-7,
            per_tuple_dedup=8.0e-7,       # dedup via index insertion
            per_iteration_overhead=3.5e-2,  # per-iteration parallel-section barriers
            startup_overhead=0.5,           # binary startup + load
            memory_overhead_factor=3.0,     # B-tree node overhead
            transient_overhead_factor=2.0,
            # Parallel sections contend on the target relation's index:
            # single-IDB strata (REACH, AA, TC) underuse the machine —
            # the paper's Souffle observation on REACH and AA.
            width_cap_per_idb=6.0,
        )

    def check_supported(self, analyzed: AnalyzedProgram) -> None:
        features = analyzed.features
        if features and features.has_recursive_aggregation:
            raise UnsupportedFeatureError(
                "Souffle does not support aggregation inside recursion "
                "(paper Section 6.3: CC and SSSP are skipped)"
            )

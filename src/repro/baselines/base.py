"""Shared machinery for the baseline engines.

``BaselineEngine`` runs stratified semi-naive evaluation with the
array-based rule evaluator, while each concrete engine supplies:

* a **feature gate** (`check_supported`) reproducing Table 1's envelope;
* a **cost profile** converting measured work (tuples built/probed/
  materialized) into simulated seconds under that system's parallelism;
* a **memory model** (overhead factor over raw tuple bytes) that decides
  when the engine OOMs, reproducing the paper's failure envelope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import (
    EvaluationTimeout,
    OutOfMemoryError,
    UnsupportedFeatureError,
)
from repro.common.records import EvaluationResult
from repro.datalog.analyzer import AnalyzedProgram, Stratum
from repro.engine import kernels
from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET, MetricsRecorder
from repro.baselines.ruleeval import WorkCounters, evaluate_rule
from repro.programs.library import ProgramSpec


@dataclass(frozen=True)
class CostProfile:
    """Converts rule-evaluation work into simulated time for one engine."""

    name: str
    threads: int = 20
    parallel_efficiency: float = 0.6     # usable fraction of the thread pool
    per_tuple_build: float = 8.0e-7
    per_tuple_probe: float = 4.0e-7
    per_tuple_scan: float = 1.0e-7
    per_tuple_materialize: float = 1.5e-7
    per_tuple_dedup: float = 6.0e-7
    per_iteration_overhead: float = 1.0e-3
    startup_overhead: float = 0.05
    memory_overhead_factor: float = 2.0  # resident bytes per raw tuple byte
    transient_overhead_factor: float = 2.5
    #: When set, parallel width is additionally capped at this many
    #: workers per IDB relation in the stratum — models engines whose
    #: parallel sections contend on one shared index per target relation
    #: (the paper's Souffle underutilization on REACH/AA, Figure 16).
    width_cap_per_idb: float | None = None

    def effective_width(self, num_predicates: int = 1) -> float:
        width = max(1.0, self.threads * self.parallel_efficiency)
        if self.width_cap_per_idb is not None:
            width = min(width, self.width_cap_per_idb * max(1, num_predicates))
        return max(1.0, width)

    def iteration_seconds(
        self, work: WorkCounters, dedup_tuples: int, num_predicates: int = 1
    ) -> float:
        serial = (
            work.tuples_built * self.per_tuple_build
            + work.tuples_probed * self.per_tuple_probe
            + work.tuples_scanned * self.per_tuple_scan
            + work.tuples_materialized * self.per_tuple_materialize
            + dedup_tuples * self.per_tuple_dedup
        )
        return serial / self.effective_width(num_predicates) + self.per_iteration_overhead


class BaselineEngine:
    """Base class: stratified semi-naive evaluation with pluggable costs."""

    name = "Baseline"

    def __init__(
        self,
        threads: int = 20,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        time_budget: float = DEFAULT_TIME_BUDGET,
        enforce_budgets: bool = True,
    ) -> None:
        self.memory_budget = memory_budget
        self.time_budget = time_budget
        self.enforce_budgets = enforce_budgets
        self.profile = self.make_profile(threads)

    # -- per-engine hooks ------------------------------------------------------

    def make_profile(self, threads: int) -> CostProfile:
        raise NotImplementedError

    def check_supported(self, analyzed: AnalyzedProgram) -> None:
        """Raise UnsupportedFeatureError outside this engine's envelope."""

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        program: ProgramSpec,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
    ) -> EvaluationResult:
        analyzed = program.parse()
        result = EvaluationResult(engine=self.name, program=program.name, dataset=dataset)
        metrics = MetricsRecorder(
            memory_budget=self.memory_budget,
            time_budget=self.time_budget,
            enforce_budgets=self.enforce_budgets,
        )
        wall_start = time.perf_counter()
        try:
            self.check_supported(analyzed)
            relations = self._init_relations(analyzed, edb_data)
            metrics.advance(self.profile.startup_overhead, utilization=0.05)
            iterations = 0
            for stratum in analyzed.strata:
                iterations += self._run_stratum(analyzed, stratum, relations, metrics)
            result.iterations = iterations
            for name in sorted(analyzed.idb):
                rows = relations[name]
                result.tuples[name] = {tuple(int(v) for v in row) for row in rows}
        except UnsupportedFeatureError as error:
            result.status = "unsupported"
            result.unsupported_reason = str(error)
        except OutOfMemoryError as error:
            result.status = "oom"
            result.failure = error.to_dict()
        except EvaluationTimeout as error:
            result.status = "timeout"
            result.failure = error.to_dict()
        result.wall_seconds = time.perf_counter() - wall_start
        result.sim_seconds = metrics.now()
        result.peak_memory_bytes = metrics.peak_bytes
        result.memory_trace = metrics.memory_trace
        result.cpu_trace = metrics.cpu_trace
        return result

    # -- internals ------------------------------------------------------------------

    def _init_relations(
        self, analyzed: AnalyzedProgram, edb_data: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        relations: dict[str, np.ndarray] = {}
        for name in sorted(analyzed.edb):
            arity = analyzed.arities[name]
            relations[name] = np.asarray(edb_data[name], dtype=np.int64).reshape(-1, arity)
        for name in sorted(analyzed.idb):
            relations[name] = np.empty((0, analyzed.arities[name]), dtype=np.int64)
        return relations

    #: Hard cap on any single join intermediate, independent of the modeled
    #: budget: keeps host-side allocations bounded even when the modeled
    #: budget would allow a few hundred million rows.
    HARD_ROW_CAP = 25_000_000

    def _make_counters(self) -> WorkCounters:
        counters = WorkCounters()
        if self.enforce_budgets:
            modeled = int(
                self.memory_budget / (8 * self.profile.transient_overhead_factor)
            )
            counters.row_limit = min(modeled, self.HARD_ROW_CAP)
        return counters

    def _resident_bytes(self, relations: dict[str, np.ndarray]) -> int:
        raw = sum(rows.shape[0] * rows.shape[1] * 8 for rows in relations.values())
        return int(raw * self.profile.memory_overhead_factor)

    def _account(
        self,
        metrics: MetricsRecorder,
        relations: dict[str, np.ndarray],
        work: WorkCounters,
        dedup_tuples: int,
        num_predicates: int = 1,
    ) -> None:
        seconds = self.profile.iteration_seconds(work, dedup_tuples, num_predicates)
        busy = min(1.0, self.profile.effective_width(num_predicates) / self.profile.threads)
        transient = int(
            work.peak_intermediate_rows * 8 * self.profile.transient_overhead_factor
        )
        metrics.allocate_transient(transient)
        metrics.advance(seconds, utilization=busy)
        metrics.release_transient(transient)
        metrics.set_base_bytes(self._resident_bytes(relations))

    def _run_stratum(
        self,
        analyzed: AnalyzedProgram,
        stratum: Stratum,
        relations: dict[str, np.ndarray],
        metrics: MetricsRecorder,
    ) -> int:
        predicates = sorted(stratum.idb_predicates())
        agg_funcs = {name: analyzed.aggregate_func(name) for name in predicates}
        deltas: dict[str, np.ndarray] = {}

        # Iteration 0: all rules over full relations.
        work = self._make_counters()
        dedup_tuples = 0
        for name in predicates:
            produced = [
                evaluate_rule(rule, relations, counters=work)
                for rule in analyzed.rules_for(name, stratum)
                if not rule.is_fact
            ]
            facts = [
                np.asarray([_fact_values(rule)], dtype=np.int64)
                for rule in analyzed.rules_for(name, stratum)
                if rule.is_fact
            ]
            candidate = _vstack(produced + facts, analyzed.arities[name])
            dedup_tuples += candidate.shape[0]
            merged, delta = _merge(relations[name], candidate, agg_funcs[name])
            relations[name] = merged
            deltas[name] = delta
        self._account(metrics, relations, work, dedup_tuples, len(predicates))
        iterations = 1

        if not stratum.recursive:
            return iterations

        while any(delta.shape[0] for delta in deltas.values()):
            work = self._make_counters()
            dedup_tuples = 0
            new_deltas: dict[str, np.ndarray] = {}
            for name in predicates:
                produced = []
                for rule in analyzed.rules_for(name, stratum):
                    if rule.is_fact:
                        continue
                    recursive_positions = [
                        index
                        for index, atom in enumerate(rule.positive_atoms())
                        if atom.predicate in stratum.predicates
                    ]
                    for position in recursive_positions:
                        produced.append(
                            evaluate_rule(
                                rule,
                                relations,
                                delta_atom=position,
                                delta_relations=deltas,
                                counters=work,
                            )
                        )
                candidate = _vstack(produced, analyzed.arities[name])
                dedup_tuples += candidate.shape[0]
                merged, delta = _merge(relations[name], candidate, agg_funcs[name])
                relations[name] = merged
                new_deltas[name] = delta
                deltas[name] = delta  # Algorithm-1 style in-stratum visibility
            self._account(metrics, relations, work, dedup_tuples, len(predicates))
            iterations += 1
            deltas = new_deltas
        return iterations


def _fact_values(rule) -> list[int]:
    return [term.value for term in rule.head.terms]


def _vstack(parts: list[np.ndarray], arity: int) -> np.ndarray:
    parts = [part for part in parts if part.shape[0]]
    if not parts:
        return np.empty((0, arity), dtype=np.int64)
    return np.vstack(parts)


def _merge(
    existing: np.ndarray, candidate: np.ndarray, agg_func: str | None
) -> tuple[np.ndarray, np.ndarray]:
    """Merge candidate rows into a relation; return (merged, delta)."""
    if agg_func in ("MIN", "MAX"):
        combined = np.vstack([existing, candidate]) if existing.shape[0] else candidate
        if combined.shape[0] == 0:
            return existing, candidate
        group_columns = [combined[:, i] for i in range(combined.shape[1] - 1)]
        keys, (values,) = kernels.group_aggregate(
            group_columns, [(agg_func, combined[:, -1])]
        )
        merged = (
            np.column_stack([keys, values]) if group_columns else values.reshape(-1, 1)
        )
        delta = kernels.rows_difference(merged, existing)
        return merged, delta
    delta = kernels.rows_difference(candidate, existing)
    merged = np.vstack([existing, delta]) if existing.shape[0] else delta
    return merged, delta

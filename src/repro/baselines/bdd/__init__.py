"""From-scratch reduced ordered BDD package and the bddbddb baseline."""

from repro.baselines.bdd.bdd import BddManager
from repro.baselines.bdd.solver import BddbddbLike

__all__ = ["BddManager", "BddbddbLike"]

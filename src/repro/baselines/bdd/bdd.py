"""A reduced ordered binary decision diagram (ROBDD) package.

The substrate for the bddbddb baseline (Whaley & Lam): relations are
boolean functions over bit-blasted attributes, so joins become AND,
projection becomes existential quantification, and dedup is free.

The manager counts every recursive operation step; the solver converts
that count into simulated time and enforces an operation cap so runaway
BDDs (the paper's "orders of magnitude slower on graphs" cases) abort as
timeouts instead of hanging the host.
"""

from __future__ import annotations

from repro.common.errors import EvaluationTimeout

ZERO = 0
ONE = 1


class BddManager:
    """Nodes are integers; 0/1 are the terminals.

    Node ``i`` (>1) is ``(var, lo, hi)``: if variable ``var`` is 0 follow
    ``lo``, else ``hi``. Variables are ordered by their integer id.
    """

    def __init__(self, max_ops: int | None = None) -> None:
        self._vars: list[int] = [-1, -1]   # terminals have no variable
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._exists_cache: dict[tuple[int, frozenset[int]], int] = {}
        self.ops = 0
        self.max_ops = max_ops
        self.peak_nodes = 2

    # -- node construction ----------------------------------------------------

    def _tick(self) -> None:
        self.ops += 1
        if self.max_ops is not None and self.ops > self.max_ops:
            raise EvaluationTimeout(
                f"BDD operation budget exhausted ({self.max_ops} ops)"
            )

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Canonical node constructor (reduction + hash-consing)."""
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._vars)
        self._vars.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        self._unique[key] = node
        self.peak_nodes = max(self.peak_nodes, node + 1)
        return node

    def var_true(self, var: int) -> int:
        return self.mk(var, ZERO, ONE)

    def var_false(self, var: int) -> int:
        return self.mk(var, ONE, ZERO)

    def cube(self, assignment: dict[int, bool]) -> int:
        """Conjunction of literals, e.g. the encoding of one tuple."""
        node = ONE
        for var in sorted(assignment, reverse=True):
            if assignment[var]:
                node = self.mk(var, ZERO, node)
            else:
                node = self.mk(var, node, ZERO)
        return node

    def node_var(self, node: int) -> int:
        return self._vars[node]

    # -- boolean operations --------------------------------------------------------

    def apply_and(self, a: int, b: int) -> int:
        return self._apply("and", a, b)

    def apply_or(self, a: int, b: int) -> int:
        return self._apply("or", a, b)

    def apply_diff(self, a: int, b: int) -> int:
        """a AND NOT b."""
        return self._apply("diff", a, b)

    def _apply(self, op: str, a: int, b: int) -> int:
        self._tick()
        terminal = self._apply_terminal(op, a, b)
        if terminal is not None:
            return terminal
        if op in ("and", "or") and b < a:
            a, b = b, a  # commutative: canonicalize the cache key
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_a = self._vars[a] if a > 1 else 1 << 60
        var_b = self._vars[b] if b > 1 else 1 << 60
        top = min(var_a, var_b)
        a_lo, a_hi = (self._lo[a], self._hi[a]) if var_a == top else (a, a)
        b_lo, b_hi = (self._lo[b], self._hi[b]) if var_b == top else (b, b)
        result = self.mk(top, self._apply(op, a_lo, b_lo), self._apply(op, a_hi, b_hi))
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _apply_terminal(op: str, a: int, b: int) -> int | None:
        if op == "and":
            if a == ZERO or b == ZERO:
                return ZERO
            if a == ONE:
                return b
            if b == ONE:
                return a
            if a == b:
                return a
        elif op == "or":
            if a == ONE or b == ONE:
                return ONE
            if a == ZERO:
                return b
            if b == ZERO:
                return a
            if a == b:
                return a
        elif op == "diff":
            if a == ZERO or b == ONE:
                return ZERO
            if b == ZERO:
                return a
            if a == b:
                return ZERO
        return None

    def exists(self, node: int, variables: frozenset[int]) -> int:
        """Existentially quantify ``variables`` out of ``node``."""
        self._tick()
        if node <= 1:
            return node
        key = (node, variables)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        var = self._vars[node]
        lo = self.exists(self._lo[node], variables)
        hi = self.exists(self._hi[node], variables)
        if var in variables:
            result = self.apply_or(lo, hi)
        else:
            result = self.mk(var, lo, hi)
        self._exists_cache[key] = result
        return result

    # -- inspection -----------------------------------------------------------------

    def size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node``."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            stack.append(self._lo[current])
            stack.append(self._hi[current])
        return len(seen) + 2

    def sat_count(self, node: int, num_vars: int) -> int:
        """Number of satisfying assignments over variables 0..num_vars-1."""
        if node == ZERO:
            return 0
        if node == ONE:
            return 1 << num_vars
        memo: dict[int, int] = {}

        def count(current: int) -> int:
            if current == ZERO:
                return 0
            if current == ONE:
                return 1
            if current in memo:
                return memo[current]
            var = self._vars[current]
            lo, hi = self._lo[current], self._hi[current]
            lo_var = self._vars[lo] if lo > 1 else num_vars
            hi_var = self._vars[hi] if hi > 1 else num_vars
            total = count(lo) * (1 << (lo_var - var - 1)) + count(hi) * (
                1 << (hi_var - var - 1)
            )
            memo[current] = total
            return total

        return count(node) * (1 << self._vars[node])

    def iter_sat(self, node: int, variables: list[int]):
        """Yield satisfying assignments as dicts over ``variables``."""
        var_set = set(variables)

        def walk(current: int, index: int, partial: dict[int, bool]):
            if current == ZERO:
                return
            if index == len(variables):
                if current == ONE:
                    yield dict(partial)
                return
            var = variables[index]
            node_var = self._vars[current] if current > 1 else None
            if current == ONE or (node_var is not None and node_var != var and node_var not in var_set):
                # Free variable at this level: branch both ways.
                for value in (False, True):
                    partial[var] = value
                    yield from walk(current, index + 1, partial)
                del partial[var]
                return
            if node_var == var:
                partial[var] = False
                yield from walk(self._lo[current], index + 1, partial)
                partial[var] = True
                yield from walk(self._hi[current], index + 1, partial)
                del partial[var]
            else:
                # node_var is a quantified-out or later variable in var order;
                # treat current level as free.
                for value in (False, True):
                    partial[var] = value
                    yield from walk(current, index + 1, partial)
                del partial[var]

        yield from walk(node, 0, {})

"""Relation encoding over BDD variable blocks.

Attributes are bit-blasted into fixed-width *blocks* of BDD variables.
The default "interleaved" ordering places bit ``i`` of every block next
to each other — the ordering bddbddb's documentation recommends for
relational workloads; "sequential" keeps each block contiguous and is
dramatically worse, which the hyperparameter-sensitivity bench shows
(the paper: "the size of BDD is highly sensitive to the variable
ordering used in the binary encoding").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bdd.bdd import ONE, ZERO, BddManager
from repro.common.errors import UnsupportedFeatureError


class BlockSpace:
    """A set of equally sized BDD variable blocks."""

    def __init__(
        self,
        manager: BddManager,
        bits: int,
        num_blocks: int,
        ordering: str = "interleaved",
    ) -> None:
        if bits <= 0 or bits > 62:
            raise UnsupportedFeatureError(f"cannot bit-blast {bits}-bit domains")
        if ordering not in ("interleaved", "sequential"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self.manager = manager
        self.bits = bits
        self.num_blocks = num_blocks
        self.ordering = ordering
        self._eq_cache: dict[tuple[int, int], int] = {}

    def var_id(self, block: int, bit: int) -> int:
        """BDD variable id of ``bit`` (0 = MSB) in ``block``."""
        if self.ordering == "interleaved":
            return bit * self.num_blocks + block
        return block * self.bits + bit

    def block_vars(self, block: int) -> list[int]:
        return sorted(self.var_id(block, bit) for bit in range(self.bits))

    # -- encode / decode --------------------------------------------------------

    def encode_rows(self, rows: np.ndarray, blocks: list[int]) -> int:
        """OR of one cube per row; column ``j`` goes to ``blocks[j]``."""
        manager = self.manager
        result = ZERO
        for row in rows:
            assignment: dict[int, bool] = {}
            for column, block in enumerate(blocks):
                value = int(row[column])
                for bit in range(self.bits):
                    mask = 1 << (self.bits - 1 - bit)
                    assignment[self.var_id(block, bit)] = bool(value & mask)
            result = manager.apply_or(result, manager.cube(assignment))
        return result

    def decode(self, node: int, blocks: list[int]) -> np.ndarray:
        """All satisfying rows of ``node`` over ``blocks`` (column order)."""
        variables = sorted(
            self.var_id(block, bit) for block in blocks for bit in range(self.bits)
        )
        position: dict[int, tuple[int, int]] = {}
        for column, block in enumerate(blocks):
            for bit in range(self.bits):
                position[self.var_id(block, bit)] = (column, bit)
        rows: list[list[int]] = []
        for assignment in self.manager.iter_sat(node, variables):
            values = [0] * len(blocks)
            for var, is_set in assignment.items():
                column, bit = position[var]
                if is_set:
                    values[column] |= 1 << (self.bits - 1 - bit)
            rows.append(values)
        if not rows:
            return np.empty((0, len(blocks)), dtype=np.int64)
        return np.asarray(sorted(rows), dtype=np.int64)

    # -- relational primitives ---------------------------------------------------

    def eq(self, block_a: int, block_b: int) -> int:
        """The BDD of ``block_a == block_b`` (bitwise equality)."""
        key = (min(block_a, block_b), max(block_a, block_b))
        cached = self._eq_cache.get(key)
        if cached is not None:
            return cached
        manager = self.manager
        result = ONE
        for bit in range(self.bits - 1, -1, -1):
            va = self.var_id(block_a, bit)
            vb = self.var_id(block_b, bit)
            both_true = manager.apply_and(manager.var_true(va), manager.var_true(vb))
            both_false = manager.apply_and(manager.var_false(va), manager.var_false(vb))
            result = manager.apply_and(result, manager.apply_or(both_true, both_false))
        self._eq_cache[key] = result
        return result

    def constant_cube(self, block: int, value: int) -> int:
        assignment = {}
        for bit in range(self.bits):
            mask = 1 << (self.bits - 1 - bit)
            assignment[self.var_id(block, bit)] = bool(value & mask)
        return self.manager.cube(assignment)

    def rename(self, node: int, mapping: dict[int, int]) -> int:
        """Move blocks: ``mapping[src] = dst``.

        Each move is ``exists src. (f AND eq(src, dst))`` — valid for any
        ordering. Moves whose destination is another move's source are
        sequenced so the destination is vacated first; cyclic mappings
        (block swaps) are rejected, as no caller needs them.
        """
        manager = self.manager
        pending = {src: dst for src, dst in mapping.items() if src != dst}
        if len(set(pending.values())) != len(pending):
            raise ValueError(f"rename mapping is not injective: {mapping}")
        while pending:
            ready = [src for src, dst in pending.items() if dst not in pending]
            if not ready:
                raise ValueError(f"cyclic rename mapping: {mapping}")
            for src in ready:
                dst = pending.pop(src)
                node = manager.apply_and(node, self.eq(src, dst))
                node = manager.exists(node, frozenset(self.block_vars(src)))
        return node

    def project_away(self, node: int, blocks: list[int]) -> int:
        if not blocks:
            return node
        variables = frozenset(
            var for block in blocks for var in self.block_vars(block)
        )
        return self.manager.exists(node, variables)

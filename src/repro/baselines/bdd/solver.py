"""bddbddb behavioural model (Whaley & Lam, APLAS 2005 / PLDI 2004).

A single-threaded Datalog solver whose relations live in BDDs. The
redundancy of program-analysis relations compresses exponentially, so it
shines on small-active-domain analyses (AA datasets 1-2) and collapses on
graphs with many vertices — the paper's Figure 10/15 behaviour.

Real BDDs, real semi-naive evaluation; simulated time is proportional to
the manager's operation count, and a hard operation cap converts the
paper's ">10h" runs into "timeout" results quickly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bdd.bdd import ONE, ZERO, BddManager
from repro.baselines.bdd.encoding import BlockSpace
from repro.common.errors import (
    EvaluationTimeout,
    OutOfMemoryError,
    UnsupportedFeatureError,
)
from repro.common.records import EvaluationResult
from repro.datalog import ast as dast
from repro.datalog.analyzer import AnalyzedProgram, Stratum
from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET, MetricsRecorder
from repro.programs.library import ProgramSpec

#: Simulated seconds per BDD operation step (single-threaded solver).
PER_OP_SECONDS = 2.0e-6
#: Modeled bytes per live BDD node (node record + unique-table entry).
BYTES_PER_NODE = 40
#: Hard cap on real work, so modeled timeouts stay cheap on the host.
HARD_OP_CAP = 30_000_000


class BddbddbLike:
    """Datalog over BDDs; interface-compatible with the other baselines."""

    name = "bddbddb"

    def __init__(
        self,
        threads: int = 1,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        time_budget: float = DEFAULT_TIME_BUDGET,
        enforce_budgets: bool = True,
        ordering: str = "interleaved",
    ) -> None:
        # ``threads`` accepted for interface parity; bddbddb is single-threaded.
        self.memory_budget = memory_budget
        self.time_budget = time_budget
        self.enforce_budgets = enforce_budgets
        self.ordering = ordering

    # -- envelope -------------------------------------------------------------

    def check_supported(self, analyzed: AnalyzedProgram) -> None:
        features = analyzed.features
        if features and features.has_aggregation:
            raise UnsupportedFeatureError(
                "bddbddb has no aggregation support (Table 1)"
            )
        for rule in analyzed.program.rules:
            for comparison in rule.comparisons():
                if comparison.op not in ("=", "!="):
                    raise UnsupportedFeatureError(
                        f"bddbddb model supports =/!= comparisons only, got {comparison}"
                    )
                if not (
                    isinstance(comparison.left, (dast.Variable, dast.Constant))
                    and isinstance(comparison.right, (dast.Variable, dast.Constant))
                ):
                    raise UnsupportedFeatureError(
                        "bddbddb model does not bit-blast arithmetic"
                    )

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        program: ProgramSpec,
        edb_data: dict[str, np.ndarray],
        dataset: str = "unnamed",
    ) -> EvaluationResult:
        analyzed = program.parse()
        result = EvaluationResult(engine=self.name, program=program.name, dataset=dataset)
        metrics = MetricsRecorder(
            memory_budget=self.memory_budget,
            time_budget=self.time_budget,
            enforce_budgets=self.enforce_budgets,
        )
        try:
            self.check_supported(analyzed)
            relations, space, manager = self._encode_edb(analyzed, edb_data, metrics)
            iterations = 0
            for stratum in analyzed.strata:
                iterations += self._run_stratum(
                    analyzed, stratum, relations, space, manager, metrics
                )
            result.iterations = iterations
            for name in sorted(analyzed.idb):
                arity = analyzed.arities[name]
                rows = space.decode(relations[name], list(range(arity)))
                result.tuples[name] = {tuple(int(v) for v in row) for row in rows}
        except UnsupportedFeatureError as error:
            result.status = "unsupported"
            result.unsupported_reason = str(error)
        except OutOfMemoryError as error:
            result.status = "oom"
            result.failure = error.to_dict()
        except EvaluationTimeout as error:
            result.status = "timeout"
            result.failure = error.to_dict()
        result.sim_seconds = metrics.now()
        result.peak_memory_bytes = metrics.peak_bytes
        result.memory_trace = metrics.memory_trace
        result.cpu_trace = metrics.cpu_trace
        return result

    # -- internals ------------------------------------------------------------------

    def _encode_edb(
        self,
        analyzed: AnalyzedProgram,
        edb_data: dict[str, np.ndarray],
        metrics: MetricsRecorder,
    ) -> tuple[dict[str, int], BlockSpace, BddManager]:
        high = 0
        for name in sorted(analyzed.edb):
            rows = np.asarray(edb_data[name], dtype=np.int64)
            if rows.size:
                if int(rows.min()) < 0:
                    raise UnsupportedFeatureError("bddbddb model needs a non-negative domain")
                high = max(high, int(rows.max()))
        bits = max(1, int(high).bit_length())
        max_arity = max(analyzed.arities.values())
        max_vars = max(
            (
                len(rule.head.variables() | set().union(*(a.variables() for a in rule.body_atoms())))
                for rule in analyzed.program.rules
                if rule.body_atoms()
            ),
            default=1,
        )
        num_blocks = max_arity + max_vars
        op_cap = min(HARD_OP_CAP, int(self.time_budget / PER_OP_SECONDS)) if self.enforce_budgets else HARD_OP_CAP
        manager = BddManager(max_ops=op_cap)
        space = BlockSpace(manager, bits, num_blocks, ordering=self.ordering)
        relations: dict[str, int] = {}
        for name in sorted(analyzed.edb):
            arity = analyzed.arities[name]
            rows = np.asarray(edb_data[name], dtype=np.int64).reshape(-1, arity)
            relations[name] = space.encode_rows(rows, list(range(arity)))
        for name in sorted(analyzed.idb):
            relations[name] = ZERO
        self._account(manager, metrics)
        return relations, space, manager

    def _account(self, manager: BddManager, metrics: MetricsRecorder) -> None:
        elapsed = manager.ops * PER_OP_SECONDS - metrics.now()
        if elapsed > 0:
            metrics.advance(elapsed, utilization=0.05)  # one thread of 20
        metrics.set_base_bytes(manager.peak_nodes * BYTES_PER_NODE)

    def _run_stratum(
        self,
        analyzed: AnalyzedProgram,
        stratum: Stratum,
        relations: dict[str, int],
        space: BlockSpace,
        manager: BddManager,
        metrics: MetricsRecorder,
    ) -> int:
        predicates = sorted(stratum.idb_predicates())
        deltas: dict[str, int] = {}
        try:
            for name in predicates:
                produced = ZERO
                for rule in analyzed.rules_for(name, stratum):
                    produced = manager.apply_or(
                        produced, self._eval_rule(rule, relations, space, None, None)
                    )
                deltas[name] = manager.apply_diff(produced, relations[name])
                relations[name] = manager.apply_or(relations[name], deltas[name])
            iterations = 1
            if not stratum.recursive:
                return iterations
            while any(delta != ZERO for delta in deltas.values()):
                new_deltas: dict[str, int] = {}
                for name in predicates:
                    produced = ZERO
                    for rule in analyzed.rules_for(name, stratum):
                        positions = [
                            index
                            for index, atom in enumerate(rule.positive_atoms())
                            if atom.predicate in stratum.predicates
                        ]
                        for position in positions:
                            produced = manager.apply_or(
                                produced,
                                self._eval_rule(rule, relations, space, position, deltas),
                            )
                    fresh = manager.apply_diff(produced, relations[name])
                    relations[name] = manager.apply_or(relations[name], fresh)
                    new_deltas[name] = fresh
                    deltas[name] = fresh
                iterations += 1
                deltas = new_deltas
            return iterations
        finally:
            self._account(manager, metrics)

    def _eval_rule(
        self,
        rule: dast.Rule,
        relations: dict[str, int],
        space: BlockSpace,
        delta_atom: int | None,
        deltas: dict[str, int] | None,
    ) -> int:
        manager = space.manager
        max_arity_blocks = space.num_blocks
        variables = sorted(
            set().union(*(atom.variables() for atom in rule.body_atoms()))
            | rule.head.variables()
        )
        storage_blocks = max_arity_blocks - len(variables)
        var_block = {name: storage_blocks + index for index, name in enumerate(variables)}

        result = None
        for index, atom in enumerate(rule.positive_atoms()):
            if index == delta_atom and deltas is not None:
                node = deltas[atom.predicate]
            else:
                node = relations[atom.predicate]
            node = self._bind_atom(node, atom, var_block, space)
            result = node if result is None else manager.apply_and(result, node)
            if result == ZERO:
                return ZERO
        assert result is not None

        for comparison in rule.comparisons():
            constraint = self._comparison_bdd(comparison, var_block, space)
            result = manager.apply_and(result, constraint)
            if result == ZERO:
                return ZERO

        for atom in rule.negative_atoms():
            negated = self._bind_atom(relations[atom.predicate], atom, var_block, space)
            result = manager.apply_diff(result, negated)
            if result == ZERO:
                return ZERO

        head_vars = {
            term.name for term in rule.head.terms if isinstance(term, dast.Variable)
        }
        drop = [var_block[name] for name in variables if name not in head_vars]
        result = space.project_away(result, drop)
        mapping: dict[int, int] = {}
        first_position: dict[str, int] = {}
        duplicate_positions: list[tuple[int, int]] = []
        for position, term in enumerate(rule.head.terms):
            if isinstance(term, dast.Variable):
                if term.name in first_position:
                    # Repeated head variable, e.g. valueFlow(x, x): copy
                    # the first occurrence's block into this position.
                    duplicate_positions.append((first_position[term.name], position))
                else:
                    mapping[var_block[term.name]] = position
                    first_position[term.name] = position
            elif isinstance(term, dast.Constant):
                result = manager.apply_and(
                    result, space.constant_cube(position, term.value)
                )
            else:
                raise UnsupportedFeatureError(f"unsupported head term {term!r}")
        result = space.rename(result, mapping)
        for first, extra in duplicate_positions:
            result = manager.apply_and(result, space.eq(first, extra))
        return result

    def _bind_atom(
        self,
        node: int,
        atom: dast.Atom,
        var_block: dict[str, int],
        space: BlockSpace,
    ) -> int:
        manager = space.manager
        mapping: dict[int, int] = {}
        wildcards: list[int] = []
        seen_blocks: dict[int, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, dast.Variable):
                target = var_block[term.name]
                if target in seen_blocks:
                    # Repeated variable: constrain equality then drop.
                    node = manager.apply_and(node, space.eq(position, seen_blocks[target]))
                    wildcards.append(position)
                else:
                    mapping[position] = target
                    seen_blocks[target] = position
            elif isinstance(term, dast.Constant):
                node = manager.apply_and(node, space.constant_cube(position, term.value))
                wildcards.append(position)
            else:  # wildcard
                wildcards.append(position)
        node = space.project_away(node, wildcards)
        return space.rename(node, mapping)

    def _comparison_bdd(
        self,
        comparison: dast.Comparison,
        var_block: dict[str, int],
        space: BlockSpace,
    ) -> int:
        manager = space.manager

        def side_block(expr: dast.ScalarExpr) -> tuple[str, int]:
            if isinstance(expr, dast.Variable):
                return "var", var_block[expr.name]
            if isinstance(expr, dast.Constant):
                return "const", expr.value
            raise UnsupportedFeatureError("bddbddb model does not bit-blast arithmetic")

        left_kind, left = side_block(comparison.left)
        right_kind, right = side_block(comparison.right)
        if left_kind == "var" and right_kind == "var":
            equal = space.eq(left, right)
        elif left_kind == "var":
            equal = space.constant_cube(left, right)
        elif right_kind == "var":
            equal = space.constant_cube(right, left)
        else:
            equal = ONE if left == right else ZERO
        if comparison.op == "=":
            return equal
        return manager.apply_diff(ONE, equal)

"""Baseline Datalog engines (Section 6.1).

Each baseline is a *real* evaluator — it computes the exact fixpoint —
that reproduces the published evaluation strategy, feature envelope
(Table 1), and cost/memory profile of the corresponding system:

* :class:`NaiveEngine` — textbook naive bottom-up evaluation (oracle).
* :class:`SouffleLike` — compiled indexed semi-naive; no recursive
  aggregation.
* :class:`BigDatalogLike` — Spark-style partitioned semi-naive; no mutual
  recursion; optionally the paper's 120-core distributed cluster.
* :class:`GraspanLike` — sort-based edge-pair worklist; binary relations
  only.
* :class:`BddbddbLike` — single-threaded solver over a from-scratch BDD
  package.
"""

from repro.baselines.base import BaselineEngine, CostProfile
from repro.baselines.bigdatalog_like import BigDatalogLike
from repro.baselines.graspan_like import GraspanLike
from repro.baselines.naive import NaiveEngine
from repro.baselines.souffle_like import SouffleLike
from repro.baselines.bdd.solver import BddbddbLike

__all__ = [
    "BaselineEngine",
    "CostProfile",
    "NaiveEngine",
    "SouffleLike",
    "BigDatalogLike",
    "GraspanLike",
    "BddbddbLike",
]

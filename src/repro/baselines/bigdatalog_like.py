"""BigDatalog behavioural model (Shkapsky et al., SIGMOD 2016).

A Datalog engine on (modified) Apache Spark. Envelope per Table 1 and
Section 6.3: recursive aggregation yes, *mutual recursion no* (it is
absent from the CSPA comparison). Profile: high per-tuple cost (JVM
object handling + shuffles), large RDD memory overhead (the paper's OOM
cases on SG/arabic/twitter), sizable job startup — but low *per
iteration* cost once a job is running, which is why it wins CSDA.

``distributed=True`` models the paper's full 15-worker cluster
(120 cores, 450 GB): ~3x the memory and 6x the cores of the single node.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, CostProfile
from repro.common.errors import UnsupportedFeatureError
from repro.datalog.analyzer import AnalyzedProgram


class BigDatalogLike(BaselineEngine):
    name = "BigDatalog"

    def __init__(self, distributed: bool = False, **kwargs) -> None:
        self.distributed = distributed
        if distributed:
            self.name = "Distributed-BigDatalog"
            kwargs.setdefault("threads", 120)
            if "memory_budget" in kwargs:
                kwargs["memory_budget"] = int(kwargs["memory_budget"] * 2.8)
        super().__init__(**kwargs)

    def make_profile(self, threads: int) -> CostProfile:
        if self.distributed:
            return CostProfile(
                name=self.name,
                threads=threads,
                parallel_efficiency=0.40,
                per_tuple_build=2.2e-6,
                per_tuple_probe=1.1e-6,
                per_tuple_materialize=8.0e-7,
                per_tuple_dedup=1.2e-6,
                per_iteration_overhead=2.5e-2,  # cluster-wide stage barrier
                startup_overhead=8.0,
                memory_overhead_factor=4.5,
                transient_overhead_factor=3.0,
            )
        return CostProfile(
            name=self.name,
            threads=threads,
            parallel_efficiency=0.55,
            per_tuple_build=2.2e-6,
            per_tuple_probe=1.1e-6,
            per_tuple_materialize=8.0e-7,
            per_tuple_dedup=1.2e-6,
            per_iteration_overhead=2.0e-3,  # local-mode Spark stage
            startup_overhead=4.0,
            memory_overhead_factor=18.0,  # boxed JVM tuples in RDDs
            transient_overhead_factor=3.0,
        )

    def check_supported(self, analyzed: AnalyzedProgram) -> None:
        features = analyzed.features
        if features and features.has_mutual_recursion:
            raise UnsupportedFeatureError(
                "BigDatalog does not support mutual recursion "
                "(paper Section 6.3: absent from the CSPA comparison)"
            )

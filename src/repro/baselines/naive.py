"""Naive bottom-up evaluation (Section 3.2).

Re-applies every rule to the *full* relations each iteration until no new
tuples appear. Used as the correctness oracle in the test suite and as
the didactic lower bound in the ablation benches: it derives the same
tuples over and over, which semi-naive avoids.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineEngine, CostProfile, _merge, _vstack
from repro.baselines.ruleeval import evaluate_rule
from repro.datalog.analyzer import AnalyzedProgram, Stratum
from repro.engine.metrics import MetricsRecorder


class NaiveEngine(BaselineEngine):
    """Textbook naive evaluation; single-machine, modest parallelism."""

    name = "Naive"

    def make_profile(self, threads: int) -> CostProfile:
        return CostProfile(
            name=self.name,
            threads=threads,
            parallel_efficiency=0.6,
            per_iteration_overhead=1.0e-3,
            startup_overhead=0.01,
            memory_overhead_factor=2.0,
        )

    def _run_stratum(
        self,
        analyzed: AnalyzedProgram,
        stratum: Stratum,
        relations: dict[str, np.ndarray],
        metrics: MetricsRecorder,
    ) -> int:
        predicates = sorted(stratum.idb_predicates())
        agg_funcs = {name: analyzed.aggregate_func(name) for name in predicates}
        iterations = 0
        while True:
            iterations += 1
            work = self._make_counters()
            dedup_tuples = 0
            grew = False
            for name in predicates:
                produced = [
                    evaluate_rule(rule, relations, counters=work)
                    for rule in analyzed.rules_for(name, stratum)
                    if not rule.is_fact
                ]
                facts = [
                    np.asarray([[term.value for term in rule.head.terms]], dtype=np.int64)
                    for rule in analyzed.rules_for(name, stratum)
                    if rule.is_fact
                ]
                candidate = _vstack(produced + facts, analyzed.arities[name])
                dedup_tuples += candidate.shape[0]
                merged, delta = _merge(relations[name], candidate, agg_funcs[name])
                relations[name] = merged
                if delta.shape[0]:
                    grew = True
            self._account(metrics, relations, work, dedup_tuples)
            if not grew or not stratum.recursive:
                return iterations

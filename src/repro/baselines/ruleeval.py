"""Array-based Datalog rule evaluation.

A second, independent implementation of rule evaluation (the first being
the Datalog→SQL→operators path of RecStep): it binds rule variables to
NumPy columns directly and joins with the shared kernels. The baseline
engines evaluate with this module under their own cost models, and the
test suite uses it for differential testing against the SQL path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import DatalogError
from repro.datalog import ast as dast
from repro.engine import kernels


@dataclass
class WorkCounters:
    """Work performed while evaluating rules (inputs to engine cost models).

    ``row_limit`` caps intermediate join cardinality: the engine's memory
    model sets it from its budget, and a join that would exceed it raises
    ``OutOfMemoryError`` *before* the intermediate materializes — the
    operator-level equivalent of the paper's baseline OOM failures.
    """

    tuples_scanned: int = 0
    tuples_built: int = 0
    tuples_probed: int = 0
    tuples_materialized: int = 0
    peak_intermediate_rows: int = 0
    joins: int = 0
    row_limit: int | None = None

    def merge(self, other: "WorkCounters") -> None:
        self.tuples_scanned += other.tuples_scanned
        self.tuples_built += other.tuples_built
        self.tuples_probed += other.tuples_probed
        self.tuples_materialized += other.tuples_materialized
        self.peak_intermediate_rows = max(
            self.peak_intermediate_rows, other.peak_intermediate_rows
        )
        self.joins += other.joins


@dataclass
class _VarFrame:
    """Current rows as one column per bound rule variable."""

    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        for column in self.columns.values():
            return int(column.shape[0])
        return 0


def _atom_local_select(
    atom: dast.Atom, rows: np.ndarray, counters: WorkCounters
) -> tuple[np.ndarray, dict[str, int]]:
    """Apply constant and repeated-variable constraints local to one atom.

    Returns the filtered rows and a var -> column-position map.
    """
    counters.tuples_scanned += rows.shape[0]
    mask = np.ones(rows.shape[0], dtype=bool)
    positions: dict[str, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, dast.Constant):
            mask &= rows[:, position] == term.value
        elif isinstance(term, dast.Variable):
            if term.name in positions:
                mask &= rows[:, position] == rows[:, positions[term.name]]
            else:
                positions[term.name] = position
    if not mask.all():
        rows = rows[mask]
    return rows, positions


def _scalar_column(
    expr: dast.ScalarExpr, frame: _VarFrame, length: int
) -> np.ndarray:
    if isinstance(expr, dast.Constant):
        return np.full(length, expr.value, dtype=np.int64)
    if isinstance(expr, dast.Variable):
        try:
            return frame.columns[expr.name]
        except KeyError:
            raise DatalogError(f"variable {expr.name!r} is unbound") from None
    if isinstance(expr, dast.Arithmetic):
        left = _scalar_column(expr.left, frame, length)
        right = _scalar_column(expr.right, frame, length)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
    raise DatalogError(f"unsupported scalar expression {expr!r}")


def _apply_comparison(
    comparison: dast.Comparison, frame: _VarFrame, counters: WorkCounters
) -> _VarFrame:
    length = len(frame)
    left = _scalar_column(comparison.left, frame, length)
    right = _scalar_column(comparison.right, frame, length)
    op = comparison.op
    if op == "=":
        mask = left == right
    elif op == "!=":
        mask = left != right
    elif op == "<":
        mask = left < right
    elif op == "<=":
        mask = left <= right
    elif op == ">":
        mask = left > right
    else:
        mask = left >= right
    counters.tuples_scanned += length
    return _VarFrame({name: col[mask] for name, col in frame.columns.items()})


def _apply_negation(
    atom: dast.Atom,
    relation: np.ndarray,
    frame: _VarFrame,
    counters: WorkCounters,
) -> _VarFrame:
    """Anti-join the frame against a negated atom."""
    rows, positions = _atom_local_select(atom, relation, counters)
    frame_keys = []
    rel_keys = []
    for name, position in positions.items():
        frame_keys.append(frame.columns[name])
        rel_keys.append(rows[:, position])
    # Constant-only negated atoms: non-empty relation match kills all rows.
    if not frame_keys:
        if rows.shape[0] > 0:
            return _VarFrame({n: c[:0] for n, c in frame.columns.items()})
        return frame
    left, right = kernels.make_join_keys(frame_keys, rel_keys)
    counters.tuples_built += rows.shape[0]
    counters.tuples_probed += len(frame)
    mask = kernels.anti_join_mask(left, right)
    return _VarFrame({name: col[mask] for name, col in frame.columns.items()})


def _check_row_limit(expected_rows: int, counters: WorkCounters) -> None:
    if counters.row_limit is not None and expected_rows > counters.row_limit:
        from repro.common.errors import OutOfMemoryError

        raise OutOfMemoryError(
            f"join intermediate of {expected_rows} rows exceeds the engine's "
            f"modeled memory budget ({counters.row_limit} rows)",
            rows=expected_rows,
            limit_rows=counters.row_limit,
        )


def _join_atom(
    frame: _VarFrame | None,
    atom: dast.Atom,
    relation: np.ndarray,
    counters: WorkCounters,
) -> _VarFrame:
    rows, positions = _atom_local_select(atom, relation, counters)
    if frame is None:
        return _VarFrame(
            {name: rows[:, position].copy() for name, position in positions.items()}
        )
    shared = [name for name in positions if name in frame.columns]
    if shared:
        left_keys = [frame.columns[name] for name in shared]
        right_keys = [rows[:, positions[name]] for name in shared]
        left, right = kernels.make_join_keys(left_keys, right_keys)
        build = min(len(frame), rows.shape[0])
        probe = max(len(frame), rows.shape[0])
        counters.tuples_built += build
        counters.tuples_probed += probe
        _check_row_limit(kernels.equi_join_count(left, right), counters)
        li, ri = kernels.equi_join_indices(left, right)
    else:
        n, m = len(frame), rows.shape[0]
        _check_row_limit(n * m, counters)
        li = np.repeat(np.arange(n, dtype=np.int64), m)
        ri = np.tile(np.arange(m, dtype=np.int64), n)
        counters.tuples_probed += n * m
    counters.joins += 1
    out = _VarFrame({name: col[li] for name, col in frame.columns.items()})
    for name, position in positions.items():
        if name not in out.columns:
            out.columns[name] = rows[ri, position]
    counters.tuples_materialized += len(out) * max(1, len(out.columns))
    counters.peak_intermediate_rows = max(counters.peak_intermediate_rows, len(out))
    return out


def evaluate_rule(
    rule: dast.Rule,
    relations: dict[str, np.ndarray],
    delta_atom: int | None = None,
    delta_relations: dict[str, np.ndarray] | None = None,
    counters: WorkCounters | None = None,
) -> np.ndarray:
    """Evaluate one rule body, returning (bag) head rows.

    ``delta_atom`` selects which positive atom (by index) reads from
    ``delta_relations`` instead of ``relations`` — the semi-naive
    substitution. Aggregated heads are pre-grouped here; callers merge.
    """
    counters = counters if counters is not None else WorkCounters()
    positive = rule.positive_atoms()
    if not positive:
        raise DatalogError(f"rule {rule} has no positive body atom")

    frame: _VarFrame | None = None
    for index, atom in enumerate(positive):
        if index == delta_atom:
            source = (delta_relations or {})[atom.predicate]
        else:
            source = relations[atom.predicate]
        frame = _join_atom(frame, atom, source, counters)
        if len(frame) == 0:
            break
    assert frame is not None

    if len(frame):
        for comparison in rule.comparisons():
            frame = _apply_comparison(comparison, frame, counters)
            if not len(frame):
                break
    if len(frame):
        for atom in rule.negative_atoms():
            frame = _apply_negation(atom, relations[atom.predicate], frame, counters)
            if not len(frame):
                break

    return _project_head(rule, frame, counters)


def _project_head(
    rule: dast.Rule, frame: _VarFrame, counters: WorkCounters
) -> np.ndarray:
    length = len(frame)
    arity = rule.head.arity
    if length == 0:
        return np.empty((0, arity), dtype=np.int64)
    columns: list[np.ndarray] = []
    agg_spec: tuple[str, np.ndarray] | None = None
    group_columns: list[np.ndarray] = []
    for term in rule.head.terms:
        if isinstance(term, dast.AggTerm):
            agg_spec = (term.func, _scalar_column(term.expr, frame, length))
            columns.append(None)  # placeholder, filled after grouping
        elif isinstance(term, dast.Variable):
            column = frame.columns[term.name]
            columns.append(column)
            group_columns.append(column)
        elif isinstance(term, dast.Constant):
            column = np.full(length, term.value, dtype=np.int64)
            columns.append(column)
        else:
            raise DatalogError(f"unsupported head term {term!r}")
    counters.tuples_materialized += length * arity
    if agg_spec is None:
        return np.column_stack(columns)
    keys, (values,) = kernels.group_aggregate(group_columns, [agg_spec])
    if group_columns:
        return np.column_stack([keys, values])
    return values.reshape(-1, 1)

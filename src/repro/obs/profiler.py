"""The Profiler: one handle bundling a span tracer and a counter registry.

Everything the engine instruments goes through a ``Profiler`` so call
sites need exactly one attribute. The disabled singleton
(:data:`NULL_PROFILER`) is what every component holds by default; its
``span`` returns a shared inert context manager and its counters discard
increments, making instrumentation effectively free when profiling is
off.
"""

from __future__ import annotations

from repro.common.timing import SimClock
from repro.obs.counters import NULL_COUNTERS, CounterRegistry
from repro.obs.histogram import NULL_HISTOGRAMS, HistogramSet
from repro.obs.timeline import NULL_TIMELINE, ResourceTimeline
from repro.obs.tracer import NULL_TRACER, SpanTracer


class Profiler:
    """An enabled profiler: real tracer, counters, histograms, timeline."""

    enabled = True

    def __init__(self, clock: SimClock | None = None) -> None:
        self.tracer = SpanTracer(clock)
        self.counters = CounterRegistry()
        self.histograms = HistogramSet()
        self.timeline = ResourceTimeline()

    def span(self, name: str, category: str = "operator", **attrs):
        return self.tracer.span(name, category, **attrs)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span, if any."""
        current = self.tracer.current
        if current is not None:
            current.set(**attrs)

    def add_phase_time(self, phase_name: str, seconds: float) -> None:
        """Accumulate per-contention-class time onto the current span."""
        current = self.tracer.current
        if current is None:
            return
        phases = current.attrs.setdefault("phases", {})
        phases[phase_name] = phases.get(phase_name, 0.0) + seconds


class NullProfiler:
    """Disabled profiler: every operation is a no-op."""

    enabled = False
    tracer = NULL_TRACER
    counters = NULL_COUNTERS
    histograms = NULL_HISTOGRAMS
    timeline = NULL_TIMELINE

    def span(self, name: str, category: str = "operator", **attrs):
        return NULL_TRACER.span(name, category)

    def annotate(self, **attrs) -> None:
        pass

    def add_phase_time(self, phase_name: str, seconds: float) -> None:
        pass


NULL_PROFILER = NullProfiler()

"""Observability: span tracing, counters, profiles, and trace export.

The package every perf PR justifies itself with. Usage::

    from repro.obs import Profiler, ProfileReport

    profiler = Profiler(clock)              # share the engine's SimClock
    with profiler.span("program", "program", name="TC"):
        ...                                 # engine work, nested spans
    report = ProfileReport.from_profiler(profiler, clock.now())
    print(report.render_hotspots())

Disabled mode is the default everywhere: components hold
:data:`NULL_PROFILER`, whose spans and counters are inert singletons.
"""

from repro.obs.counters import KNOWN_COUNTERS, NULL_COUNTERS, CounterRegistry
from repro.obs.export import timeline_counter_events, to_chrome_trace, write_chrome_trace
from repro.obs.histogram import (
    NULL_HISTOGRAMS,
    HistogramSet,
    LogHistogram,
    NullHistogramSet,
)
from repro.obs.profiler import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.report import ProfileReport, SpanRollup, predicate_of_table
from repro.obs.timeline import (
    NULL_TIMELINE,
    NullResourceTimeline,
    ResourceTimeline,
    TimelineSample,
)
from repro.obs.tracer import (
    CATEGORY_ITERATION,
    CATEGORY_OPERATOR,
    CATEGORY_ORDER,
    CATEGORY_PROGRAM,
    CATEGORY_STATEMENT,
    CATEGORY_STRATUM,
    NULL_TRACER,
    Span,
    SpanTracer,
)

__all__ = [
    "CATEGORY_ITERATION",
    "CATEGORY_OPERATOR",
    "CATEGORY_ORDER",
    "CATEGORY_PROGRAM",
    "CATEGORY_STATEMENT",
    "CATEGORY_STRATUM",
    "CounterRegistry",
    "HistogramSet",
    "KNOWN_COUNTERS",
    "LogHistogram",
    "NULL_COUNTERS",
    "NULL_HISTOGRAMS",
    "NULL_PROFILER",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NullHistogramSet",
    "NullProfiler",
    "NullResourceTimeline",
    "ProfileReport",
    "Profiler",
    "ResourceTimeline",
    "Span",
    "SpanRollup",
    "SpanTracer",
    "TimelineSample",
    "predicate_of_table",
    "timeline_counter_events",
    "to_chrome_trace",
    "write_chrome_trace",
]

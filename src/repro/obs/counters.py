"""Monotonic event counters for engine internals.

Counters complement spans: where a span answers "where did the time
go", a counter answers "how often did X happen" — queries dispatched,
tuples deduplicated, hash tables built, DSD strategy choices, PBME bit
operations, transient-accounting underflows. Counter names are plain
strings; the well-known ones are listed in :data:`KNOWN_COUNTERS` so
docs and tests have a single source of truth.
"""

from __future__ import annotations

#: name -> description of every counter the engine increments. New sites
#: should register here; the registry itself accepts any name.
KNOWN_COUNTERS = {
    "queries_dispatched": "SQL statements paying full dispatch overhead",
    "ddl_statements": "CREATE/DROP statements (catalog-only cost)",
    "statements_executed": "all statements routed through Database.execute_ast",
    "hash_tables_built": "join/anti-join/set-difference hash-table builds",
    "hash_build_rows": "tuples inserted into join hash tables",
    "hash_probe_rows": "tuples probed against join hash tables",
    "join_output_rows": "tuples produced by equi-join operators",
    "dedup_calls": "dedup_table invocations",
    "dedup_input_rows": "tuples fed to deduplication",
    "dedup_output_rows": "distinct tuples surviving deduplication",
    "tuples_deduped": "duplicates removed (input - output)",
    "dedup_fast_path": "dedups taking the CCK-GSCHT compact-key path",
    "dedup_generic_path": "dedups taking the generic hash-table path",
    "dedup_lean_path": "dedups taking the memory-lean sort path (degraded)",
    "dsd_opsd_choices": "set-differences executed with OPSD",
    "dsd_tpsd_choices": "set-differences executed with TPSD",
    "join_cache.hit": "joins served by a warm persistent index (no build)",
    "join_cache.miss": "persistent-index cold builds (first use of a key)",
    "join_cache.extend": "persistent-index incremental extensions (Δ only)",
    "join_cache.evict": "index entries dropped (rewrite/stratum/overflow)",
    "join_cache.extend_rows": "appended rows ingested by index extensions",
    "pbme_strata": "strata evaluated by the bit-matrix engine",
    "pbme_bit_ops": "bit-pair visits during PBME expansion",
    "transient_underflows": "release_transient calls driving the balance negative",
    # -- simulated-executor phases (repro.engine.executor) -------------------
    "phase_scan_runs": "parallel scan phases executed",
    "phase_probe_runs": "parallel probe phases executed",
    "phase_build_runs": "parallel hash-build phases executed",
    "phase_dedup_runs": "parallel dedup phases executed",
    "phase_aggregate_runs": "parallel aggregate phases executed",
    "phase_bitmatrix_runs": "parallel bit-matrix phases executed",
    "phase_partition_runs": "radix scatter phases executed",
    "phase_p_build_runs": "per-partition build phases executed",
    "phase_p_probe_runs": "per-partition probe phases executed",
    "phase_p_dedup_runs": "per-partition dedup phases executed",
    # -- radix partitioning (repro.engine.operators/dedup/setops) ------------
    "partition.join_runs": "equi-joins executed on the radix-partitioned path",
    "partition.dedup_runs": "dedups executed on the radix-partitioned path",
    "partition.setdiff_runs": "set-differences executed on the radix-partitioned path",
    "partition.setdiff_opsd": "partitioned set-difference OPSD probe phases",
    "partition.setdiff_tpsd_intersect": "partitioned TPSD intersect phases",
    "partition.setdiff_tpsd_subtract": "partitioned TPSD subtract phases",
    "partition.scatter_rows": "tuples scattered into radix partitions",
    "partition.shed": "partitioned plans shed to single-shot under degradation",
    # -- resilience (repro.resilience) -------------------------------------
    "faults_injected": "transient faults raised by the injection harness",
    "fault_retries": "operations re-run after an injected transient fault",
    "faults_worker_failures": "parallel-phase tasks re-executed after worker failure",
    "faults_memory_spikes": "injected transient memory-pressure spikes",
    "memory_pressure_soft": "soft (80%) memory watermark crossings",
    "memory_pressure_critical": "critical (95%) memory watermark crossings",
    "degradations_taken": "degradation-ladder steps that changed behaviour",
    "degradation_shed_join_cache": "join-state caches evicted under memory pressure",
    "degradation_shed_partitioning": "radix partitioning disabled under memory pressure",
    "degradation_lean_dedup": "dedups rerouted to the memory-lean sort path",
    "degradation_force_tpsd": "OPSD set-differences overridden to TPSD",
    "degradation_spill_cold_tables": "cold table prefixes evicted to the disk tier",
    "degradation_prefer_pbme": "strata steered to PBME under memory pressure",
    "degradation_pbme_fallback": "PBME density checks bypassed under pressure",
    # -- spill-to-disk tier (repro.storage.spill) ----------------------------
    "spill.tables_spilled": "spill_table calls that moved at least one segment",
    "spill.segments_written": "spill segment files durably published",
    "spill.bytes_written": "file bytes written to spill segments",
    "spill.segment_reads": "spill segments read back (streamed or faulted)",
    "spill.bytes_read": "file bytes read back from spill segments",
    "spill.fault_ins": "whole-prefix rehydrations via Table.data()",
    "spill.streamed_setdiffs": "TPSD set-differences streaming a spilled base",
    "spill.discarded_segments": "segments dropped unread (rewrite/truncate)",
    "spill.torn_quarantined": "corrupt spill segments quarantined on read",
    "spill.quarantine_swept": "quarantined torn segments removed at cleanup",
    "spill.enospc": "spill writes refused by a full disk (real or injected)",
    "checkpoints_written": "evaluation checkpoints saved to disk",
    "checkpoint_bytes_written": "bytes of table state written to checkpoints",
    "checkpoint_corrupt_skipped": "torn/corrupt checkpoint files skipped on load",
    "checkpoint_corrupt_pruned": "checksum-failing checkpoint files deleted during prune",
    "checkpoint_stale_skipped": "checkpoints skipped on load because their EDB fingerprint no longer matched",
    # -- runtime divergence guard (repro.resilience.guards) -----------------
    "guard.soft_warnings": "divergence budgets crossing their soft fraction",
    "guard.max_iterations_tripped": "evaluations killed by the iteration budget",
    "guard.max_total_rows_tripped": "evaluations killed by the row budget",
    # -- incremental view maintenance (repro.core.ivm) -----------------------
    "ivm.maintain_runs": "EDB update batches applied via incremental maintenance",
    "ivm.strata_skipped": "strata skipped because no body predicate changed",
    "ivm.strata_counting": "strata maintained with derivation counting",
    "ivm.strata_dred": "strata maintained with DRed over-delete/rederive",
    "ivm.strata_recomputed": "strata recomputed from scratch during maintenance",
    "ivm.overdeleted_rows": "rows DRed over-deleted before rederivation",
    "ivm.rederived_rows": "over-deleted rows DRed rederived back",
    # -- magic sets / demand-driven evaluation (repro.datalog.magic) ---------
    "magic.rewrites": "point goals answered through a magic-set rewritten program",
    "magic.degenerate": "point goals that degenerated to the unrewritten program",
    "magic.pinned_predicates": "cone predicates pinned to unrestricted evaluation (aggregation/negation)",
    # -- query service (repro.server) ---------------------------------------
    "server.submitted": "query submissions received by the service",
    "server.admitted": "queries admitted past admission control",
    "server.rejected": "submissions rejected with an Overloaded response",
    "server.rejected_queue_full": "rejections because the session queue was full",
    "server.rejected_memory": "rejections because reserved memory was above the high watermark",
    "server.rejected_draining": "rejections because the service was draining",
    "server.rejected_breaker": "rejections because the class circuit breaker was open",
    "server.shed": "accepted sessions dropped before completion (drain/breaker)",
    "server.breaker_open": "circuit-breaker trips to the open state",
    "server.breaker_half_open": "circuit-breaker transitions to half-open probing",
    "server.breaker_closed": "circuit-breaker recoveries to the closed state",
    "server.watchdog_cancels": "sessions cancelled by the stuck-fixpoint watchdog",
    "server.checkpointed_on_drain": "in-flight sessions checkpointed during drain",
    "server.spill_released_bytes": "reservation bytes returned early because sessions spilled to disk",
    "server.spill_dirs_cleaned": "per-session spill directories removed at finalize/drain",
    "server.rejected_no_view": "update submissions rejected for a missing/dead target view",
    "server.rejected_bad_goal": "point submissions rejected for an unparseable or ill-typed goal",
    "server.point_queries": "point-query sessions executed (cache hits included)",
    "server.point_cache_hits": "point queries served from the demand cache without evaluation",
    "server.point_cache_misses": "point queries that ran their demanded cone to fixpoint",
    "server.views_materialized": "fixpoints kept live for incremental updates",
    "server.views_released": "materialized views released (explicitly or at drain)",
    "server.updates_applied": "update sessions that maintained a view successfully",
    # -- durable views: write-ahead log + crash recovery ---------------------
    "wal.appends": "update batches durably appended to a write-ahead log",
    "wal.bytes_appended": "framed bytes appended to write-ahead logs",
    "wal.append_retries": "WAL appends re-run after an injected transient fault",
    "wal.torn_truncated": "torn WAL tails truncated back to a record boundary on open",
    "wal.torn_repaired": "torn WAL appends repaired in place (truncate + retry)",
    "wal.compactions": "WAL truncations after rolling a fresh base checkpoint",
    "wal.duplicate_batches": "update batches re-acked by batch_id without re-applying",
    "wal.views_persisted": "materialized views that committed durable state",
    "wal.persist_failures": "views degraded to memory-only (persistence failed)",
    "recovery.views_recovered": "durable views rebuilt from base + log replay",
    "recovery.views_quarantined": "unrecoverable view directories moved aside",
    "recovery.batches_replayed": "logged batches re-applied during recovery",
    "recovery.batches_skipped": "logged batches skipped as already folded into the base",
}


class CounterRegistry:
    """A named bag of integer counters."""

    enabled = True

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def inc(self, name: str, value: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted copy of every non-zero counter."""
        return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        self._counts.clear()


class NullCounterRegistry(CounterRegistry):
    """Disabled path: increments vanish, reads return zero."""

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass


NULL_COUNTERS = NullCounterRegistry()

"""ProfileReport: aggregate a span forest into actionable rollups.

Turns the raw trace into the three views perf work needs:

* **hotspots** — every (category, name) pair ranked by *self* time (time
  inside the span not covered by children), with counts and row totals;
* **per-operator rollups** — operator-category spans only;
* **per-rule rollups** — statement spans grouped by the IDB predicate
  their target table belongs to (``tc_mdelta`` → ``tc``), which is the
  attribution FlowLog-style rule scheduling needs.

The report also knows what fraction of total simulated time the trace
covers (``attributed_fraction``) so consumers can detect instrumentation
gaps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.obs.tracer import CATEGORY_STATEMENT, Span

#: Working-table suffixes the interpreter derives from a predicate name.
_TABLE_SUFFIX = re.compile(r"(_tmp_mdelta\d+|_mdelta|_delta)$")


def predicate_of_table(table: str) -> str:
    """Map a working-table name back to its Datalog predicate."""
    return _TABLE_SUFFIX.sub("", table)


@dataclass
class SpanRollup:
    """Aggregate over all spans sharing one (category, name)."""

    name: str
    category: str
    count: int = 0
    total_time: float = 0.0
    self_time: float = 0.0
    rows_out: int = 0

    def add(self, span: Span) -> None:
        self.count += 1
        self.total_time += span.duration
        self.self_time += span.self_time
        rows = span.attrs.get("rows_out")
        if rows is not None:
            self.rows_out += int(rows)


@dataclass
class ProfileReport:
    """Aggregated view over one evaluation's trace and counters."""

    roots: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    total_time: float = 0.0
    #: name -> LogHistogram.to_dict() records (latency/size distributions).
    histograms: dict[str, dict] = field(default_factory=dict)
    #: Resource-timeline samples as flat records (time, resident_bytes, ...).
    timeline: list[dict] = field(default_factory=list)

    @classmethod
    def from_profiler(cls, profiler, total_time: float) -> "ProfileReport":
        return cls(
            roots=list(profiler.tracer.roots),
            counters=profiler.counters.snapshot(),
            total_time=total_time,
            histograms=profiler.histograms.snapshot(),
            timeline=profiler.timeline.to_records(),
        )

    # -- aggregation ---------------------------------------------------------

    def _walk(self):
        for root in self.roots:
            yield from root.walk()

    def rollups(self) -> list[SpanRollup]:
        """One rollup per (category, name), sorted by self time desc."""
        table: dict[tuple[str, str], SpanRollup] = {}
        for span in self._walk():
            key = (span.category, span.name)
            if key not in table:
                table[key] = SpanRollup(name=span.name, category=span.category)
            table[key].add(span)
        return sorted(table.values(), key=lambda r: r.self_time, reverse=True)

    def per_operator(self) -> dict[str, SpanRollup]:
        return {r.name: r for r in self.rollups() if r.category == "operator"}

    def per_rule(self) -> dict[str, SpanRollup]:
        """Statement time grouped by the predicate of the target table."""
        table: dict[str, SpanRollup] = {}
        for span in self._walk():
            if span.category != CATEGORY_STATEMENT:
                continue
            target = span.attrs.get("table")
            if not target:
                continue
            predicate = predicate_of_table(str(target))
            if predicate not in table:
                table[predicate] = SpanRollup(name=predicate, category="rule")
            table[predicate].add(span)
        return dict(sorted(table.items(), key=lambda kv: kv[1].total_time, reverse=True))

    def attributed_fraction(self) -> float:
        """Share of total simulated time covered by the span forest."""
        if self.total_time <= 0:
            return 1.0 if not self.roots else 0.0
        return min(1.0, sum(root.duration for root in self.roots) / self.total_time)

    # -- rendering ------------------------------------------------------------

    def hotspots(self, top_n: int = 15) -> list[SpanRollup]:
        return self.rollups()[:top_n]

    def render_hotspots(self, top_n: int = 15) -> str:
        """The flat-text top-N table (self-time attribution)."""
        total = self.total_time or sum(r.self_time for r in self.rollups()) or 1.0
        lines = [
            f"profile: {self.total_time:.4f} simulated seconds, "
            f"{self.attributed_fraction() * 100:.1f}% attributed to spans",
            f"{'span':<28}{'category':<11}{'count':>7}{'self s':>10}"
            f"{'self %':>8}{'total s':>10}{'rows out':>12}",
        ]
        lines.append("-" * len(lines[-1]))
        for rollup in self.hotspots(top_n):
            lines.append(
                f"{rollup.name:<28}{rollup.category:<11}{rollup.count:>7}"
                f"{rollup.self_time:>10.4f}{100 * rollup.self_time / total:>7.1f}%"
                f"{rollup.total_time:>10.4f}{rollup.rows_out:>12,}"
            )
        if self.counters:
            lines.append("")
            lines.append("counters:")
            for name, value in self.counters.items():
                lines.append(f"  {name:<28}{value:>14,}")
        return "\n".join(lines)

    def render_rules(self) -> str:
        """Per-rule (predicate) attribution table."""
        lines = [f"{'predicate':<24}{'statements':>11}{'total s':>10}"]
        lines.append("-" * len(lines[0]))
        for name, rollup in self.per_rule().items():
            lines.append(f"{name:<24}{rollup.count:>11}{rollup.total_time:>10.4f}")
        return "\n".join(lines)

    def render_histograms(self) -> str:
        """Latency/size distribution table (count, p50/p95/p99, max)."""
        header = (
            f"{'histogram':<32}{'count':>8}{'p50':>12}{'p95':>12}"
            f"{'p99':>12}{'max':>12}"
        )
        lines = [header, "-" * len(header)]
        for name, record in self.histograms.items():
            lines.append(
                f"{name:<32}{record['count']:>8}{record['p50']:>12.6f}"
                f"{record['p95']:>12.6f}{record['p99']:>12.6f}{record['max']:>12.6f}"
            )
        return "\n".join(lines)

"""Trace exporters: Chrome trace-event JSON and helpers.

``to_chrome_trace`` renders a span forest in the Trace Event Format
(the ``chrome://tracing`` / Perfetto "JSON object" flavour): one
complete ("ph": "X") event per span with microsecond timestamps on the
simulated time axis, plus the counter snapshot under ``otherData``.
Open the file directly in Perfetto (https://ui.perfetto.dev) or
chrome://tracing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.report import ProfileReport
from repro.obs.tracer import Span

#: Synthetic process/thread ids: everything runs on one simulated
#: timeline, so a single track is the honest rendering.
TRACE_PID = 1
TRACE_TID = 1


def _span_event(span: Span) -> dict:
    args = {k: v for k, v in span.attrs.items() if _jsonable(v)}
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": TRACE_PID,
        "tid": TRACE_TID,
        "args": args,
    }


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def chrome_trace_events(roots: list[Span]) -> list[dict]:
    """Flatten a span forest into trace events (parents before children)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "repro simulated timeline"},
        }
    ]
    for root in roots:
        for span in root.walk():
            events.append(_span_event(span))
    return events


def to_chrome_trace(report: ProfileReport) -> dict:
    """The full Trace Event Format JSON object for one profile."""
    return {
        "traceEvents": chrome_trace_events(report.roots),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds (exported as microseconds)",
            "total_sim_seconds": report.total_time,
            "counters": report.counters,
        },
    }


def write_chrome_trace(report: ProfileReport, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(report), indent=2) + "\n")
    return path

"""Trace exporters: Chrome trace-event JSON and helpers.

``to_chrome_trace`` renders a span forest in the Trace Event Format
(the ``chrome://tracing`` / Perfetto "JSON object" flavour): one
complete ("ph": "X") event per span with microsecond timestamps on the
simulated time axis, plus the counter snapshot under ``otherData``.
Open the file directly in Perfetto (https://ui.perfetto.dev) or
chrome://tracing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.report import ProfileReport
from repro.obs.tracer import Span

#: Synthetic process/thread ids: everything runs on one simulated
#: timeline, so a single track is the honest rendering.
TRACE_PID = 1
TRACE_TID = 1


def _span_event(span: Span) -> dict:
    args = {k: v for k, v in span.attrs.items() if _jsonable(v)}
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": TRACE_PID,
        "tid": TRACE_TID,
        "args": args,
    }


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


#: Timeline keys folded into one stacked "memory" counter track; the
#: split shows whether pressure came from resident tables or transient
#: operator scratch.
_MEMORY_TRACK = ("resident_bytes", "transient_bytes")

#: Timeline keys that get their own counter track (the "why it slowed"
#: signals: degradation ladder, admission queue, cache/partition state).
_SCALAR_TRACKS = (
    "degradation_level",
    "queue_depth",
    "active",
    "reserved_bytes",
    "join_cache_entries",
    "join_cache_bytes",
    "partition_scatter_rows",
    "delta_rows",
)


def timeline_counter_events(timeline: list[dict]) -> list[dict]:
    """Trace counter events ("ph": "C") from resource-timeline records.

    Each sample becomes one stacked memory event plus one event per
    scalar track present, so the trace viewer renders continuous
    resource tracks under the span forest — memory climbing into a
    watermark, the degradation ladder stepping, the admission queue
    backing up — aligned with the spans that caused it.
    """
    events = []
    for record in timeline:
        ts = record["time"] * 1e6
        memory = {key: record[key] for key in _MEMORY_TRACK if key in record}
        if memory:
            events.append(
                {
                    "name": "memory",
                    "ph": "C",
                    "ts": ts,
                    "pid": TRACE_PID,
                    "tid": TRACE_TID,
                    "args": memory,
                }
            )
        for key in _SCALAR_TRACKS:
            if key in record:
                events.append(
                    {
                        "name": key,
                        "ph": "C",
                        "ts": ts,
                        "pid": TRACE_PID,
                        "tid": TRACE_TID,
                        "args": {key: record[key]},
                    }
                )
    return events


def chrome_trace_events(roots: list[Span]) -> list[dict]:
    """Flatten a span forest into trace events (parents before children)."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "repro simulated timeline"},
        }
    ]
    for root in roots:
        for span in root.walk():
            events.append(_span_event(span))
    return events


def to_chrome_trace(report: ProfileReport) -> dict:
    """The full Trace Event Format JSON object for one profile."""
    events = chrome_trace_events(report.roots)
    events.extend(timeline_counter_events(report.timeline))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds (exported as microseconds)",
            "total_sim_seconds": report.total_time,
            "counters": report.counters,
            "histograms": report.histograms,
        },
    }


def write_chrome_trace(report: ProfileReport, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(report), indent=2) + "\n")
    return path

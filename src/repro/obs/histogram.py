"""Mergeable fixed-bucket latency/size histograms with deterministic percentiles.

The trajectory harness and the query service both need distributions,
not just totals: a p99 latency regression is invisible in a mean. A
:class:`LogHistogram` buckets positive values into fixed base-2
geometric buckets (bucket ``e`` covers ``[2^e, 2^{e+1})``), so:

* **merging is exact and associative** — bucket boundaries are absolute,
  independent of what either histogram has seen, so merging is integer
  bucket-count addition (the property the per-class server histograms
  and any future sharded collection rely on);
* **percentiles are deterministic** — p50/p95/p99 depend only on the
  integer bucket counts and the exact min/max, never on insertion order
  or timing, so two runs with the same simulated history report
  bit-identical quantiles (the regression gate's requirement).

Values are simulated seconds or row/byte counts; anything ``<= 0`` (or
smaller than the first bucket) lands in the underflow bucket starting
at 0. Like the rest of ``repro.obs``, the disabled path is a shared
null object (:data:`NULL_HISTOGRAMS`) whose ``observe`` discards.

Note on merged ``sum``: bucket counts, count, min, and max merge
exactly; the value sum is a float accumulation, exact for integer-valued
observations but subject to rounding for arbitrary floats.
"""

from __future__ import annotations

import math

#: Bucket exponent range: 2^-30 (~1 ns simulated) .. 2^33 (~8.6 G rows /
#: ~272 simulated years). Values outside clamp to the edge buckets.
MIN_EXPONENT = -30
MAX_EXPONENT = 33

#: Sentinel exponent for the underflow bucket covering [0, 2^MIN_EXPONENT).
UNDERFLOW = MIN_EXPONENT - 1


def bucket_exponent(value: float) -> int:
    """The bucket a value falls into: ``floor(log2(value))``, clamped.

    Uses :func:`math.frexp` so the exponent is exact — no log-rounding
    drift near bucket boundaries (``frexp(v) = (m, e)`` with
    ``0.5 <= m < 1`` means ``floor(log2(v)) == e - 1``).
    """
    if value <= 0.0:
        return UNDERFLOW
    _, exp = math.frexp(value)
    exp -= 1
    if exp < MIN_EXPONENT:
        return UNDERFLOW
    return min(exp, MAX_EXPONENT)


def bucket_bounds(exponent: int) -> tuple[float, float]:
    """The ``[lower, upper)`` value range of a bucket exponent."""
    if exponent == UNDERFLOW:
        return 0.0, 2.0**MIN_EXPONENT
    return 2.0**exponent, 2.0 ** (exponent + 1)


class LogHistogram:
    """A fixed log2-bucket histogram of non-negative values."""

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket exponent -> observation count (sparse).
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = bucket_exponent(value)
        self._buckets[exponent] = self._buckets.get(exponent, 0) + 1

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram into this one (exact on buckets)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for exponent, count in other._buckets.items():
            self._buckets[exponent] = self._buckets.get(exponent, 0) + count

    def merged(self, other: "LogHistogram") -> "LogHistogram":
        """A new histogram combining self and other (neither mutated)."""
        result = LogHistogram()
        result.merge(self)
        result.merge(other)
        return result

    # -- quantiles ---------------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Deterministic quantile estimate in ``[min, max]``.

        The target rank is ``ceil(q * count)`` (at least 1); the value is
        linearly interpolated inside the covering bucket by rank
        position. Exact for the extremes: p0 -> min, p100 -> max.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for exponent in sorted(self._buckets):
            in_bucket = self._buckets[exponent]
            if cumulative + in_bucket >= target:
                lower, upper = bucket_bounds(exponent)
                fraction = (target - cumulative) / in_bucket
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- export ------------------------------------------------------------------

    def buckets(self) -> dict[int, int]:
        """Sorted copy of the sparse bucket counts."""
        return dict(sorted(self._buckets.items()))

    def to_dict(self) -> dict:
        """Schema-stable JSON record (the ``metrics_snapshot`` entry shape)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": 0.0 if empty else round(self.min, 9),
            "max": 0.0 if empty else round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
            "buckets": {str(exp): count for exp, count in sorted(self._buckets.items())},
        }


class HistogramSet:
    """A named bag of histograms (the counter registry's distribution twin)."""

    enabled = True

    def __init__(self) -> None:
        self._histograms: dict[str, LogHistogram] = {}

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LogHistogram()
        histogram.observe(value)

    def get(self, name: str) -> LogHistogram | None:
        return self._histograms.get(name)

    def names(self) -> list[str]:
        return sorted(self._histograms)

    def snapshot(self) -> dict[str, dict]:
        """Sorted ``name -> to_dict()`` of every histogram."""
        return {name: self._histograms[name].to_dict() for name in sorted(self._histograms)}

    def merge_from(self, other: "HistogramSet") -> None:
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = LogHistogram()
            mine.merge(histogram)

    def clear(self) -> None:
        self._histograms.clear()


class NullHistogramSet(HistogramSet):
    """Disabled path: observations vanish, snapshots are empty."""

    enabled = False

    def observe(self, name: str, value: float) -> None:
        pass


NULL_HISTOGRAMS = NullHistogramSet()

"""Continuous resource timelines on the simulated clock.

A :class:`ResourceTimeline` is an append-only series of named samples —
resident bytes, transient bytes, degradation-ladder level, join-cache
and partition counters, queue depth — taken at meaningful boundaries
(the interpreter samples at iteration boundaries, the query service at
admission events). Where a counter answers "how often" and a span
answers "where did the time go", a timeline answers "what did the
resource look like *while* it happened": the paper's Figure 11/14/16
memory-and-utilization trajectories are exactly this shape.

Timelines export alongside the Chrome trace as counter tracks (see
:func:`repro.obs.export.timeline_counter_events`), so a trace shows
*why* a phase slowed — memory climbing into the watermark, the
degradation ladder stepping, the admission queue backing up — not just
that it did.

The disabled path is the shared :data:`NULL_TIMELINE` whose ``sample``
discards everything.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimelineSample:
    """One sample: a simulated timestamp plus named numeric values."""

    time: float
    values: dict

    def to_record(self) -> dict:
        """Flat JSON-able record (``time`` first, then sorted values)."""
        return {"time": round(self.time, 9), **{k: self.values[k] for k in sorted(self.values)}}


class ResourceTimeline:
    """An append-only series of resource samples on one simulated clock."""

    enabled = True

    def __init__(self) -> None:
        self.samples: list[TimelineSample] = []

    def __len__(self) -> int:
        return len(self.samples)

    def sample(self, time: float, **values) -> None:
        """Record one sample at a simulated timestamp."""
        self.samples.append(TimelineSample(time=float(time), values=values))

    def last(self) -> TimelineSample | None:
        return self.samples[-1] if self.samples else None

    def series(self, key: str) -> list[tuple[float, float]]:
        """The ``(time, value)`` series of one sampled key (missing skipped)."""
        return [
            (sample.time, sample.values[key])
            for sample in self.samples
            if key in sample.values
        ]

    def peak(self, key: str) -> float:
        """Maximum sampled value of a key (0.0 when never sampled)."""
        values = [value for _, value in self.series(key)]
        return max(values) if values else 0.0

    def to_records(self) -> list[dict]:
        """The whole timeline as flat JSON-able records."""
        return [sample.to_record() for sample in self.samples]


class NullResourceTimeline(ResourceTimeline):
    """Disabled path: samples vanish; reads see an empty series."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def sample(self, time: float, **values) -> None:
        pass


NULL_TIMELINE = NullResourceTimeline()

"""Hierarchical span tracing on the shared simulated clock.

A :class:`Span` is a named interval of simulated time with attributes
(rows in/out, transient bytes, contention class, ...) and children.
Spans nest: the engine opens a ``program`` span, each stratum opens a
``stratum`` span inside it, and so on down to individual physical
operators. Because every component charges work to one
:class:`~repro.common.timing.SimClock`, the span tree is a complete,
consistent account of where simulated time went — the substrate for
``EXPLAIN ANALYZE``, the hotspot table, and the Chrome trace export.

The disabled path is a shared null tracer whose ``span`` context
manager allocates nothing and records nothing, so instrumentation can
stay unconditionally in place on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.timing import SimClock

#: Span categories, outermost to innermost. Exported so consumers (tests,
#: trace viewers) can assert/colour the hierarchy without string literals.
CATEGORY_PROGRAM = "program"
CATEGORY_STRATUM = "stratum"
CATEGORY_ITERATION = "iteration"
CATEGORY_STATEMENT = "statement"
CATEGORY_OPERATOR = "operator"

#: Nesting rank per category; used by tests and the exporter to check
#: that a child's category never outranks its parent's.
CATEGORY_ORDER = {
    CATEGORY_PROGRAM: 0,
    CATEGORY_STRATUM: 1,
    CATEGORY_ITERATION: 2,
    CATEGORY_STATEMENT: 3,
    CATEGORY_OPERATOR: 4,
}


@dataclass
class Span:
    """One traced interval on the simulated time axis."""

    name: str
    category: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes (rows_out=…, bytes=…)."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, category: str) -> list["Span"]:
        """All descendants (including self) of the given category."""
        return [span for span in self.walk() if span.category == category]


class _SpanContext:
    """Context manager opening one span on enter and closing it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._tracer._close(self._span)
        return False


class SpanTracer:
    """Collects a forest of spans against one simulated clock."""

    enabled = True

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, category: str = CATEGORY_OPERATOR, **attrs) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        span = Span(name=name, category=category, start=self.clock.now(), attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = self.clock.now()
        # Close any descendants abandoned by an exception unwinding past
        # them, then pop the span itself.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = self.clock.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def total_traced(self) -> float:
        """Simulated seconds covered by root spans (non-overlapping)."""
        return sum(root.duration for root in self.roots)


class _NullSpan(Span):
    """Shared inert span: attribute writes are discarded."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="<disabled>", category="null", start=0.0, end=0.0)

    def set(self, **attrs) -> "Span":
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


class NullTracer:
    """Drop-in tracer that records nothing (the disabled path)."""

    enabled = False
    roots: list[Span] = []

    @property
    def current(self) -> Span | None:
        return None

    def span(self, name: str, category: str = CATEGORY_OPERATOR, **attrs) -> _NullSpanContext:
        return _NULL_CONTEXT

    def all_spans(self) -> Iterator[Span]:
        return iter(())

    def total_traced(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()

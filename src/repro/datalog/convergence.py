"""Static convergence checks for recursive aggregation.

Section 3.3: "one must be careful that the semantics of the Datalog
program lead to convergence to a fixpoint; in this paper, we assume that
the program given as input always converges ([28] studies how to test
this property)". This module implements the practical sufficient checks
from that line of work (pre-mappability-style conditions):

* a recursive MIN converges if every recursive contribution to the
  aggregated value is *non-decreasing* in the recursive value — e.g.
  ``MIN(d1 + d2)`` with a non-negative weight column (SSSP), or
  ``MIN(z)`` passed through unchanged (CC);
* symmetrically, a recursive MAX needs non-increasing contributions.

The checker is conservative: it proves convergence for the paper's
programs and flags anything it cannot prove (e.g. ``MIN(d1 - d2)``,
where negative cycles would descend forever).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog import ast
from repro.datalog.analyzer import AnalyzedProgram


@dataclass(frozen=True)
class ConvergenceIssue:
    """One rule the checker cannot prove convergent."""

    rule: str
    reason: str


def check_convergence(analyzed: AnalyzedProgram) -> list[ConvergenceIssue]:
    """Return the (possibly empty) list of unprovable recursive aggregates."""
    issues: list[ConvergenceIssue] = []
    for stratum in analyzed.strata:
        if not stratum.recursive:
            continue
        for rule in stratum.rules:
            for term in rule.head.terms:
                if not isinstance(term, ast.AggTerm):
                    continue
                recursive_atoms = [
                    atom
                    for atom in rule.positive_atoms()
                    if atom.predicate in stratum.predicates
                ]
                if not recursive_atoms:
                    continue  # base rule: cannot diverge
                reason = _unprovable_reason(term, recursive_atoms)
                if reason is not None:
                    issues.append(ConvergenceIssue(rule=str(rule), reason=reason))
    return issues


def _unprovable_reason(
    term: ast.AggTerm, recursive_atoms: list[ast.Atom]
) -> str | None:
    """None if the aggregate provably converges, else an explanation."""
    recursive_value_vars: set[str] = set()
    for atom in recursive_atoms:
        # By convention (enforced by the analyzer) the aggregated value is
        # the last column of an aggregated predicate.
        last = atom.terms[-1]
        if isinstance(last, ast.Variable):
            recursive_value_vars.add(last.name)

    if term.func == "MIN":
        return _check_monotone(term.expr, recursive_value_vars, increasing=True)
    if term.func == "MAX":
        return _check_monotone(term.expr, recursive_value_vars, increasing=False)
    return f"{term.func} has no convergent recursive semantics"


def _check_monotone(
    expr: ast.ScalarExpr, value_vars: set[str], increasing: bool
) -> str | None:
    """Prove that ``expr`` cannot move past the fixpoint.

    For MIN (``increasing=True``) every term combined with the recursive
    value must be non-negative additive or the value itself; subtraction
    of anything from the value, or multiplication by possibly-negative
    factors, is unprovable.
    """
    if isinstance(expr, ast.Variable):
        return None  # the value itself, or a plain body column: bounded
    if isinstance(expr, ast.Constant):
        if increasing and expr.value < 0:
            return f"negative constant {expr.value} can decrease MIN forever"
        if not increasing and expr.value > 0:
            return f"positive constant {expr.value} can increase MAX forever"
        return None
    if isinstance(expr, ast.Arithmetic):
        if expr.op == "+":
            left = _check_monotone(expr.left, value_vars, increasing)
            right = _check_monotone(expr.right, value_vars, increasing)
            return left or right
        if expr.op == "-":
            touches_value = bool(
                ast.scalar_variables(expr) & value_vars
            )
            if touches_value:
                return (
                    "subtraction involving the recursive value is not "
                    "provably monotone (negative cycles would diverge)"
                )
            return None
        if expr.op == "*":
            # Products are monotone only with provably non-negative
            # factors; variables have unknown sign.
            factors = ast.scalar_variables(expr)
            if factors & value_vars:
                return (
                    "multiplication of the recursive value has unknown "
                    "sign; convergence not provable"
                )
            return None
    return "unsupported aggregate expression"

"""AST for the Datalog dialect (pure Datalog + stratified negation +
aggregation, per Section 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

AGGREGATE_FUNCS = ("MIN", "MAX", "SUM", "COUNT", "AVG")
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


# -- terms / scalar expressions ------------------------------------------------


@dataclass(frozen=True)
class Variable:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Wildcard:
    """Anonymous variable ``_`` (each occurrence independent)."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class Arithmetic:
    """``left op right`` with op in {+, -, *} over variables/constants."""

    op: str
    left: "ScalarExpr"
    right: "ScalarExpr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


ScalarExpr = Variable | Constant | Arithmetic


@dataclass(frozen=True)
class AggTerm:
    """Head term ``AGG(expr)``, e.g. ``MIN(d1 + d2)``."""

    func: str
    expr: ScalarExpr

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")

    def __str__(self) -> str:
        return f"{self.func}({self.expr})"


HeadTerm = Variable | Constant | AggTerm
BodyTerm = Variable | Constant | Wildcard


def scalar_variables(expr: ScalarExpr) -> set[str]:
    """Variable names occurring in a scalar expression."""
    if isinstance(expr, Variable):
        return {expr.name}
    if isinstance(expr, Constant):
        return set()
    return scalar_variables(expr.left) | scalar_variables(expr.right)


# -- literals ---------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """``pred(t1, ..., tk)``, possibly negated in a body."""

    predicate: str
    terms: tuple[BodyTerm | HeadTerm, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for term in self.terms:
            if isinstance(term, Variable):
                names.add(term.name)
            elif isinstance(term, AggTerm):
                names |= scalar_variables(term.expr)
        return names

    def __str__(self) -> str:
        inner = ", ".join(str(term) for term in self.terms)
        prefix = "!" if self.negated else ""
        return f"{prefix}{self.predicate}({inner})"


@dataclass(frozen=True)
class Comparison:
    """Built-in comparison literal, e.g. ``x != y`` or ``d < 10``."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    def variables(self) -> set[str]:
        return scalar_variables(self.left) | scalar_variables(self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


BodyLiteral = Atom | Comparison


# -- rules and programs ---------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` A rule with an empty body is a fact."""

    head: Atom
    body: tuple[BodyLiteral, ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.body

    def body_atoms(self) -> tuple[Atom, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def positive_atoms(self) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.body_atoms() if not atom.negated)

    def negative_atoms(self) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.body_atoms() if atom.negated)

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Comparison))

    def has_aggregation(self) -> bool:
        return any(isinstance(term, AggTerm) for term in self.head.terms)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


@dataclass
class Program:
    """A parsed (not yet analyzed) Datalog program."""

    rules: list[Rule] = field(default_factory=list)
    name: str = "program"
    #: Point-query goals (``?- pred(t1, ..., tk).``): plain atoms whose
    #: terms are variables, constants, or wildcards. Goals do not affect
    #: the EDB/IDB split or stratification; they drive the magic-set
    #: demand rewrite (repro.datalog.magic).
    queries: list[Atom] = field(default_factory=list)

    def predicates(self) -> set[str]:
        names: set[str] = set()
        for rule in self.rules:
            names.add(rule.head.predicate)
            for atom in rule.body_atoms():
                names.add(atom.predicate)
        return names

    def __str__(self) -> str:
        lines = [str(rule) for rule in self.rules]
        lines.extend(f"?- {query}." for query in self.queries)
        return "\n".join(lines)

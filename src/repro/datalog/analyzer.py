"""Rule analysis: safety, EDB/IDB split, dependency graph, stratification.

This is the paper's *rule analyzer* component (Figure 1): it validates the
program, derives the predicate dependency graph, partitions it into
strongly connected components, and orders the strata topologically.
Negation (and non-MIN/MAX aggregation) must point to strictly lower
strata; MIN/MAX aggregation is additionally allowed *inside* recursion,
the paper's "recursive aggregation" (Section 3.3, programs CC and SSSP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DatalogError, StratificationError
from repro.datalog import ast

#: Aggregates with a fixpoint-convergent recursive semantics.
RECURSIVE_SAFE_AGGREGATES = {"MIN", "MAX"}


@dataclass(frozen=True)
class ProgramFeatures:
    """Feature envelope of a program (drives Table 1's capability matrix)."""

    has_negation: bool
    has_aggregation: bool
    has_recursive_aggregation: bool
    has_mutual_recursion: bool
    has_nonlinear_recursion: bool
    is_recursive: bool
    max_arity: int
    num_rules: int
    num_strata: int


@dataclass
class Stratum:
    """One strongly connected component of the dependency graph."""

    index: int
    predicates: set[str]
    rules: list[ast.Rule]
    recursive: bool

    def idb_predicates(self) -> set[str]:
        return {rule.head.predicate for rule in self.rules}


@dataclass
class AnalyzedProgram:
    """A validated program plus everything evaluation needs."""

    program: ast.Program
    edb: set[str]
    idb: set[str]
    arities: dict[str, int]
    strata: list[Stratum] = field(default_factory=list)
    features: ProgramFeatures | None = None

    def rules_for(self, predicate: str, stratum: Stratum) -> list[ast.Rule]:
        """``rules(R, s)`` of Algorithm 1."""
        return [rule for rule in stratum.rules if rule.head.predicate == predicate]

    def aggregate_func(self, predicate: str) -> str | None:
        """The aggregate used in ``predicate``'s heads, if any (validated
        to be consistent across rules)."""
        for rule in self.program.rules:
            if rule.head.predicate != predicate:
                continue
            for term in rule.head.terms:
                if isinstance(term, ast.AggTerm):
                    return term.func
        return None


def analyze_program(program: ast.Program) -> AnalyzedProgram:
    """Validate ``program`` and compute its stratification.

    Raises:
        DatalogError: arity conflicts, unsafe rules, malformed aggregation.
        StratificationError: negation (or non-MIN/MAX aggregation) through
            recursion.
    """
    arities = _check_arities(program)
    edb, idb = _split_edb_idb(program)
    for rule in program.rules:
        _check_safety(rule)
        _check_aggregation_shape(rule)
    _check_aggregate_consistency(program, idb)
    for goal in program.queries:
        check_goal(goal, arities)

    strata = _stratify(program, idb)
    features = _compute_features(program, strata, arities)
    analyzed = AnalyzedProgram(
        program=program, edb=edb, idb=idb, arities=arities, strata=strata, features=features
    )
    _check_stratified_negation(analyzed)
    _check_recursive_aggregation(analyzed)
    return analyzed


# --------------------------------------------------------------------------
# Validation passes
# --------------------------------------------------------------------------


def _check_arities(program: ast.Program) -> dict[str, int]:
    arities: dict[str, int] = {}
    for rule in program.rules:
        for atom in (rule.head, *rule.body_atoms()):
            known = arities.get(atom.predicate)
            if known is None:
                arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise DatalogError(
                    f"predicate {atom.predicate!r} used with arity {atom.arity} "
                    f"and {known}"
                )
    return arities


def _split_edb_idb(program: ast.Program) -> tuple[set[str], set[str]]:
    idb = {rule.head.predicate for rule in program.rules}
    all_predicates = program.predicates()
    edb = all_predicates - idb
    return edb, idb


def _check_safety(rule: ast.Rule) -> None:
    """Safety: all head/negated/comparison variables bound positively."""
    positive_vars: set[str] = set()
    for atom in rule.positive_atoms():
        positive_vars |= atom.variables()
    unbound_head = rule.head.variables() - positive_vars
    if unbound_head:
        raise DatalogError(
            f"unsafe rule {rule}: head variables {sorted(unbound_head)} not bound "
            "by a positive body atom"
        )
    for atom in rule.negative_atoms():
        unbound = atom.variables() - positive_vars
        if unbound:
            raise DatalogError(
                f"unsafe rule {rule}: negated atom variables {sorted(unbound)} "
                "not bound by a positive body atom"
            )
    for comparison in rule.comparisons():
        unbound = comparison.variables() - positive_vars
        if unbound:
            raise DatalogError(
                f"unsafe rule {rule}: comparison variables {sorted(unbound)} "
                "not bound by a positive body atom"
            )


def _check_aggregation_shape(rule: ast.Rule) -> None:
    """At most one aggregate term, and it must be the last head term."""
    agg_positions = [
        index
        for index, term in enumerate(rule.head.terms)
        if isinstance(term, ast.AggTerm)
    ]
    if not agg_positions:
        return
    if len(agg_positions) > 1:
        raise DatalogError(f"rule {rule} has more than one aggregate head term")
    if agg_positions[0] != len(rule.head.terms) - 1:
        raise DatalogError(
            f"rule {rule}: the aggregate must be the last head term"
        )


def _check_aggregate_consistency(program: ast.Program, idb: set[str]) -> None:
    """All rules of one predicate agree on whether/how they aggregate."""
    for predicate in sorted(idb):
        funcs: set[str | None] = set()
        for rule in program.rules:
            if rule.head.predicate != predicate:
                continue
            func = None
            for term in rule.head.terms:
                if isinstance(term, ast.AggTerm):
                    func = term.func
            funcs.add(func)
        if len(funcs) > 1:
            raise DatalogError(
                f"predicate {predicate!r} mixes aggregated and plain heads: {funcs}"
            )


# --------------------------------------------------------------------------
# Dependency graph and stratification (Tarjan SCC + topological order)
# --------------------------------------------------------------------------


def _dependency_edges(program: ast.Program, idb: set[str]) -> dict[str, set[str]]:
    """Edges body-idb -> head (predicate-level dependency graph)."""
    edges: dict[str, set[str]] = {predicate: set() for predicate in idb}
    for rule in program.rules:
        for atom in rule.body_atoms():
            if atom.predicate in idb:
                edges[atom.predicate].add(rule.head.predicate)
    return edges


def _tarjan_scc(nodes: list[str], edges: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's algorithm, iterative; SCCs in reverse topological order."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[str, iter]] = [(root, iter(sorted(edges.get(root, ()))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(edges.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _stratify(program: ast.Program, idb: set[str]) -> list[Stratum]:
    edges = _dependency_edges(program, idb)
    sccs = _tarjan_scc(sorted(idb), edges)
    # Tarjan emits SCCs in reverse topological order; reverse for evaluation.
    ordered = list(reversed(sccs))
    strata: list[Stratum] = []
    for index, component in enumerate(ordered):
        members = set(component)
        rules = [rule for rule in program.rules if rule.head.predicate in members]
        recursive = any(
            atom.predicate in members
            for rule in rules
            for atom in rule.body_atoms()
        )
        strata.append(Stratum(index=index, predicates=members, rules=rules, recursive=recursive))
    return strata


def _stratum_of(analyzed: AnalyzedProgram, predicate: str) -> int:
    for stratum in analyzed.strata:
        if predicate in stratum.predicates:
            return stratum.index
    raise DatalogError(f"predicate {predicate!r} has no stratum")


def _check_stratified_negation(analyzed: AnalyzedProgram) -> None:
    for stratum in analyzed.strata:
        for rule in stratum.rules:
            for atom in rule.negative_atoms():
                if atom.predicate in analyzed.edb:
                    continue
                if _stratum_of(analyzed, atom.predicate) >= stratum.index:
                    raise StratificationError(
                        f"negated atom {atom} in rule {rule} does not refer to a "
                        "strictly lower stratum"
                    )


def _check_recursive_aggregation(analyzed: AnalyzedProgram) -> None:
    for stratum in analyzed.strata:
        if not stratum.recursive:
            continue
        for rule in stratum.rules:
            for term in rule.head.terms:
                if isinstance(term, ast.AggTerm) and term.func not in RECURSIVE_SAFE_AGGREGATES:
                    raise StratificationError(
                        f"aggregate {term.func} in recursive rule {rule} has no "
                        "convergent fixpoint semantics (only MIN/MAX may recurse)"
                    )


# --------------------------------------------------------------------------
# Adornment analysis (magic sets / demand transformation)
# --------------------------------------------------------------------------
#
# A point query ``?- p(5, x).`` demands only the part of ``p`` consistent
# with the bound constant. Adornment analysis annotates every demanded
# (predicate, binding-pattern) pair with a string over {'b', 'f'} — one
# character per argument position — and propagates bindings through each
# rule body left to right (the textbook sideways-information-passing
# strategy): a body position is bound iff its term is a constant or a
# variable already bound by the adorned head or an earlier positive atom.
# The rewrite itself lives in repro.datalog.magic; this pass only decides
# *which* adorned copies exist and which predicates must stay unrestricted.


def goal_adornment(goal: ast.Atom) -> str:
    """The goal's binding pattern: 'b' where the term is a constant."""
    return "".join(
        "b" if isinstance(term, ast.Constant) else "f" for term in goal.terms
    )


def check_goal(goal: ast.Atom, arities: dict[str, int]) -> None:
    """Validate a point-query goal against the program's predicates."""
    if goal.negated:
        raise DatalogError(f"goal {goal} may not be negated")
    known = arities.get(goal.predicate)
    if known is None:
        raise DatalogError(
            f"goal predicate {goal.predicate!r} does not occur in the program"
        )
    if known != goal.arity:
        raise DatalogError(
            f"goal {goal} has arity {goal.arity}, but {goal.predicate!r} "
            f"has arity {known}"
        )
    for term in goal.terms:
        if isinstance(term, ast.AggTerm | ast.Arithmetic):
            raise DatalogError(
                f"goal {goal} may only use variables, constants, and wildcards"
            )


@dataclass(frozen=True)
class AdornedRule:
    """One rule specialized to a head binding pattern.

    ``body_adornments`` parallels ``rule.body``: the adornment of each
    positive IDB body atom that participates in the demand restriction,
    or ``None`` for literals evaluated unrestricted (EDB atoms, negated
    atoms, comparisons, and atoms of pinned / all-free predicates).
    """

    rule: ast.Rule
    adornment: str
    body_adornments: tuple[str | None, ...]


@dataclass
class AdornmentAnalysis:
    """Everything the magic rewrite needs about one goal.

    ``adorned`` maps each demanded (predicate, adornment) pair — with at
    least one bound position — to its specialized rules. ``full`` holds
    predicates that must keep their original, unrestricted rules: pinned
    predicates (negation or aggregation in the demanded cone — restricting
    those could silently change semantics), predicates reached with an
    all-free pattern, and everything reachable from either. ``degenerate``
    names the reason no rewrite applies (the caller should evaluate the
    unrewritten program), or is ``None``.
    """

    goal: ast.Atom
    adornment: str
    adorned: dict[tuple[str, str], list[AdornedRule]] = field(default_factory=dict)
    full: set[str] = field(default_factory=set)
    pinned: dict[str, str] = field(default_factory=dict)
    degenerate: str | None = None


def demanded_cone(program: ast.Program, predicate: str) -> set[str]:
    """IDB predicates reachable from ``predicate`` through rule bodies."""
    rules_by_head: dict[str, list[ast.Rule]] = {}
    for rule in program.rules:
        rules_by_head.setdefault(rule.head.predicate, []).append(rule)
    cone: set[str] = set()
    worklist = [predicate]
    while worklist:
        name = worklist.pop()
        if name in cone or name not in rules_by_head:
            continue
        cone.add(name)
        for rule in rules_by_head[name]:
            for atom in rule.body_atoms():
                worklist.append(atom.predicate)
    return cone


def _pinned_predicates(
    analyzed: "AnalyzedProgram", cone: set[str]
) -> dict[str, str]:
    """Cone predicates that magic restriction must not touch, with reasons.

    Aggregation: an aggregate is computed over *all* derivations of its
    body; restricting the body to demanded bindings could change the
    aggregate's value. Negation: a negated predicate must be complete
    before it is read — a demand-restricted (partial) relation would make
    ``NOT EXISTS`` succeed spuriously. Both stay unrestricted (evaluated
    exactly as in the original program), which is always correct.
    """
    pinned: dict[str, str] = {}
    for rule in analyzed.program.rules:
        if rule.head.predicate in cone and rule.has_aggregation():
            pinned[rule.head.predicate] = "aggregation"
        if rule.head.predicate not in cone:
            continue
        for atom in rule.negative_atoms():
            if atom.predicate in analyzed.idb:
                pinned.setdefault(atom.predicate, "negation")
    return pinned


def adorn_program(analyzed: "AnalyzedProgram", goal: ast.Atom) -> AdornmentAnalysis:
    """Adorn the demanded cone of ``goal`` (left-to-right SIPS).

    Returns a degenerate analysis (no adorned rules) when the goal is
    all-free, targets an EDB relation, or targets a pinned predicate —
    in each case the unrewritten program is the correct evaluation.
    """
    check_goal(goal, analyzed.arities)
    adornment = goal_adornment(goal)
    analysis = AdornmentAnalysis(goal=goal, adornment=adornment)
    if goal.predicate in analyzed.edb:
        analysis.degenerate = "edb-goal"
        return analysis
    if "b" not in adornment:
        analysis.degenerate = "all-free"
        return analysis
    cone = demanded_cone(analyzed.program, goal.predicate)
    analysis.pinned = _pinned_predicates(analyzed, cone)
    if goal.predicate in analysis.pinned:
        analysis.degenerate = f"pinned-{analysis.pinned[goal.predicate]}"
        return analysis

    rules_by_head: dict[str, list[ast.Rule]] = {}
    for rule in analyzed.program.rules:
        rules_by_head.setdefault(rule.head.predicate, []).append(rule)

    worklist: list[tuple[str, str]] = [(goal.predicate, adornment)]
    while worklist:
        key = worklist.pop()
        if key in analysis.adorned:
            continue
        predicate, pattern = key
        adorned_rules: list[AdornedRule] = []
        for rule in rules_by_head.get(predicate, []):
            adorned_rules.append(
                _adorn_rule(analyzed, rule, pattern, analysis, worklist)
            )
        analysis.adorned[key] = adorned_rules

    # Close the unrestricted set over original rules: a predicate kept
    # at its original name references original names in its bodies, so
    # its entire sub-cone must be present unrewritten too.
    closure: set[str] = set()
    for name in sorted(analysis.full):
        closure |= demanded_cone(analyzed.program, name)
    analysis.full = closure
    return analysis


def _adorn_rule(
    analyzed: "AnalyzedProgram",
    rule: ast.Rule,
    pattern: str,
    analysis: AdornmentAnalysis,
    worklist: list[tuple[str, str]],
) -> AdornedRule:
    bound = {
        term.name
        for term, flag in zip(rule.head.terms, pattern)
        if flag == "b" and isinstance(term, ast.Variable)
    }
    body_adornments: list[str | None] = []
    for literal in rule.body:
        if isinstance(literal, ast.Atom) and not literal.negated:
            adorn: str | None = None
            if (
                literal.predicate in analyzed.idb
                and literal.predicate not in analysis.pinned
            ):
                candidate = "".join(
                    "b"
                    if isinstance(term, ast.Constant)
                    or (isinstance(term, ast.Variable) and term.name in bound)
                    else "f"
                    for term in literal.terms
                )
                if "b" in candidate:
                    adorn = candidate
                    worklist.append((literal.predicate, candidate))
                else:
                    # Reached with no bindings at all: the whole relation
                    # is demanded — evaluate it unrewritten.
                    analysis.full.add(literal.predicate)
            elif literal.predicate in analysis.pinned:
                analysis.full.add(literal.predicate)
            body_adornments.append(adorn)
            bound |= literal.variables()
        elif isinstance(literal, ast.Atom):
            # Negated atoms read complete relations and bind nothing.
            if literal.predicate in analyzed.idb:
                analysis.full.add(literal.predicate)
            body_adornments.append(None)
        else:
            body_adornments.append(None)
    return AdornedRule(
        rule=rule, adornment=pattern, body_adornments=tuple(body_adornments)
    )


# --------------------------------------------------------------------------
# Features
# --------------------------------------------------------------------------


def _compute_features(
    program: ast.Program, strata: list[Stratum], arities: dict[str, int]
) -> ProgramFeatures:
    has_negation = any(rule.negative_atoms() for rule in program.rules)
    has_aggregation = any(rule.has_aggregation() for rule in program.rules)
    has_recursive_aggregation = any(
        stratum.recursive and rule.has_aggregation()
        for stratum in strata
        for rule in stratum.rules
    )
    has_mutual_recursion = any(len(stratum.predicates) > 1 and stratum.recursive for stratum in strata)
    has_nonlinear = False
    for stratum in strata:
        if not stratum.recursive:
            continue
        for rule in stratum.rules:
            same_stratum_atoms = [
                atom
                for atom in rule.positive_atoms()
                if atom.predicate in stratum.predicates
            ]
            if len(same_stratum_atoms) >= 2:
                has_nonlinear = True
    return ProgramFeatures(
        has_negation=has_negation,
        has_aggregation=has_aggregation,
        has_recursive_aggregation=has_recursive_aggregation,
        has_mutual_recursion=has_mutual_recursion,
        has_nonlinear_recursion=has_nonlinear,
        is_recursive=any(stratum.recursive for stratum in strata),
        max_arity=max(arities.values(), default=0),
        num_rules=len(program.rules),
        num_strata=len(strata),
    )

"""Lexer for the Datalog dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import DatalogError


class TokType(enum.Enum):
    IDENT = "ident"      # lowercase-leading: predicates and variables
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


_SYMBOLS = ("?-", ":-", "!=", "<=", ">=", "(", ")", ",", ".", "!", "=", "<", ">", "+", "-", "*", "_")


@dataclass(frozen=True)
class Tok:
    ttype: TokType
    text: str
    position: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.ttype is TokType.SYMBOL and self.text in symbols


def tokenize(text: str) -> list[Tok]:
    """Tokenize Datalog source; ``//`` and ``%`` start line comments."""
    tokens: list[Tok] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "%" or text.startswith("//", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            tokens.append(Tok(TokType.NUMBER, text[start:index], start))
            continue
        if char.isalpha():
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(Tok(TokType.IDENT, text[start:index], start))
            continue
        if char == "_" and index + 1 < length and (text[index + 1].isalnum() or text[index + 1] == "_"):
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(Tok(TokType.IDENT, text[start:index], start))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Tok(TokType.SYMBOL, symbol, index))
                index += len(symbol)
                break
        else:
            raise DatalogError(f"unexpected character {char!r} at offset {index}")
    tokens.append(Tok(TokType.END, "", length))
    return tokens

"""Datalog frontend: parsing, validation, and stratification.

The dialect is pure Datalog extended with stratified negation and
aggregation (MIN/MAX/SUM/COUNT/AVG in rule heads), the language fragment
of the paper's Section 3.
"""

from repro.datalog.analyzer import AnalyzedProgram, ProgramFeatures, analyze_program
from repro.datalog.convergence import ConvergenceIssue, check_convergence
from repro.datalog.ast import (
    AggTerm,
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    Variable,
    Wildcard,
)
from repro.datalog.parser import parse_program, parse_rule

__all__ = [
    "AggTerm",
    "Atom",
    "Comparison",
    "Constant",
    "Program",
    "Rule",
    "Variable",
    "Wildcard",
    "parse_program",
    "parse_rule",
    "analyze_program",
    "AnalyzedProgram",
    "ProgramFeatures",
    "check_convergence",
    "ConvergenceIssue",
]

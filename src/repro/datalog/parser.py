"""Recursive-descent parser for the Datalog dialect.

Conventions (matching the paper's notation, Section 3.1): variables are
lower-case identifiers like ``x, y, d1``; predicates are identifiers in
atom position; ``_`` is an anonymous variable; negation is written ``!``
or ``not``; aggregation appears only in head terms as ``AGG(expr)``.
"""

from __future__ import annotations

from repro.common.errors import DatalogError
from repro.datalog import ast
from repro.datalog.lexer import Tok, TokType, tokenize


class _Parser:
    def __init__(self, tokens: list[Tok]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self, offset: int = 0) -> Tok:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Tok:
        token = self._tokens[self._index]
        if token.ttype is not TokType.END:
            self._index += 1
        return token

    def _expect_symbol(self, *symbols: str) -> Tok:
        token = self._peek()
        if not token.is_symbol(*symbols):
            raise DatalogError(
                f"expected {' or '.join(symbols)}, found {token.text!r} "
                f"at offset {token.position}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.ttype is not TokType.IDENT:
            raise DatalogError(
                f"expected identifier, found {token.text!r} at offset {token.position}"
            )
        self._advance()
        return token.text

    def _accept_symbol(self, *symbols: str) -> bool:
        if self._peek().is_symbol(*symbols):
            self._advance()
            return True
        return False

    # -- program --------------------------------------------------------------

    def parse_program(self, name: str) -> ast.Program:
        program = ast.Program(name=name)
        while self._peek().ttype is not TokType.END:
            if self._peek().is_symbol("?-"):
                program.queries.append(self.parse_query())
            else:
                program.rules.append(self.parse_rule())
        return program

    def parse_query(self) -> ast.Atom:
        """``?- pred(t1, ..., tk).`` — a point-query goal atom."""
        self._expect_symbol("?-")
        if self._peek().is_symbol("!") or (
            self._peek().text == "not" and self._peek(1).ttype is TokType.IDENT
        ):
            raise DatalogError(
                f"goal at offset {self._peek().position} may not be negated"
            )
        goal = self._parse_atom(in_head=False)
        self._expect_symbol(".")
        return goal

    def parse_rule(self) -> ast.Rule:
        head = self._parse_atom(in_head=True)
        if head.negated:
            raise DatalogError(f"rule head {head} may not be negated")
        body: list[ast.BodyLiteral] = []
        if self._accept_symbol(":-"):
            body.append(self._parse_body_literal())
            while self._accept_symbol(","):
                body.append(self._parse_body_literal())
        self._expect_symbol(".")
        return ast.Rule(head=head, body=tuple(body))

    # -- literals -----------------------------------------------------------------

    def _parse_body_literal(self) -> ast.BodyLiteral:
        token = self._peek()
        if token.is_symbol("!"):
            self._advance()
            atom = self._parse_atom(in_head=False)
            return ast.Atom(atom.predicate, atom.terms, negated=True)
        if token.ttype is TokType.IDENT and token.text == "not" and self._peek(1).ttype is TokType.IDENT:
            self._advance()
            atom = self._parse_atom(in_head=False)
            return ast.Atom(atom.predicate, atom.terms, negated=True)
        # Atom vs comparison: an atom is IDENT followed by "(".
        if token.ttype is TokType.IDENT and self._peek(1).is_symbol("("):
            return self._parse_atom(in_head=False)
        return self._parse_comparison()

    def _parse_atom(self, in_head: bool) -> ast.Atom:
        predicate = self._expect_ident()
        self._expect_symbol("(")
        terms: list[ast.BodyTerm | ast.HeadTerm] = []
        while True:
            terms.append(self._parse_term(in_head))
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        return ast.Atom(predicate, tuple(terms))

    def _parse_term(self, in_head: bool) -> ast.BodyTerm | ast.HeadTerm:
        token = self._peek()
        if token.is_symbol("_"):
            if in_head:
                raise DatalogError("wildcard _ is not allowed in a rule head")
            self._advance()
            return ast.Wildcard()
        if token.ttype is TokType.IDENT and token.text.upper() in ast.AGGREGATE_FUNCS:
            if self._peek(1).is_symbol("("):
                if not in_head:
                    raise DatalogError("aggregation is only allowed in rule heads")
                func = self._advance().text.upper()
                self._expect_symbol("(")
                expr = self._parse_scalar()
                self._expect_symbol(")")
                return ast.AggTerm(func, expr)
        if in_head:
            # Heads allow arithmetic-free terms only: variable or constant.
            if token.ttype is TokType.NUMBER or token.is_symbol("-"):
                return ast.Constant(self._parse_signed_number())
            return ast.Variable(self._expect_ident())
        if token.ttype is TokType.NUMBER or token.is_symbol("-"):
            return ast.Constant(self._parse_signed_number())
        return ast.Variable(self._expect_ident())

    def _parse_comparison(self) -> ast.Comparison:
        left = self._parse_scalar()
        token = self._peek()
        if not token.is_symbol("=", "!=", "<", "<=", ">", ">="):
            raise DatalogError(
                f"expected comparison operator, found {token.text!r} "
                f"at offset {token.position}"
            )
        self._advance()
        right = self._parse_scalar()
        return ast.Comparison(token.text, left, right)

    # -- scalar expressions -------------------------------------------------------------

    def _parse_scalar(self) -> ast.ScalarExpr:
        left = self._parse_scalar_primary()
        while self._peek().is_symbol("+", "-", "*"):
            op = self._advance().text
            right = self._parse_scalar_primary()
            left = ast.Arithmetic(op, left, right)
        return left

    def _parse_scalar_primary(self) -> ast.ScalarExpr:
        token = self._peek()
        if token.ttype is TokType.NUMBER or token.is_symbol("-"):
            return ast.Constant(self._parse_signed_number())
        if token.is_symbol("("):
            self._advance()
            expr = self._parse_scalar()
            self._expect_symbol(")")
            return expr
        return ast.Variable(self._expect_ident())

    def _parse_signed_number(self) -> int:
        negative = self._accept_symbol("-")
        token = self._peek()
        if token.ttype is not TokType.NUMBER:
            raise DatalogError(f"expected number, found {token.text!r}")
        self._advance()
        value = int(token.text)
        return -value if negative else value


def parse_program(source: str, name: str = "program") -> ast.Program:
    """Parse a full Datalog program from source text."""
    return _Parser(tokenize(source)).parse_program(name)


def parse_rule(source: str) -> ast.Rule:
    """Parse a single rule (must end with ``.``)."""
    parser = _Parser(tokenize(source))
    rule = parser.parse_rule()
    trailing = parser._peek()
    if trailing.ttype is not TokType.END:
        raise DatalogError(f"trailing input {trailing.text!r}")
    return rule


def parse_goal(source: str) -> ast.Atom:
    """Parse a single point-query goal like ``tc(5, x)``.

    The ``?-`` prefix and trailing ``.`` are both optional, so the CLI
    can accept ``--query "tc(5, x)"`` as well as full ``?- tc(5, x).``
    query syntax.
    """
    parser = _Parser(tokenize(source))
    if parser._peek().is_symbol("?-"):
        parser._advance()
    if parser._peek().is_symbol("!") or (
        parser._peek().text == "not" and parser._peek(1).ttype is TokType.IDENT
    ):
        raise DatalogError("goal may not be negated")
    goal = parser._parse_atom(in_head=False)
    parser._accept_symbol(".")
    trailing = parser._peek()
    if trailing.ttype is not TokType.END:
        raise DatalogError(f"trailing input {trailing.text!r} after goal")
    return goal

"""Magic-set rewrite: evaluate only the demanded cone of a point query.

Given an analyzed program and a goal like ``?- tc(5, x).``, the rewrite
emits a new pure-Datalog program in which:

* each demanded (predicate, adornment) pair becomes an adorned copy
  ``<pred>_<adornment>`` of its rules, guarded by a magic atom;
* each adorned copy is fed by magic predicates ``m_<pred>_<adornment>``
  holding exactly the bindings demanded for it — seeded by a single
  ground fact carrying the goal's bound constants, and propagated by
  guard rules derived from each rule's left-to-right SIPS prefix;
* predicates the restriction must not touch (aggregation heads,
  predicates read under negation, and anything reached with an all-free
  pattern) keep their original names and original rules, so their
  relations are complete wherever they are read.

The rewritten program goes through the ordinary analyzer → compiler →
semi-naive pipeline unchanged; its answer set — the adorned goal
relation filtered by the goal pattern — is tuple-identical to filtering
a full materialization of the original program by the same pattern.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.common.errors import DatalogError
from repro.datalog import ast
from repro.datalog.analyzer import (
    AdornedRule,
    AnalyzedProgram,
    adorn_program,
    analyze_program,
    goal_adornment,
)


def adorned_name(predicate: str, adornment: str) -> str:
    """The adorned copy of ``predicate`` under ``adornment``."""
    return f"{predicate}_{adornment}"


def magic_name(predicate: str, adornment: str) -> str:
    """The magic (demand) predicate feeding an adorned copy."""
    return f"m_{predicate}_{adornment}"


@dataclass
class MagicRewrite:
    """The output of :func:`magic_rewrite`.

    ``program`` is the program to evaluate: the demand-rewritten one, or
    the original unrewritten program when ``rewritten`` is False (all-free
    goal, EDB goal, or a pinned goal predicate — ``reason`` says which).
    ``answer_predicate`` is the relation whose tuples, filtered through
    :func:`filter_answers`, form the goal's answer set.
    """

    goal: ast.Atom
    adornment: str
    program: ast.Program
    answer_predicate: str
    rewritten: bool
    reason: str | None = None
    magic_predicates: tuple[str, ...] = ()
    #: Original-program predicates inside the demanded cone (pricing).
    cone: tuple[str, ...] = ()
    #: Cone predicates pinned to unrestricted evaluation, with reasons.
    pinned: dict[str, str] | None = None

    def cone_fraction(self, analyzed: AnalyzedProgram) -> float:
        """Fraction of the program's IDB the rewrite actually demands.

        A crude but deterministic cone-size estimate for admission
        pricing: the share of IDB predicates demanded at all, shrunk by
        the bound positions of the goal (each bound column of the goal
        cuts the demanded seed set to a single binding). Clamped to
        (0, 1]; degenerate rewrites always price at 1.0.
        """
        if not self.rewritten:
            return 1.0
        idb_total = max(1, len(analyzed.idb))
        demanded = len([name for name in self.cone if name in analyzed.idb])
        bound = self.adornment.count("b")
        fraction = (demanded / idb_total) / (1 + bound)
        return max(0.01, min(1.0, fraction))


def magic_rewrite(
    program: AnalyzedProgram | ast.Program, goal: ast.Atom
) -> MagicRewrite:
    """Rewrite ``program`` so evaluation covers only what ``goal`` demands."""
    analyzed = (
        program
        if isinstance(program, AnalyzedProgram)
        else analyze_program(program)
    )
    analysis = adorn_program(analyzed, goal)
    if analysis.degenerate is not None:
        return MagicRewrite(
            goal=goal,
            adornment=analysis.adornment,
            program=analyzed.program,
            answer_predicate=goal.predicate,
            rewritten=False,
            reason=analysis.degenerate,
            cone=tuple(sorted(analyzed.idb)),
            pinned=dict(analysis.pinned),
        )

    taken = analyzed.program.predicates()
    magic_predicates: list[str] = []
    for predicate, adornment in sorted(analysis.adorned):
        for name in (
            adorned_name(predicate, adornment),
            magic_name(predicate, adornment),
        ):
            if name in taken:
                raise DatalogError(
                    f"magic rewrite name collision: {name!r} already exists "
                    f"in program {analyzed.program.name!r}"
                )
        magic_predicates.append(magic_name(predicate, adornment))

    rules: list[ast.Rule] = []
    seen: set[str] = set()

    def emit(rule: ast.Rule) -> None:
        text = str(rule)
        if text not in seen:
            seen.add(text)
            rules.append(rule)

    # Seed: the goal's bound constants, as one ground magic fact.
    seed_terms = tuple(
        term
        for term, flag in zip(goal.terms, analysis.adornment)
        if flag == "b"
    )
    emit(
        ast.Rule(
            head=ast.Atom(
                magic_name(goal.predicate, analysis.adornment), seed_terms
            )
        )
    )

    for key in sorted(analysis.adorned):
        for adorned_rule in analysis.adorned[key]:
            for rewritten in _rewrite_rule(adorned_rule, analysis.pinned):
                emit(rewritten)

    # Unrestricted closure: original rules for every predicate that must
    # stay complete (pinned, or reached with no bindings).
    for rule in analyzed.program.rules:
        if rule.head.predicate in analysis.full:
            emit(rule)

    rewritten_program = ast.Program(
        rules=rules,
        name=f"{analyzed.program.name}@{goal.predicate}^{analysis.adornment}",
    )
    cone = {goal.predicate} | analysis.full
    cone.update(predicate for predicate, _ in analysis.adorned)
    return MagicRewrite(
        goal=goal,
        adornment=analysis.adornment,
        program=rewritten_program,
        answer_predicate=adorned_name(goal.predicate, analysis.adornment),
        rewritten=True,
        magic_predicates=tuple(magic_predicates),
        cone=tuple(sorted(cone)),
        pinned=dict(analysis.pinned),
    )


def _rewrite_rule(
    adorned: AdornedRule, pinned: dict[str, str]
) -> list[ast.Rule]:
    """One adorned rule → its guarded copy plus magic guard rules."""
    rule = adorned.rule
    pattern = adorned.adornment
    magic_atom = ast.Atom(
        magic_name(rule.head.predicate, pattern),
        tuple(
            term for term, flag in zip(rule.head.terms, pattern) if flag == "b"
        ),
    )
    out: list[ast.Rule] = []
    new_body: list[ast.BodyLiteral] = [magic_atom]
    # SIPS prefix usable in magic-rule bodies: positive atoms (rewritten
    # names) and comparisons already fully bound at their position.
    prefix: list[ast.BodyLiteral] = [magic_atom]
    bound = {
        term.name
        for term, flag in zip(rule.head.terms, pattern)
        if flag == "b" and isinstance(term, ast.Variable)
    }
    for literal, literal_adornment in zip(rule.body, adorned.body_adornments):
        if isinstance(literal, ast.Atom) and not literal.negated:
            if literal_adornment is not None:
                demanded = tuple(
                    term
                    for term, flag in zip(literal.terms, literal_adornment)
                    if flag == "b"
                )
                guard = ast.Rule(
                    head=ast.Atom(
                        magic_name(literal.predicate, literal_adornment),
                        demanded,
                    ),
                    body=tuple(prefix),
                )
                # Skip tautologies (m_p_a :- m_p_a, the self-feeding guard
                # a left-linear first subgoal produces).
                if not (
                    len(guard.body) == 1 and guard.body[0] == guard.head
                ):
                    out.append(guard)
                rewritten_atom = ast.Atom(
                    adorned_name(literal.predicate, literal_adornment),
                    literal.terms,
                )
            else:
                rewritten_atom = literal
            new_body.append(rewritten_atom)
            prefix.append(rewritten_atom)
            bound |= literal.variables()
        elif isinstance(literal, ast.Atom):
            new_body.append(literal)
        else:
            new_body.append(literal)
            if literal.variables() <= bound:
                prefix.append(literal)
    out.append(
        ast.Rule(
            head=ast.Atom(
                adorned_name(rule.head.predicate, pattern), rule.head.terms
            ),
            body=tuple(new_body),
        )
    )
    return out


# --------------------------------------------------------------------------
# Answer extraction
# --------------------------------------------------------------------------


def matches_goal(row: tuple[int, ...], goal: ast.Atom) -> bool:
    """Does ``row`` satisfy the goal pattern?

    Constants must match positionally; repeated variables must carry
    equal values; wildcards and first-occurrence variables match
    anything.
    """
    seen: dict[str, int] = {}
    for value, term in zip(row, goal.terms):
        if isinstance(term, ast.Constant):
            if value != term.value:
                return False
        elif isinstance(term, ast.Variable):
            if term.name in seen:
                if seen[term.name] != value:
                    return False
            else:
                seen[term.name] = value
    return True


def filter_answers(
    rows: Iterable[tuple[int, ...]], goal: ast.Atom
) -> set[tuple[int, ...]]:
    """The goal's answer set: tuples of its relation matching the pattern.

    Applied to the adorned goal relation of a rewritten evaluation and to
    the goal relation of a full materialization alike — the two must be
    tuple-identical (the rewrite's correctness bar).
    """
    return {tuple(row) for row in rows if matches_goal(tuple(row), goal)}


def answer_identity(
    rewritten_rows: Iterable[tuple[int, ...]],
    full_rows: Iterable[tuple[int, ...]],
    goal: ast.Atom,
) -> bool:
    """Check the correctness bar: rewritten answers == post-filtered full."""
    return filter_answers(rewritten_rows, goal) == filter_answers(full_rows, goal)


__all__ = [
    "MagicRewrite",
    "adorned_name",
    "answer_identity",
    "filter_answers",
    "goal_adornment",
    "magic_name",
    "magic_rewrite",
    "matches_goal",
]

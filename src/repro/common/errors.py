"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A table/column was not found, or a name collides with an existing one."""


class SqlSyntaxError(ReproError):
    """The mini-SQL frontend could not tokenize or parse a statement."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical plan is malformed or cannot be bound against the catalog."""


class EngineError(ReproError):
    """A physical operator failed during execution."""


class OutOfMemoryError(EngineError):
    """The (modeled) memory budget was exceeded during execution.

    Mirrors the OOM failures the paper reports for baseline systems on the
    dense Gn-p workloads.
    """


class EvaluationTimeout(EngineError):
    """The (modeled) evaluation exceeded its time budget (paper: >10h runs)."""


class DatalogError(ReproError):
    """A Datalog program failed to parse or validate."""


class StratificationError(DatalogError):
    """Negation/aggregation through recursion: no valid stratification exists."""


class UnsupportedFeatureError(ReproError):
    """An engine was asked to evaluate a program outside its feature set.

    The baseline engines reproduce the feature envelopes of Table 1 (e.g.
    BigDatalog rejects mutual recursion, Souffle rejects recursive
    aggregation); they signal that by raising this error.
    """

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries. Errors raised
*during evaluation* additionally derive from :class:`RecStepError`, which
carries structured context (stratum, iteration, offending table, modeled
bytes) so failure reports can say exactly where a run died instead of
re-parsing a message string.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A table/column was not found, or a name collides with an existing one."""


class SqlSyntaxError(ReproError):
    """The mini-SQL frontend could not tokenize or parse a statement."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical plan is malformed or cannot be bound against the catalog."""


class EngineError(ReproError):
    """A physical operator failed during execution."""


class RecStepError(EngineError):
    """An evaluation-time failure with structured context.

    ``context`` holds whatever the raise site knows: ``stratum``,
    ``iteration``, ``table``, ``modeled_bytes``, ``budget``, ``site`` —
    keys are optional and accumulate as the error unwinds (outer layers
    call :meth:`add_context` to attach the position the interpreter was
    at). ``to_dict`` renders the whole thing machine-readable for run
    reports.
    """

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.message = message
        self.context: dict = {k: v for k, v in context.items() if v is not None}

    def add_context(self, **context) -> "RecStepError":
        """Attach additional context keys (existing keys win)."""
        for key, value in context.items():
            if value is not None and key not in self.context:
                self.context[key] = value
        return self

    def to_dict(self) -> dict:
        """Machine-readable form for run reports."""
        return {"error": type(self).__name__, "message": self.message, **self.context}

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.message} [{detail}]"


class KeyPackingError(EngineError):
    """Packed join keys were used in a way that makes codes incomparable.

    Raised when a compact concatenated key packed with one call's local
    offsets is compared against a key packed by a *different* call (their
    codes live in unrelated coordinate systems), or when a value falls
    outside the explicit domain a stable codec was built with.
    """


class OutOfMemoryError(RecStepError):
    """The (modeled) memory budget was exceeded during execution.

    Mirrors the OOM failures the paper reports for baseline systems on the
    dense Gn-p workloads.
    """


class EvaluationTimeout(RecStepError):
    """The (modeled) evaluation exceeded its time budget (paper: >10h runs)."""


class EvaluationCancelled(RecStepError):
    """A cooperative cancellation/deadline token fired at a phase boundary.

    Unlike :class:`EvaluationTimeout` (the hard budget tripping mid-
    operation), this is raised only at stratum/iteration boundaries, so
    the interpreter state is consistent and a structured partial-result
    report can be assembled.
    """


class DivergenceGuardTripped(RecStepError):
    """A runtime divergence guard budget was exceeded mid-evaluation.

    Raised at iteration boundaries by :class:`~repro.resilience.guards.
    RuntimeGuard` when the loop exceeds ``max_iterations`` or
    ``max_total_rows`` without converging. Context carries ``kind``
    (which budget tripped), ``observed``, ``budget``, and the loop
    position, so the partial-result report mirrors a deadline trip but
    stays distinguishable via ``failure["kind"]``.
    """


class TransientFaultError(RecStepError):
    """An injected, retryable fault (fault-injection harness only).

    Never raised in production paths: only the deterministic fault
    injector produces these, and the retry layer is expected to absorb
    them. One escaping to a caller means retries were disabled or
    exhausted (see :class:`FaultRetriesExhausted`).
    """


class TransientWorkerError(TransientFaultError):
    """A simulated per-task worker failure inside a parallel phase."""


class TransientStorageError(TransientFaultError):
    """A simulated transient storage/allocation error in a Database op."""


class FaultRetriesExhausted(RecStepError):
    """The retry policy gave up on a repeatedly faulting operation."""


class SpillError(RecStepError):
    """A spilled segment file is torn, corrupt, or unreadable.

    Raised only after the segment has been quarantined (renamed aside, so
    it can never be silently re-read) — the spill tier's contract is
    *slower, never wrong*: data that fails its checksum is surfaced as a
    structured storage failure, and recovery goes through checkpoint
    resume, not through trusting the bytes.
    """


class DatalogError(ReproError):
    """A Datalog program failed to parse or validate."""


class StratificationError(DatalogError):
    """Negation/aggregation through recursion: no valid stratification exists."""


class UnsupportedFeatureError(ReproError):
    """An engine was asked to evaluate a program outside its feature set.

    The baseline engines reproduce the feature envelopes of Table 1 (e.g.
    BigDatalog rejects mutual recursion, Souffle rejects recursive
    aggregation); they signal that by raising this error.
    """

"""Deterministic random number generation helpers.

All dataset generators take integer seeds and derive independent NumPy
Generators from them, so every experiment in the benchmark harness is
bit-reproducible across runs.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0x5EC5ced


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy Generator seeded deterministically.

    ``None`` maps to the library-wide default seed (still deterministic);
    pass an explicit seed to vary the stream.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_seed(seed: int, *salts: int | str) -> int:
    """Derive a child seed from ``seed`` and a sequence of salts.

    Used when one experiment needs several independent streams (e.g. one
    per generated dataset) without the streams overlapping.
    """
    mask = 0xFFFFFFFFFFFFFFFF
    h = seed & mask
    for salt in salts:
        if isinstance(salt, str):
            # Deterministic string hash (built-in hash is salted per process).
            salt_value = 0
            for char in salt:
                salt_value = (salt_value * 131 + ord(char)) & mask
        else:
            salt_value = salt & mask
        # SplitMix64-style mixing keeps child streams decorrelated.
        h = (h + 0x9E3779B97F4A7C15 + salt_value) & mask
        z = h
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        h = (z ^ (z >> 31)) & mask
    return h & 0x7FFFFFFFFFFFFFFF

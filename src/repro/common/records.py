"""Result record types shared by engines, the harness, and the benches."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceSample:
    """One sample on the simulated time axis."""

    time: float
    value: float


@dataclass
class Trace:
    """A named time series (memory usage, CPU utilization, delta sizes...)."""

    name: str
    samples: list[TraceSample] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.samples.append(TraceSample(time, value))

    def peak(self) -> float:
        if not self.samples:
            return 0.0
        return max(sample.value for sample in self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(sample.value for sample in self.samples) / len(self.samples)

    def final(self) -> float:
        if not self.samples:
            return 0.0
        return self.samples[-1].value

    def as_tuples(self) -> list[tuple[float, float]]:
        return [(sample.time, sample.value) for sample in self.samples]


@dataclass
class EvaluationResult:
    """Outcome of evaluating one Datalog program on one engine.

    Attributes:
        engine: engine display name ("RecStep", "Souffle", ...).
        program: program name ("TC", "CSPA", ...).
        dataset: dataset label ("G1K", "httpd", ...).
        relations: fixpoint contents, relation name -> sorted tuple set size
            is available via ``sizes``; full contents under ``tuples``.
        sim_seconds: simulated elapsed time (see common.timing).
        iterations: number of semi-naive iterations across all strata.
        peak_memory_bytes: peak of the modeled memory footprint.
        memory_trace: memory footprint over simulated time.
        cpu_trace: CPU utilization (0..1) over simulated time.
        status: "ok", "oom", "timeout", "cancelled", "deadline",
            "guard", "fault", or "unsupported".
        unsupported_reason: set when status is "unsupported".
        failure: structured context of the error that ended a non-ok run
            (``RecStepError.to_dict()``: error class, message, stratum,
            iteration, modeled bytes...), always carrying a ``kind``
            discriminator ("deadline", "max_iterations", "oom", ...).
            None for ok runs.
        resilience: recap of resilience activity (faults injected per
            site, degradations taken, checkpoints written). None when no
            resilience feature was engaged.
    """

    engine: str
    program: str
    dataset: str
    tuples: dict[str, "object"] = field(default_factory=dict)
    sim_seconds: float = 0.0
    iterations: int = 0
    peak_memory_bytes: int = 0
    #: Peak of the transient (operator scratch) component alone — the
    #: share of the peak that vanishes between statements.
    peak_transient_bytes: int = 0
    memory_trace: Trace | None = None
    cpu_trace: Trace | None = None
    status: str = "ok"
    unsupported_reason: str = ""
    detail: dict[str, float] = field(default_factory=dict)
    #: Populated when the engine ran with profiling enabled; holds a
    #: repro.obs.report.ProfileReport (typed loosely to keep this module
    #: dependency-free).
    profile: object | None = None
    #: Host wall-clock seconds the evaluation took (None when not measured).
    wall_seconds: float | None = None
    #: Structured failure context for non-ok runs (RecStepError.to_dict()).
    failure: dict | None = None
    #: Resilience recap: fault ledger, degradations, checkpoint activity.
    resilience: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def sizes(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.tuples.items()}

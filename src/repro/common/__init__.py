"""Shared infrastructure: errors, RNG helpers, timing, and record types."""

from repro.common.errors import (
    CatalogError,
    DatalogError,
    EngineError,
    EvaluationTimeout,
    OutOfMemoryError,
    PlanError,
    ReproError,
    SqlSyntaxError,
    StratificationError,
    UnsupportedFeatureError,
)

__all__ = [
    "ReproError",
    "CatalogError",
    "EngineError",
    "OutOfMemoryError",
    "EvaluationTimeout",
    "PlanError",
    "SqlSyntaxError",
    "DatalogError",
    "StratificationError",
    "UnsupportedFeatureError",
]

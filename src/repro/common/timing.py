"""Simulated-clock utilities.

The experiments in the paper ran on a 20-core server; this host has one
core, so elapsed *wall* time cannot reproduce the paper's parallel-scaling
figures. Instead, every engine in this repository charges work to a
:class:`SimClock` in abstract cost units ("simulated seconds"). Tuples are
always computed exactly; only time is modeled. See DESIGN.md, Substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    ``advance`` adds elapsed simulated seconds; ``now`` reads the clock.
    Engines share one clock per evaluation so that memory/utilization
    samples from different components interleave on a common time axis.
    """

    _now: float = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def reset(self) -> None:
        self._now = 0.0


@dataclass
class Stopwatch:
    """Accumulates named simulated-time buckets (per-operator accounting)."""

    buckets: dict[str, float] = field(default_factory=dict)

    def charge(self, bucket: str, delta: float) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + delta

    def total(self) -> float:
        return sum(self.buckets.values())

    def merged(self, other: "Stopwatch") -> "Stopwatch":
        merged = Stopwatch(dict(self.buckets))
        for bucket, delta in other.buckets.items():
            merged.charge(bucket, delta)
        return merged

"""The iteration-persistent join-state cache.

Semi-naive evaluation re-joins Δ against the *full* relations every
iteration, and full tables only ever grow (append-only) between the
iterations of a stratum. This module exploits that: the packed-key index
over a full-side join input — stable CCK codes (or a
:class:`~repro.engine.kernels.RowDictionary` when the key is too wide to
pack) kept sorted alongside the originating row positions — is built
once, then *extended* with each iteration's Δ slice instead of rebuilt.
Per-iteration build cost becomes proportional to |Δ|, not |full|.

Validity is proven with the table's ``epoch`` counter (bumped on
rewrites, not appends): an entry whose epoch no longer matches describes
a previous generation of the table and is evicted. Stratum boundaries
invalidate everything (working tables are dropped); a checkpoint resume
rehydrates the full-table entries so the resumed run joins at cached
speed from its first iteration.

Everything is metered: index builds/extensions charge the BUILD phase on
the rows indexed, the resident index bytes are reported into the memory
ledger as base (not transient) memory, and every acquire outcome bumps a
``join_cache.*`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import kernels
from repro.engine.executor import BUILD_PHASE, COST_BUILD, PARTITIONED_BUILD_PHASE
from repro.storage.stats import ColumnDomain, observed_domain

#: acquire() outcome → counter name.
COUNTER_HIT = "join_cache.hit"
COUNTER_MISS = "join_cache.miss"
COUNTER_EXTEND = "join_cache.extend"
COUNTER_EVICT = "join_cache.evict"
COUNTER_EXTEND_ROWS = "join_cache.extend_rows"

#: Modeled bytes per indexed row: the sorted code plus its row position.
INDEX_ROW_BYTES = 16


@dataclass
class JoinIndexEntry:
    """A persistent sorted-code index over one table's key columns."""

    table: str
    key_columns: tuple[str, ...]
    #: Exactly one of codec/dictionary is set: packable keys use the
    #: domain-stable CCK codec, wide keys the incremental row dictionary.
    codec: kernels.KeyCodec | None
    dictionary: kernels.RowDictionary | None
    sorted_codes: np.ndarray
    sorted_positions: np.ndarray
    rows_indexed: int
    epoch: int
    #: ``table.version`` at the last build/extend/hit. Backstop for the
    #: epoch check: a mutation that preserves the epoch and the row count
    #: (an in-place rewrite that slipped past ``replace_contents``) still
    #: bumps ``version``, and a same-size entry whose synced version no
    #: longer matches is describing different rows — evict, don't hit.
    synced_version: int = -1

    def memory_bytes(self) -> int:
        total = self.rows_indexed * INDEX_ROW_BYTES
        if self.dictionary is not None:
            total += self.dictionary.memory_bytes()
        return total

    def probe_codes(self, columns: list[np.ndarray]) -> np.ndarray:
        """Encode probe-side key columns into this index's code space.

        Probe values the index has never seen map to codes that match
        nothing (CCK: out-of-domain → -1; dictionary: transient codes
        beyond every stored one), so probing is always safe.
        """
        if self.dictionary is not None:
            matrix = (
                np.column_stack(columns)
                if columns[0].shape[0]
                else np.empty((0, len(columns)), dtype=np.int64)
            )
            return self.dictionary.encode(matrix, extend=False)
        return self.codec.pack_probe(columns)


class JoinStateCache:
    """(table, key columns) → :class:`JoinIndexEntry`, epoch-validated."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: dict[tuple[str, tuple[str, ...]], JoinIndexEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        return sum(entry.memory_bytes() for entry in self._entries.values())

    def extension_estimate(self, catalog, table_name: str, key_columns) -> int:
        """Rows an acquire would have to index right now (0 = pure hit).

        The optimizer's build-cost input for a cached join: a valid entry
        costs only the un-indexed tail, a missing/invalid one the whole
        table.
        """
        table = catalog.get_table(table_name)
        entry = self._entries.get((table_name, tuple(key_columns)))
        if entry is None or self._is_stale(entry, table):
            return table.num_rows
        return table.num_rows - entry.rows_indexed

    def acquire(self, ctx, table_name: str, key_columns) -> tuple[JoinIndexEntry, str]:
        """Return a valid index for (table, key columns), building/extending
        as needed; the second element is the outcome ("hit", "miss",
        "extend", "rebuild") for span attribution.
        """
        table = ctx.catalog.get_table(table_name)
        key = (table_name, tuple(key_columns))
        counters = ctx.profiler.counters
        entry = self._entries.get(key)
        rebuilt = False
        if entry is not None and self._is_stale(entry, table):
            counters.inc(COUNTER_EVICT)
            del self._entries[key]
            entry = None
            rebuilt = True
        if entry is None:
            entry = self._build(ctx, table, key[1])
            self._entries[key] = entry
            counters.inc(COUNTER_MISS)
            event = "rebuild" if rebuilt else "miss"
        elif entry.rows_indexed < table.num_rows:
            extended = self._extend(ctx, table, entry)
            if extended:
                counters.inc(COUNTER_EXTEND)
                event = "extend"
            else:
                # Δ escaped the codec's domains: rebuild with wider ones.
                counters.inc(COUNTER_EVICT)
                entry = self._build(ctx, table, key[1])
                self._entries[key] = entry
                counters.inc(COUNTER_MISS)
                event = "rebuild"
        else:
            counters.inc(COUNTER_HIT)
            event = "hit"
        self._refresh_base(ctx)
        return entry, event

    @staticmethod
    def _is_stale(entry: JoinIndexEntry, table) -> bool:
        """True when the entry describes a previous generation of the table.

        An epoch mismatch or a shrink is a rewrite; the version backstop
        catches in-place rewrites that preserved both the epoch and the
        row count (rows_indexed == num_rows but the table mutated since
        the entry last synced — growth is fine, that's the extend path).
        """
        return (
            entry.epoch != table.epoch
            or entry.rows_indexed > table.num_rows
            or (
                entry.rows_indexed == table.num_rows
                and entry.synced_version != table.version
            )
        )

    def invalidate_all(self) -> int:
        """Drop every entry (stratum boundary); returns the eviction count."""
        evicted = len(self._entries)
        self._entries.clear()
        return evicted

    def note_rewrite(self, table_name: str) -> int:
        """Evict entries of a rewritten/dropped table; returns the count.

        The epoch check in :meth:`acquire` would catch these lazily; the
        eager eviction releases the modeled index memory immediately.
        """
        stale = [key for key in self._entries if key[0] == table_name]
        for key in stale:
            del self._entries[key]
        return len(stale)

    # -- internals ---------------------------------------------------------

    def _refresh_base(self, ctx) -> None:
        # Index state is resident, not transient: it survives the call.
        ctx.metrics.set_base_bytes(
            ctx.catalog.total_memory_bytes() + self.memory_bytes()
        )

    def _key_matrix(self, data: np.ndarray, indices: list[int]) -> np.ndarray:
        if data.shape[0] == 0:
            return np.empty((0, len(indices)), dtype=np.int64)
        return np.ascontiguousarray(data[:, indices])

    def _charge_build(self, ctx, rows: int) -> None:
        scratch = rows * INDEX_ROW_BYTES
        ctx.metrics.allocate_transient(scratch)
        # Pack + sort of an extension batch is chunk-local work with no
        # shared hash table; under partitioned execution it is charged at
        # the partitioned-build contention like every other build.
        ctx.charge_index_pass(
            BUILD_PHASE, PARTITIONED_BUILD_PHASE, rows * COST_BUILD, rows
        )
        ctx.metrics.release_transient(scratch)

    def _codec_for(self, ctx, table, columns: list[np.ndarray], names) -> kernels.KeyCodec:
        domains: list[ColumnDomain] = []
        for name, column in zip(names, columns):
            observed = observed_domain(column)
            domains.append(
                ctx.catalog.widen_domain(table.name, name, observed.low, observed.high)
            )
        return kernels.KeyCodec(_with_headroom(domains))

    def _build(self, ctx, table, key_columns: tuple[str, ...]) -> JoinIndexEntry:
        indices = [table.column_index(name) for name in key_columns]
        columns_matrix = self._key_matrix(table.data(), indices)
        columns = [columns_matrix[:, i] for i in range(columns_matrix.shape[1])]
        n = table.num_rows
        self._charge_build(ctx, n)
        codec = self._codec_for(ctx, table, columns, key_columns)
        dictionary = None
        if codec.packable:
            codes = codec.pack(columns)
        else:
            codec = None
            dictionary = kernels.RowDictionary(len(key_columns))
            codes = dictionary.encode(columns_matrix, extend=True)
        order = np.argsort(codes, kind="stable")
        return JoinIndexEntry(
            table=table.name,
            key_columns=key_columns,
            codec=codec,
            dictionary=dictionary,
            sorted_codes=np.ascontiguousarray(codes[order]),
            sorted_positions=order.astype(np.int64),
            rows_indexed=n,
            epoch=table.epoch,
            synced_version=table.version,
        )

    def _extend(self, ctx, table, entry: JoinIndexEntry) -> bool:
        """Index the appended tail; False when the codec must be rebuilt."""
        indices = [table.column_index(name) for name in entry.key_columns]
        # tail_data never faults in a spilled prefix: appends land in the
        # resident region, so the un-indexed tail is in memory by
        # construction and a cold spilled table can stay on disk.
        tail = table.tail_data(entry.rows_indexed)
        tail_matrix = self._key_matrix(tail, indices)
        columns = [tail_matrix[:, i] for i in range(tail_matrix.shape[1])]
        if entry.codec is not None and not entry.codec.fits(columns):
            return False
        for name, column in zip(entry.key_columns, columns):
            observed = observed_domain(column)
            if column.size:
                ctx.catalog.widen_domain(
                    table.name, name, observed.low, observed.high
                )
        new_rows = tail_matrix.shape[0]
        self._charge_build(ctx, new_rows)
        ctx.profiler.counters.inc(COUNTER_EXTEND_ROWS, new_rows)
        if entry.codec is not None:
            codes = entry.codec.pack(columns)
        else:
            codes = entry.dictionary.encode(tail_matrix, extend=True)
        positions = np.arange(entry.rows_indexed, table.num_rows, dtype=np.int64)
        entry.sorted_codes, entry.sorted_positions = kernels.merge_sorted_index(
            entry.sorted_codes, entry.sorted_positions, codes, positions
        )
        entry.rows_indexed = table.num_rows
        entry.synced_version = table.version
        return True


def _with_headroom(domains: list[ColumnDomain]) -> list[ColumnDomain]:
    """Pad each domain by one bit of growth slack when the key still fits.

    Later iterations often derive values slightly outside the first
    iteration's observed range; the slack absorbs that growth without a
    codec rebuild. Padding is skipped when it would push the key over the
    63-bit CCK limit.
    """
    padded = [
        ColumnDomain(domain.low, domain.high + (domain.high - domain.low) + 1)
        for domain in domains
    ]
    if sum(domain.bits for domain in padded) <= kernels.MAX_PACK_BITS:
        return padded
    return domains

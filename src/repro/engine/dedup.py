"""Deduplication: the FAST-DEDUP (CCK-GSCHT) path and the generic path.

Section 5.2 / Figure 5: RecStep deduplicates with a global separate-
chaining hash table over a Compact Concatenated Key — the fixed-width
concatenation of the tuple's attributes is simultaneously the key, the
value, and the hash. That removes the per-entry <key,value> pair and the
hash computation of a generic table.

Both paths produce identical sets; they differ in modeled cost and
transient memory, which is what the Figure 2/3 ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import kernels
from repro.engine.executor import (
    COST_DEDUP_FAST,
    COST_DEDUP_SLOW,
    COST_PARTITION,
    DEDUP_PHASE,
    PARTITION_PHASE,
    PARTITIONED_DEDUP_PHASE,
)
from repro.engine.operators import PARTITION_SCRATCH_BYTES, ExecutionContext
from repro.engine.optimizer import partitioned_dedup_decision

#: Generic hash table per-entry overhead: 8-byte hash + 16-byte kv pointer.
GENERIC_ENTRY_OVERHEAD = 24
#: CCK bucket array entry: one pointer per pre-allocated bucket.
CCK_BUCKET_BYTES = 8
#: Per-tuple cost of the memory-lean sort path: an in-place sort plus an
#: adjacent-unique sweep. Slower than either hash path, but its only
#: transient is the permutation index array (``n * 8`` bytes) — no bucket
#: array, no entry overhead. This is the degradation ladder's first rung.
COST_DEDUP_LEAN = 2.2e-6
LEAN_INDEX_BYTES = 8


@dataclass(frozen=True)
class DedupOutcome:
    rows: np.ndarray
    input_rows: int
    output_rows: int
    used_compact_key: bool
    partitioned: bool = False


def plan_transient(
    n: int,
    width: int,
    fast: bool = True,
    estimated_rows: int | None = None,
    packable: bool = True,
    lean: bool = False,
    partitioned: bool = False,
) -> int:
    """The single sizing rule for dedup transients (pre-flight == actual).

    ``deduplicate`` and the degradation pre-flight both call this, so the
    controller's headroom check sees exactly the bytes the ledger will be
    charged. ``packable`` matters: a wide tuple silently degrades the
    CCK path to the generic one, whose per-entry overhead is far larger —
    a pre-flight assuming the compact layout would under-report it.
    ``partitioned`` adds the radix scatter buffers on top of the bucket
    tables (same total entries, just spread over private per-bucket
    structures).
    """
    if lean:
        return n * LEAN_INDEX_BYTES
    buckets = max(16, n if estimated_rows is None else estimated_rows)
    if fast and packable:
        base = max(n, buckets) * CCK_BUCKET_BYTES + n * 8
    else:
        tuple_bytes = width * 8 if n else 8
        base = max(n, buckets) * 8 + n * (GENERIC_ENTRY_OVERHEAD + tuple_bytes)
    if partitioned:
        base += n * PARTITION_SCRATCH_BYTES
    return base


def rows_packable(rows: np.ndarray) -> bool:
    """Whether the CCK fast path applies (cheap min/max scan, no key)."""
    if rows.shape[0] == 0 or rows.shape[1] <= 1:
        return True
    columns = [rows[:, i] for i in range(rows.shape[1])]
    return kernels.pack_width_bits(columns) <= kernels.MAX_PACK_BITS


def planned_transient_bytes(
    n: int,
    width: int,
    fast: bool = True,
    estimated_rows: int | None = None,
    packable: bool = True,
) -> int:
    """Transient bytes the hash dedup paths would allocate for ``n`` rows.

    The degradation controller uses this pre-flight: if the planned
    allocation would itself breach the soft watermark, dedup switches to
    the lean sort path before touching the clock or the memory ledger.
    """
    return plan_transient(n, width, fast=fast, estimated_rows=estimated_rows, packable=packable)


def deduplicate(
    rows: np.ndarray,
    ctx: ExecutionContext,
    fast: bool = True,
    estimated_rows: int | None = None,
    lean: bool = False,
    partitions: int = 0,
) -> DedupOutcome:
    """Deduplicate ``rows`` charging the configured strategy's costs.

    ``fast=True`` models CCK-GSCHT; it applies when the tuple packs into 63
    bits (the paper's "small number of attributes" condition), otherwise it
    degrades to the generic path — mirroring the appendix's caveat that
    FAST-DEDUP can lose its edge on wide tuples.

    ``estimated_rows`` is the optimizer's table-size estimate used to
    pre-allocate buckets (Section 5.1: "the size of the hash table needs
    to be estimated in order to pre-allocate memory"). Underestimation
    (stale statistics) lengthens collision chains; overestimation wastes
    bucket memory.

    ``lean=True`` (degradation ladder, rung 1) bypasses both hash paths
    for an in-place sort + adjacent-unique sweep: the slowest per tuple,
    but its only transient is the sort's index array (``n * 8`` bytes).

    ``partitions > 0`` enables radix-partitioned execution: a scatter
    pass buckets rows by key hash, then each bucket dedups into a private
    table — no shared GSCHT, so almost none of its contention penalty.
    The call itself decides shared-vs-partitioned from the modeled
    makespans (``optimizer.partitioned_dedup_decision``), so tiny inputs
    and low thread counts stay shared. Only the compact-key path
    partitions (the radix hash needs the packed int64 key); output is
    byte-identical to the shared path.
    """
    n = rows.shape[0]
    packable = rows_packable(rows)
    use_compact = fast and packable and not lean
    use_partitioned = partitions > 0 and use_compact and n > 0

    if estimated_rows is None:
        estimated_rows = n
    buckets = max(16, estimated_rows)
    # Underestimated bucket counts put several tuples in each chain; the
    # probe cost scales with the average chain length (capped: resizes
    # eventually kick in).
    chain_factor = min(4.0, max(1.0, n / buckets))

    if use_partitioned:
        choice = partitioned_dedup_decision(
            ctx.cost_model, partitions, n, COST_DEDUP_FAST * chain_factor
        )
        # The pre-flight prices the *whole* partitioned allocation (bucket
        # tables + scatter scratch), not the scratch alone: two halves that
        # each clear the soft watermark can still jointly blow the budget.
        planned = plan_transient(
            n, rows.shape[1], fast=fast, estimated_rows=estimated_rows,
            packable=packable, lean=lean, partitioned=True,
        )
        use_partitioned = choice.partitioned and ctx.partition_scratch_ok(planned)

    # The scatter needs the packed key as its hash input; a tuple that
    # unexpectedly fails to pack falls back to the shared path.
    key = layout = None
    if use_partitioned:
        if rows.shape[1] == 1:
            key = rows[:, 0]
        else:
            key = kernels.pack_columns([rows[:, i] for i in range(rows.shape[1])])
        if key is None:
            use_partitioned = False
        else:
            layout = kernels.radix_partition(key, partitions)

    # Sizing comes from the shared rule so the degradation pre-flight and
    # the ledger always agree byte-for-byte.
    transient = plan_transient(
        n, rows.shape[1], fast=fast, estimated_rows=estimated_rows,
        packable=packable, lean=lean, partitioned=use_partitioned,
    )
    if lean:
        cost = n * COST_DEDUP_LEAN
    elif use_compact:
        cost = n * COST_DEDUP_FAST * chain_factor
    else:
        cost = n * COST_DEDUP_SLOW * chain_factor

    ctx.metrics.allocate_transient(transient)
    if use_partitioned:
        order, offsets = layout
        ctx.charge_parallel(PARTITION_PHASE, n * COST_PARTITION, n)
        counts = kernels.partition_counts(offsets)
        # Same per-tuple work as the shared table (each bucket builds its
        # private GSCHT), scheduled as one straggler-bound task per bucket.
        ctx.charge_partitioned_tasks(
            PARTITIONED_DEDUP_PHASE, counts * (COST_DEDUP_FAST * chain_factor)
        )
        keep = kernels.partitioned_unique_indices(key, order, offsets)
        if rows.shape[1] == 1:
            # The shared single-column path returns sorted values.
            unique = np.sort(rows[keep, 0]).reshape(-1, 1)
        else:
            unique = rows[keep]
    else:
        ctx.charge_parallel(DEDUP_PHASE, cost, n)
        unique = kernels.unique_rows(rows)
    ctx.metrics.release_transient(transient)
    counters = ctx.profiler.counters
    counters.inc("dedup_calls")
    counters.inc("dedup_input_rows", n)
    counters.inc("dedup_output_rows", unique.shape[0])
    counters.inc("tuples_deduped", n - unique.shape[0])
    if lean:
        counters.inc("dedup_lean_path")
    else:
        counters.inc("dedup_fast_path" if use_compact else "dedup_generic_path")
    if use_partitioned:
        counters.inc("partition.dedup_runs")
        counters.inc("partition.scatter_rows", n)
    ctx.profiler.annotate(
        transient_bytes=transient,
        chain_factor=round(chain_factor, 3),
        partitioned=use_partitioned,
    )
    return DedupOutcome(
        rows=unique,
        input_rows=n,
        output_rows=unique.shape[0],
        used_compact_key=use_compact,
        partitioned=use_partitioned,
    )

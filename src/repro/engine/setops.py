"""Set-difference strategies: OPSD and TPSD (paper Appendix A).

Semi-naive evaluation computes ``delta = R_delta - R`` at every iteration
of every IDB. The two SQL translations differ in what gets hashed:

* **OPSD** (one-phase): build a hash table on the full recursive relation
  ``R`` and anti-probe with ``R_delta``. Build cost grows with ``|R|``
  every iteration.
* **TPSD** (two-phase): hash the *smaller* of the two inputs to compute
  the intersection ``r``, then hash ``r`` and anti-probe ``R_delta``.
  More operators, but never builds on the (monotonically growing) ``R``.

Both return exactly ``set(R_delta) - set(R)``; the DSD policy in
``repro.core.setdiff_policy`` picks between them per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import kernels
from repro.engine.executor import BUILD_PHASE, COST_BUILD, COST_PROBE, PROBE_PHASE
from repro.engine.operators import HASH_ENTRY_OVERHEAD, ExecutionContext


@dataclass(frozen=True)
class SetDifferenceOutcome:
    delta: np.ndarray
    strategy: str
    intersection_size: int | None  # TPSD only


def _keys_for(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    left_cols = [left[:, i] for i in range(left.shape[1])]
    right_cols = [right[:, i] for i in range(right.shape[1])]
    return kernels.make_join_keys(left_cols, right_cols)


def one_phase_set_difference(
    new_rows: np.ndarray,
    existing_rows: np.ndarray,
    ctx: ExecutionContext,
    cache_entry=None,
) -> SetDifferenceOutcome:
    """OPSD: hash ``existing_rows`` (R), anti-probe with ``new_rows``.

    With a ``cache_entry`` (a whole-row ``JoinIndexEntry`` over R from
    the join-state cache) the per-iteration hash build over all of R
    disappears: the index build/extension was charged by the cache (on
    the appended rows only), so this call pays the anti-probe alone —
    the cost that made OPSD lose to TPSD on late iterations.
    """
    build_rows = existing_rows.shape[0]
    probe_rows = new_rows.shape[0]
    if cache_entry is not None:
        probe_bytes = probe_rows * 8
        ctx.metrics.allocate_transient(probe_bytes)
        ctx.charge_parallel(PROBE_PHASE, probe_rows * COST_PROBE, probe_rows)
        new_unique = kernels.unique_rows(new_rows)
        if build_rows == 0 or new_unique.shape[0] == 0:
            delta = new_unique
        else:
            columns = [new_unique[:, i] for i in range(new_unique.shape[1])]
            probe_codes = cache_entry.probe_codes(columns)
            delta = new_unique[
                ~kernels.isin_sorted(probe_codes, cache_entry.sorted_codes)
            ]
        ctx.metrics.release_transient(probe_bytes)
        return SetDifferenceOutcome(delta=delta, strategy="OPSD", intersection_size=None)
    hash_bytes = build_rows * (8 + HASH_ENTRY_OVERHEAD)
    ctx.metrics.allocate_transient(hash_bytes)
    ctx.charge_parallel(BUILD_PHASE, build_rows * COST_BUILD, build_rows)
    ctx.charge_parallel(PROBE_PHASE, probe_rows * COST_PROBE, probe_rows)
    new_unique = kernels.unique_rows(new_rows)
    if build_rows == 0:
        delta = new_unique
    else:
        new_keys, old_keys = _keys_for(new_unique, existing_rows)
        delta = new_unique[kernels.anti_join_mask(new_keys, old_keys)]
    ctx.metrics.release_transient(hash_bytes)
    return SetDifferenceOutcome(delta=delta, strategy="OPSD", intersection_size=None)


def two_phase_set_difference(
    new_rows: np.ndarray, existing_rows: np.ndarray, ctx: ExecutionContext
) -> SetDifferenceOutcome:
    """TPSD: intersect hashing the smaller side, then subtract the intersection."""
    n_new = new_rows.shape[0]
    n_old = existing_rows.shape[0]

    # Phase 1: r = R_delta ∩ R, building on the smaller input.
    build_rows = min(n_new, n_old)
    probe_rows = max(n_new, n_old)
    phase1_bytes = build_rows * (8 + HASH_ENTRY_OVERHEAD)
    ctx.metrics.allocate_transient(phase1_bytes)
    ctx.charge_parallel(BUILD_PHASE, build_rows * COST_BUILD, build_rows)
    ctx.charge_parallel(PROBE_PHASE, probe_rows * COST_PROBE, probe_rows)
    intersection = kernels.rows_intersection(new_rows, existing_rows)
    ctx.metrics.release_transient(phase1_bytes)

    # Phase 2: delta = R_delta - r, building on (the usually tiny) r.
    r_rows = intersection.shape[0]
    phase2_bytes = r_rows * (8 + HASH_ENTRY_OVERHEAD)
    ctx.metrics.allocate_transient(phase2_bytes)
    ctx.charge_parallel(BUILD_PHASE, r_rows * COST_BUILD, r_rows)
    ctx.charge_parallel(PROBE_PHASE, n_new * COST_PROBE, n_new)
    if r_rows == 0:
        delta = kernels.unique_rows(new_rows)
    else:
        new_unique = kernels.unique_rows(new_rows)
        new_keys, r_keys = _keys_for(new_unique, intersection)
        delta = new_unique[kernels.anti_join_mask(new_keys, r_keys)]
    ctx.metrics.release_transient(phase2_bytes)
    return SetDifferenceOutcome(delta=delta, strategy="TPSD", intersection_size=r_rows)

"""Set-difference strategies: OPSD and TPSD (paper Appendix A).

Semi-naive evaluation computes ``delta = R_delta - R`` at every iteration
of every IDB. The two SQL translations differ in what gets hashed:

* **OPSD** (one-phase): build a hash table on the full recursive relation
  ``R`` and anti-probe with ``R_delta``. Build cost grows with ``|R|``
  every iteration.
* **TPSD** (two-phase): hash the *smaller* of the two inputs to compute
  the intersection ``r``, then hash ``r`` and anti-probe ``R_delta``.
  More operators, but never builds on the (monotonically growing) ``R``.

Both return exactly ``set(R_delta) - set(R)``; the DSD policy in
``repro.core.setdiff_policy`` picks between them per iteration.

Cost accounting is *honest*: every phase charges for the rows it actually
touches. Both strategies sort-unique ``R_delta`` up front (charged as a
lean dedup), and every probe phase is charged on the deduplicated row
count it really probes — the DSD policy and the appendix benchmark
consume these numbers. When the execution context enables radix
partitioning, the hash-heavy phases may run scatter + per-bucket instead
of against one shared table (same output, bit for bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import kernels
from repro.engine.dedup import COST_DEDUP_LEAN, LEAN_INDEX_BYTES
from repro.engine.executor import (
    BUILD_PHASE,
    COST_BUILD,
    COST_PARTITION,
    COST_PROBE,
    DEDUP_PHASE,
    PARTITION_PHASE,
    PARTITIONED_BUILD_PHASE,
    PARTITIONED_PROBE_PHASE,
    PROBE_PHASE,
)
from repro.engine.operators import (
    HASH_ENTRY_OVERHEAD,
    PARTITION_SCRATCH_BYTES,
    ExecutionContext,
)
from repro.engine.optimizer import partitioned_join_decision


@dataclass(frozen=True)
class SetDifferenceOutcome:
    delta: np.ndarray
    strategy: str
    intersection_size: int | None  # TPSD only


def _keys_for(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    left_cols = [left[:, i] for i in range(left.shape[1])]
    right_cols = [right[:, i] for i in range(right.shape[1])]
    return kernels.make_join_keys(left_cols, right_cols)


def _charge_unique_sort(ctx: ExecutionContext, n_rows: int) -> None:
    """Charge the sort-unique over ``R_delta`` both strategies perform.

    ``unique_rows`` is a sort + adjacent-unique sweep — the same work the
    lean dedup path models, so it is charged at that rate with the sort's
    index array as its transient. Previously this work went entirely
    uncharged, flattering both strategies equally.
    """
    if n_rows == 0:
        return
    sort_bytes = n_rows * LEAN_INDEX_BYTES
    ctx.metrics.allocate_transient(sort_bytes)
    ctx.charge_parallel(DEDUP_PHASE, n_rows * COST_DEDUP_LEAN, n_rows)
    ctx.metrics.release_transient(sort_bytes)


def _semi_mask(
    left: np.ndarray,
    right: np.ndarray,
    build_rows: int,
    probe_rows: int,
    ctx: ExecutionContext,
    phase_label: str,
) -> np.ndarray:
    """Membership mask of ``left`` rows in ``right``, charged build+probe.

    The hash-heavy core both strategies share. ``build_rows``/
    ``probe_rows`` say which side the strategy hashes (OPSD builds on
    ``right`` = R; TPSD phase 1 builds on the smaller side) — the kernel
    work is symmetric, only the charge differs. With partitioning
    enabled and worth it, both sides are radix-scattered and each bucket
    builds/probes a private table.
    """
    hash_bytes = build_rows * (8 + HASH_ENTRY_OVERHEAD)
    left_keys, right_keys = _keys_for(left, right)
    layouts = None
    scatter_rows = left.shape[0] + right.shape[0]
    scratch_bytes = scatter_rows * PARTITION_SCRATCH_BYTES
    if ctx.partitions and left_keys.size and right_keys.size:
        choice = partitioned_join_decision(
            ctx.cost_model, ctx.partitions, build_rows, probe_rows
        )
        if choice.partitioned and ctx.partition_scratch_ok(hash_bytes + scratch_bytes):
            layouts = (
                kernels.radix_partition(left_keys, ctx.partitions),
                kernels.radix_partition(right_keys, ctx.partitions),
            )
    if layouts is not None:
        left_counts = kernels.partition_counts(layouts[0][1])
        right_counts = kernels.partition_counts(layouts[1][1])
        # The build side's per-bucket counts scale the build tasks; the
        # probe side's scale the probes (mirrors the shared charges).
        if build_rows == left.shape[0]:
            build_counts, probe_counts = left_counts, right_counts
        else:
            build_counts, probe_counts = right_counts, left_counts
        ctx.metrics.allocate_transient(hash_bytes + scratch_bytes)
        ctx.charge_parallel(PARTITION_PHASE, scatter_rows * COST_PARTITION, scatter_rows)
        ctx.charge_partitioned_tasks(PARTITIONED_BUILD_PHASE, build_counts * COST_BUILD)
        ctx.charge_partitioned_tasks(PARTITIONED_PROBE_PHASE, probe_counts * COST_PROBE)
        ctx.profiler.counters.inc("partition.setdiff_runs")
        ctx.profiler.counters.inc("partition.scatter_rows", scatter_rows)
        ctx.profiler.counters.inc(f"partition.setdiff_{phase_label}")
        mask = kernels.partitioned_semi_join_mask(
            left_keys, right_keys, layouts[0], layouts[1]
        )
        ctx.metrics.release_transient(hash_bytes + scratch_bytes)
        return mask
    ctx.metrics.allocate_transient(hash_bytes)
    ctx.charge_parallel(BUILD_PHASE, build_rows * COST_BUILD, build_rows)
    ctx.charge_parallel(PROBE_PHASE, probe_rows * COST_PROBE, probe_rows)
    mask = kernels.semi_join_mask(left_keys, right_keys)
    ctx.metrics.release_transient(hash_bytes)
    return mask


def one_phase_set_difference(
    new_rows: np.ndarray,
    existing_rows: np.ndarray,
    ctx: ExecutionContext,
    cache_entry=None,
    build_rows: int | None = None,
) -> SetDifferenceOutcome:
    """OPSD: hash ``existing_rows`` (R), anti-probe with ``new_rows``.

    With a ``cache_entry`` (a whole-row ``JoinIndexEntry`` over R from
    the join-state cache) the per-iteration hash build over all of R
    disappears: the index build/extension was charged by the cache (on
    the appended rows only), so this call pays the sort-unique of
    ``R_delta`` plus the anti-probe alone — the cost that made OPSD lose
    to TPSD on late iterations.

    ``build_rows`` overrides R's row count. The cached path never reads
    R's row *content* — only its size — so a caller holding a spilled
    table can pass the resident tail plus the true logical count and the
    on-disk prefix stays on disk.
    """
    if build_rows is None:
        build_rows = existing_rows.shape[0]
    _charge_unique_sort(ctx, new_rows.shape[0])
    new_unique = kernels.unique_rows(new_rows)
    probe_rows = new_unique.shape[0]
    if cache_entry is not None:
        probe_bytes = probe_rows * 8
        ctx.metrics.allocate_transient(probe_bytes)
        # Anti-probing the read-only sorted index is position-chunkable
        # (independent binary searches) — no shared table to contend on.
        ctx.charge_index_pass(
            PROBE_PHASE, PARTITIONED_PROBE_PHASE, probe_rows * COST_PROBE, probe_rows
        )
        if build_rows == 0 or probe_rows == 0:
            delta = new_unique
        else:
            columns = [new_unique[:, i] for i in range(new_unique.shape[1])]
            probe_codes = cache_entry.probe_codes(columns)
            delta = new_unique[
                ~kernels.isin_sorted(probe_codes, cache_entry.sorted_codes)
            ]
        ctx.metrics.release_transient(probe_bytes)
        return SetDifferenceOutcome(delta=delta, strategy="OPSD", intersection_size=None)
    if build_rows == 0:
        delta = new_unique
    else:
        mask = _semi_mask(
            new_unique, existing_rows, build_rows, probe_rows, ctx, "opsd"
        )
        delta = new_unique[~mask]
    return SetDifferenceOutcome(delta=delta, strategy="OPSD", intersection_size=None)


def streaming_two_phase_set_difference(
    new_rows: np.ndarray,
    base_chunks,
    ctx: ExecutionContext,
) -> SetDifferenceOutcome:
    """TPSD over a base relation streamed in chunks (spilled tables).

    ``base_chunks`` yields row arrays whose concatenation is R — spilled
    segments read back one at a time (the producer charges the read I/O
    and a bounded per-chunk transient) followed by the resident tail.
    Phase 1 ORs the per-chunk membership masks: a row of ``R_delta`` is
    in R iff it is in some chunk, and every mask indexes the same
    ``new_unique`` array, so the intersection — and therefore the final
    delta — is bit-identical to the non-streamed TPSD. R itself is never
    materialized in memory at once.
    """
    _charge_unique_sort(ctx, new_rows.shape[0])
    new_unique = kernels.unique_rows(new_rows)
    n_unique = new_unique.shape[0]

    if n_unique == 0:
        return SetDifferenceOutcome(
            delta=new_unique, strategy="TPSD", intersection_size=0
        )

    # Phase 1: r = R_delta ∩ R, one bounded chunk of R at a time.
    mask = np.zeros(n_unique, dtype=bool)
    for chunk in base_chunks:
        rows = chunk.shape[0]
        if rows == 0:
            continue
        mask |= _semi_mask(
            new_unique,
            chunk,
            min(n_unique, rows),
            max(n_unique, rows),
            ctx,
            "tpsd_intersect",
        )
    intersection = new_unique[mask]

    # Phase 2: delta = R_delta - r, building on (the usually tiny) r.
    r_rows = intersection.shape[0]
    if r_rows == 0:
        delta = new_unique
    else:
        subtract_mask = _semi_mask(
            new_unique, intersection, r_rows, n_unique, ctx, "tpsd_subtract"
        )
        delta = new_unique[~subtract_mask]
    return SetDifferenceOutcome(delta=delta, strategy="TPSD", intersection_size=r_rows)


def two_phase_set_difference(
    new_rows: np.ndarray, existing_rows: np.ndarray, ctx: ExecutionContext
) -> SetDifferenceOutcome:
    """TPSD: intersect hashing the smaller side, then subtract the intersection."""
    n_old = existing_rows.shape[0]
    _charge_unique_sort(ctx, new_rows.shape[0])
    new_unique = kernels.unique_rows(new_rows)
    n_unique = new_unique.shape[0]

    # Phase 1: r = R_delta ∩ R, building on the smaller input.
    if n_old == 0 or n_unique == 0:
        intersection = new_unique[:0]
    else:
        mask = _semi_mask(
            new_unique,
            existing_rows,
            min(n_unique, n_old),
            max(n_unique, n_old),
            ctx,
            "tpsd_intersect",
        )
        intersection = new_unique[mask]

    # Phase 2: delta = R_delta - r, building on (the usually tiny) r.
    r_rows = intersection.shape[0]
    if r_rows == 0:
        delta = new_unique
    else:
        mask = _semi_mask(
            new_unique, intersection, r_rows, n_unique, ctx, "tpsd_subtract"
        )
        delta = new_unique[~mask]
    return SetDifferenceOutcome(delta=delta, strategy="TPSD", intersection_size=r_rows)

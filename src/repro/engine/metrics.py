"""Evaluation metrics: simulated clock, memory accounting, CPU trace.

Memory is modeled, not measured: the recorder tracks the bytes of all
catalog tables plus whatever transient structures (hash tables, pipeline
materializations, bit-matrices) operators declare while they run. This is
what lets a 15 GB host reproduce the paper's 160 GB-server OOM envelope:
engines whose modeled footprint exceeds the configured budget raise
:class:`~repro.common.errors.OutOfMemoryError` exactly where the real
system would have died.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.common.errors import EvaluationTimeout, OutOfMemoryError
from repro.common.records import Trace
from repro.common.timing import SimClock
from repro.obs.counters import NULL_COUNTERS, CounterRegistry

logger = logging.getLogger(__name__)

#: Default modeled server memory. The paper's server has 160 GB; our
#: datasets are roughly two orders of magnitude smaller, so the default
#: budget scales accordingly (overridable per experiment).
DEFAULT_MEMORY_BUDGET = int(1.6e9)
DEFAULT_TIME_BUDGET = 36_000.0  # paper's 10 h timeout, simulated seconds

#: Soft memory watermarks, as fractions of the budget. Crossing one emits
#: a pressure event (see ``pressure_listener``) so the degradation ladder
#: can shed footprint before the hard OOM at 100%.
SOFT_WATERMARK = 0.80
CRITICAL_WATERMARK = 0.95


@dataclass
class MetricsRecorder:
    """Collects memory/CPU traces on a shared simulated time axis."""

    memory_budget: int = DEFAULT_MEMORY_BUDGET
    time_budget: float = DEFAULT_TIME_BUDGET
    clock: SimClock = field(default_factory=SimClock)
    memory_trace: Trace = field(default_factory=lambda: Trace("memory_bytes"))
    cpu_trace: Trace = field(default_factory=lambda: Trace("cpu_utilization"))
    base_bytes: int = 0
    transient_bytes: int = 0
    peak_bytes: int = 0
    peak_transient_bytes: int = 0
    #: Modeled bytes currently held in spill segment files (on disk, not
    #: counted against the memory budget) and the high-water mark.
    spilled_bytes: int = 0
    peak_spilled_bytes: int = 0
    transient_underflows: int = 0
    enforce_budgets: bool = True
    counters: CounterRegistry = field(default=NULL_COUNTERS)
    #: Soft watermark fractions; crossings bump ``pressure_level`` and
    #: notify ``pressure_listener(level, fraction)``. Level is sticky
    #: (0 = normal, 1 = soft, 2 = critical) so each crossing fires once.
    soft_watermark: float = SOFT_WATERMARK
    critical_watermark: float = CRITICAL_WATERMARK
    pressure_level: int = 0
    pressure_events: int = 0
    pressure_listener: object = field(default=None, repr=False)

    def now(self) -> float:
        return self.clock.now()

    # -- time ---------------------------------------------------------------

    def advance(self, seconds: float, utilization: float = 0.05) -> None:
        """Advance the clock, recording CPU utilization over the span."""
        if seconds <= 0:
            return
        self.cpu_trace.record(self.clock.now(), utilization)
        self.clock.advance(seconds)
        self.cpu_trace.record(self.clock.now(), utilization)
        if self.enforce_budgets and self.clock.now() > self.time_budget:
            raise EvaluationTimeout(
                f"simulated time {self.clock.now():.1f}s exceeded budget "
                f"{self.time_budget:.1f}s",
                sim_seconds=round(self.clock.now(), 6),
                time_budget=self.time_budget,
            )

    # -- memory ---------------------------------------------------------------

    def set_base_bytes(self, total: int) -> None:
        """Update the resident-table footprint (called after each query)."""
        self.base_bytes = total
        self._sample_memory()

    def allocate_transient(self, size: int) -> None:
        """Declare a transient allocation (hash table, materialization)."""
        self.transient_bytes += size
        self._sample_memory()

    def release_transient(self, size: int) -> None:
        """Release a transient allocation.

        A release that drives the balance negative means an operator
        released bytes it never allocated (double release, or a
        mismatched size). That bug used to be silently clamped away,
        corrupting the memory trace; now it is logged and counted so it
        shows up in profiles as ``transient_underflows``.
        """
        self.transient_bytes -= size
        if self.transient_bytes < 0:
            self.transient_underflows += 1
            self.counters.inc("transient_underflows")
            logger.warning(
                "transient memory underflow: released %d bytes with only %d "
                "outstanding (double release?)",
                size,
                size + self.transient_bytes,
            )
            self.transient_bytes = 0
        self._sample_memory()

    def note_spilled(self, delta: int) -> None:
        """Track bytes moving between the resident and spilled tiers.

        Spilled bytes live on disk: they never count toward the memory
        budget (that is the point of spilling), but they are ledgered so
        profiles, recaps, and the server's admission split can report
        resident vs spilled honestly.
        """
        self.spilled_bytes = max(0, self.spilled_bytes + delta)
        self.peak_spilled_bytes = max(self.peak_spilled_bytes, self.spilled_bytes)

    def _sample_memory(self) -> None:
        total = self.base_bytes + self.transient_bytes
        self.peak_bytes = max(self.peak_bytes, total)
        self.peak_transient_bytes = max(self.peak_transient_bytes, self.transient_bytes)
        self.memory_trace.record(self.clock.now(), float(total))
        if self.memory_budget > 0:
            fraction = total / self.memory_budget
            level = (
                2
                if fraction >= self.critical_watermark
                else 1 if fraction >= self.soft_watermark else 0
            )
            if level > self.pressure_level:
                self.pressure_level = level
                self.pressure_events += 1
                self.counters.inc(
                    "memory_pressure_critical" if level == 2 else "memory_pressure_soft"
                )
                if self.pressure_listener is not None:
                    self.pressure_listener(level, fraction)
        if self.enforce_budgets and total > self.memory_budget:
            raise OutOfMemoryError(
                f"modeled footprint {total / 1e6:.1f} MB exceeds budget "
                f"{self.memory_budget / 1e6:.1f} MB",
                modeled_bytes=total,
                transient_bytes=self.transient_bytes,
                memory_budget=self.memory_budget,
            )

    def budget_fraction(self, extra_bytes: int = 0) -> float:
        """Footprint (plus a planned allocation) as a budget fraction.

        Degradation pre-flight checks use this: "would allocating
        ``extra_bytes`` put us past the soft watermark?" A non-positive
        budget reports 0.0 (no meaningful pressure axis).
        """
        if self.memory_budget <= 0:
            return 0.0
        return (self.base_bytes + self.transient_bytes + extra_bytes) / self.memory_budget

    def memory_percent_trace(self) -> list[tuple[float, float]]:
        """Memory trace as a percentage of the budget (paper's y-axis).

        A non-positive budget (budget enforcement off, or an unlimited
        probe run) has no meaningful percentage axis; report 0% rather
        than dividing by zero.
        """
        if self.memory_budget <= 0:
            return [(sample.time, 0.0) for sample in self.memory_trace.samples]
        return [
            (sample.time, 100.0 * sample.value / self.memory_budget)
            for sample in self.memory_trace.samples
        ]

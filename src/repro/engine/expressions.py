"""Vectorized scalar-expression evaluation over join frames.

A :class:`Frame` is the intermediate result of a join pipeline: per table
alias, an index array selecting rows of the alias's base data. Columns are
gathered lazily, so wide intermediate results never materialize until
projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import PlanError
from repro.sql import ast


@dataclass
class Frame:
    """Aligned row selections over one or more base tables.

    Attributes:
        bases: alias -> base data matrix (rows of the underlying table).
        schemas: alias -> column-name tuple of that base.
        indices: alias -> int64 row-index array; all the same length.
    """

    bases: dict[str, np.ndarray] = field(default_factory=dict)
    schemas: dict[str, tuple[str, ...]] = field(default_factory=dict)
    indices: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def from_table(cls, alias: str, data: np.ndarray, columns: tuple[str, ...]) -> "Frame":
        frame = cls()
        frame.bases[alias] = data
        frame.schemas[alias] = columns
        frame.indices[alias] = np.arange(data.shape[0], dtype=np.int64)
        return frame

    def __len__(self) -> int:
        for index in self.indices.values():
            return int(index.shape[0])
        return 0

    @property
    def aliases(self) -> set[str]:
        return set(self.indices)

    def column(self, alias: str, column_name: str) -> np.ndarray:
        """Gather one column of the frame as a flat int64 array."""
        if alias not in self.indices:
            raise PlanError(f"alias {alias!r} is not part of this frame")
        try:
            position = self.schemas[alias].index(column_name)
        except ValueError:
            raise PlanError(f"alias {alias!r} has no column {column_name!r}") from None
        return self.bases[alias][self.indices[alias], position]

    def select(self, mask_or_index: np.ndarray) -> "Frame":
        """New frame keeping only the rows selected by a mask/index array."""
        out = Frame(bases=dict(self.bases), schemas=dict(self.schemas))
        out.indices = {alias: index[mask_or_index] for alias, index in self.indices.items()}
        return out

    def joined_with(
        self,
        alias: str,
        data: np.ndarray,
        columns: tuple[str, ...],
        left_positions: np.ndarray,
        right_positions: np.ndarray,
    ) -> "Frame":
        """Frame after matching this frame's rows with rows of a new base."""
        out = Frame(bases=dict(self.bases), schemas=dict(self.schemas))
        out.bases[alias] = data
        out.schemas[alias] = columns
        out.indices = {a: index[left_positions] for a, index in self.indices.items()}
        out.indices[alias] = right_positions
        return out


def resolve_column(ref: ast.ColumnRef, frame: Frame) -> tuple[str, str]:
    """Resolve a (possibly unqualified) column reference to (alias, column)."""
    if ref.table is not None:
        if ref.table not in frame.schemas:
            raise PlanError(f"unknown table alias {ref.table!r} in {ref}")
        if ref.column not in frame.schemas[ref.table]:
            raise PlanError(f"alias {ref.table!r} has no column {ref.column!r}")
        return ref.table, ref.column
    owners = [alias for alias, schema in frame.schemas.items() if ref.column in schema]
    if not owners:
        raise PlanError(f"column {ref.column!r} not found in any FROM table")
    if len(owners) > 1:
        raise PlanError(f"column {ref.column!r} is ambiguous across {sorted(owners)}")
    return owners[0], ref.column


def evaluate(expr: ast.Expr, frame: Frame) -> np.ndarray:
    """Evaluate a scalar expression to a flat int64 array over the frame."""
    if isinstance(expr, ast.Literal):
        return np.full(len(frame), expr.value, dtype=np.int64)
    if isinstance(expr, ast.ColumnRef):
        alias, column = resolve_column(expr, frame)
        return frame.column(alias, column)
    if isinstance(expr, ast.BinaryOp):
        left = evaluate(expr.left, frame)
        right = evaluate(expr.right, frame)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise PlanError(f"unknown arithmetic operator {expr.op!r}")
    if isinstance(expr, ast.AggregateCall):
        raise PlanError("aggregate call outside aggregation context")
    raise PlanError(f"cannot evaluate expression {expr!r}")


def evaluate_comparison(comparison: ast.Comparison, frame: Frame) -> np.ndarray:
    """Evaluate a comparison predicate to a boolean mask over the frame."""
    left = evaluate(comparison.left, frame)
    right = evaluate(comparison.right, frame)
    op = comparison.op
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise PlanError(f"unknown comparison operator {op!r}")


def expr_aliases(expr: ast.Expr, frame_schemas: dict[str, tuple[str, ...]]) -> set[str]:
    """All table aliases an expression touches (given candidate schemas)."""
    if isinstance(expr, ast.Literal):
        return set()
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            return {expr.table}
        owners = {
            alias for alias, schema in frame_schemas.items() if expr.column in schema
        }
        if len(owners) != 1:
            raise PlanError(
                f"column {expr.column!r} is {'ambiguous' if owners else 'unknown'}"
            )
        return owners
    if isinstance(expr, ast.BinaryOp):
        return expr_aliases(expr.left, frame_schemas) | expr_aliases(expr.right, frame_schemas)
    if isinstance(expr, ast.AggregateCall):
        return expr_aliases(expr.argument, frame_schemas)
    raise PlanError(f"cannot analyze expression {expr!r}")

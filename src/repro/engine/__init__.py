"""Parallel in-memory relational engine (the QuickStep stand-in).

``Database`` is the public entry point: it parses mini-SQL, binds it
against the catalog, plans joins with cost-based build-side selection,
executes vectorized NumPy kernels, and charges all work to a simulated
multicore clock (see ``repro.common.timing``).
"""

from repro.engine.database import Database
from repro.engine.executor import ParallelCostModel
from repro.engine.metrics import MetricsRecorder

__all__ = ["Database", "ParallelCostModel", "MetricsRecorder"]

"""EXPLAIN: render the plan the optimizer would choose for a query.

The interpreter's behaviour (join order, build sides, anti-joins) is
driven by catalog statistics; ``explain`` makes those decisions visible
without executing anything, which is how the OOF ablation was debugged
and is generally useful when authoring Datalog programs.
"""

from __future__ import annotations

from repro.engine.expressions import expr_aliases
from repro.engine.optimizer import choose_build_side, order_tables_by_estimate
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog


def explain_query(query: ast.Query, catalog: Catalog) -> str:
    """A textual plan for a SELECT or UNION ALL against ``catalog``."""
    if isinstance(query, ast.UnionAll):
        parts = []
        for index, select in enumerate(query.selects):
            parts.append(f"UNION ALL arm {index}:")
            parts.append(_indent(_explain_select(select, catalog)))
        return "\n".join(parts)
    return _explain_select(query, catalog)


def explain_sql(sql_text: str, catalog: Catalog) -> str:
    """EXPLAIN for a SQL string (SELECT or INSERT..SELECT)."""
    statement = parse_statement(sql_text)
    if isinstance(statement, ast.SelectStatement):
        return explain_query(statement.query, catalog)
    if isinstance(statement, ast.InsertSelect):
        plan = explain_query(statement.query, catalog)
        return f"INSERT INTO {statement.table}\n{_indent(plan)}"
    raise ValueError(f"cannot explain statement {type(statement).__name__}")


def _explain_select(select: ast.Select, catalog: Catalog) -> str:
    schemas = {
        ref.alias: catalog.get_table(ref.table).column_names for ref in select.tables
    }
    table_of = {ref.alias: ref.table for ref in select.tables}
    estimates = {
        alias: catalog.get_stats(table_of[alias]).num_rows for alias in schemas
    }

    join_edges = []
    filters = []
    anti_joins = []
    for predicate in select.where:
        if isinstance(predicate, ast.NotExists):
            anti_joins.append(predicate)
            continue
        left = expr_aliases(predicate.left, schemas)
        right = expr_aliases(predicate.right, schemas)
        if predicate.op == "=" and len(left) == 1 and len(right) == 1 and left != right:
            join_edges.append((next(iter(left)), next(iter(right)), predicate))
        else:
            filters.append(predicate)

    ordered = order_tables_by_estimate(estimates)
    lines = []
    current = ordered[0]
    lines.append(
        f"scan {table_of[current]} AS {current} (est. {estimates[current]} rows)"
    )
    bound = {current}
    frame_estimate = estimates[current]
    for alias in ordered[1:]:
        edges = [
            predicate
            for a, b, predicate in join_edges
            if {a, b} == {alias} | ({a, b} & bound)
            and alias in (a, b)
            and ({a, b} - {alias}) <= bound
        ]
        decision = choose_build_side(frame_estimate, estimates[alias])
        side = "left(frame)" if decision.build_left else f"right({alias})"
        kind = "hash join" if edges else "cross join"
        condition = " AND ".join(str(p) for p in edges) if edges else "true"
        lines.append(
            f"{kind} {table_of[alias]} AS {alias} "
            f"(est. {estimates[alias]} rows) ON {condition} [build: {side}]"
        )
        bound.add(alias)
        frame_estimate = max(frame_estimate, estimates[alias])
    for predicate in filters:
        lines.append(f"filter {predicate}")
    for anti in anti_joins:
        inner = ", ".join(ref.table for ref in anti.subquery.tables)
        lines.append(f"anti join (NOT EXISTS over {inner})")
    if select.group_by or any(
        isinstance(item.expr, ast.AggregateCall) for item in select.items
    ):
        keys = ", ".join(str(e) for e in select.group_by) or "<global>"
        lines.append(f"aggregate GROUP BY {keys}")
    items = ", ".join(str(item) for item in select.items)
    lines.append(f"project {items}")
    return "\n".join(lines)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())

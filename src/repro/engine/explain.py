"""EXPLAIN and EXPLAIN ANALYZE: render chosen plans, optionally with actuals.

The interpreter's behaviour (join order, build sides, anti-joins) is
driven by catalog statistics; ``explain`` makes those decisions visible
without executing anything, which is how the OOF ablation was debugged
and is generally useful when authoring Datalog programs.

``explain_analyze_sql`` additionally *executes* the statement under a
live profiler and annotates each plan line with the actual row count and
simulated time of the operator span that carried it out. Plan lines and
executed spans are paired by a shared key (``scan:{alias}``,
``join:{alias}``, ``filter:{i}``, ``anti:{i}``, ``aggregate``,
``project``) rather than by position, so the pairing survives the
executor picking a different join order than the plan listing.
"""

from __future__ import annotations

from repro.engine.expressions import expr_aliases
from repro.engine.optimizer import choose_build_side, order_tables_by_estimate
from repro.obs.tracer import Span
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog


def explain_query(query: ast.Query, catalog: Catalog) -> str:
    """A textual plan for a SELECT or UNION ALL against ``catalog``."""
    if isinstance(query, ast.UnionAll):
        parts = []
        for index, select in enumerate(query.selects):
            parts.append(f"UNION ALL arm {index}:")
            parts.append(_indent(_explain_select(select, catalog)))
        return "\n".join(parts)
    return _explain_select(query, catalog)


def explain_sql(sql_text: str, catalog: Catalog) -> str:
    """EXPLAIN for a SQL string (SELECT or INSERT..SELECT)."""
    statement = parse_statement(sql_text)
    if isinstance(statement, ast.SelectStatement):
        return explain_query(statement.query, catalog)
    if isinstance(statement, ast.InsertSelect):
        plan = explain_query(statement.query, catalog)
        return f"INSERT INTO {statement.table}\n{_indent(plan)}"
    raise ValueError(f"cannot explain statement {type(statement).__name__}")


def _explain_select(select: ast.Select, catalog: Catalog) -> str:
    return "\n".join(line for _, line in _explain_select_keyed(select, catalog))


def _explain_select_keyed(
    select: ast.Select, catalog: Catalog
) -> list[tuple[str | None, str]]:
    """Plan lines paired with the operator-span key each one maps to."""
    schemas = {
        ref.alias: catalog.get_table(ref.table).column_names for ref in select.tables
    }
    table_of = {ref.alias: ref.table for ref in select.tables}
    estimates = {
        alias: catalog.get_stats(table_of[alias]).num_rows for alias in schemas
    }

    join_edges = []
    filters = []
    anti_joins = []
    for predicate in select.where:
        if isinstance(predicate, ast.NotExists):
            anti_joins.append(predicate)
            continue
        left = expr_aliases(predicate.left, schemas)
        right = expr_aliases(predicate.right, schemas)
        if predicate.op == "=" and len(left) == 1 and len(right) == 1 and left != right:
            join_edges.append((next(iter(left)), next(iter(right)), predicate))
        else:
            filters.append(predicate)

    ordered = order_tables_by_estimate(estimates)
    lines: list[tuple[str | None, str]] = []
    current = ordered[0]
    lines.append(
        (
            f"scan:{current}",
            f"scan {table_of[current]} AS {current} (est. {estimates[current]} rows)",
        )
    )
    bound = {current}
    frame_estimate = estimates[current]
    for alias in ordered[1:]:
        edges = [
            predicate
            for a, b, predicate in join_edges
            if {a, b} == {alias} | ({a, b} & bound)
            and alias in (a, b)
            and ({a, b} - {alias}) <= bound
        ]
        decision = choose_build_side(frame_estimate, estimates[alias])
        side = "left(frame)" if decision.build_left else f"right({alias})"
        kind = "hash join" if edges else "cross join"
        condition = " AND ".join(str(p) for p in edges) if edges else "true"
        lines.append(
            (
                f"join:{alias}",
                f"{kind} {table_of[alias]} AS {alias} "
                f"(est. {estimates[alias]} rows) ON {condition} [build: {side}]",
            )
        )
        bound.add(alias)
        frame_estimate = max(frame_estimate, estimates[alias])
    for index, predicate in enumerate(filters):
        lines.append((f"filter:{index}", f"filter {predicate}"))
    for index, anti in enumerate(anti_joins):
        inner = ", ".join(ref.table for ref in anti.subquery.tables)
        lines.append((f"anti:{index}", f"anti join (NOT EXISTS over {inner})"))
    if select.group_by or any(
        isinstance(item.expr, ast.AggregateCall) for item in select.items
    ):
        keys = ", ".join(str(e) for e in select.group_by) or "<global>"
        lines.append(("aggregate", f"aggregate GROUP BY {keys}"))
    items = ", ".join(str(item) for item in select.items)
    lines.append(("project", f"project {items}"))
    return lines


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


# --------------------------------------------------------------------------
# EXPLAIN ANALYZE
# --------------------------------------------------------------------------


def explain_analyze_sql(sql_text: str, database) -> str:
    """Execute a SELECT / INSERT..SELECT and render the plan with actuals.

    ``database`` must carry a live profiler (``Database.explain_analyze``
    installs a temporary one). Each plan line gains an
    ``(actual: N rows, T s)`` suffix taken from the operator span whose
    key matches the line.
    """
    statement = parse_statement(sql_text)
    if isinstance(statement, ast.SelectStatement):
        query = statement.query
        prefix = None
    elif isinstance(statement, ast.InsertSelect):
        query = statement.query
        prefix = f"INSERT INTO {statement.table}"
    else:
        raise ValueError(f"cannot explain statement {type(statement).__name__}")

    catalog = database.catalog
    # Snapshot the plan *before* executing: INSERT..SELECT mutates tables,
    # and the point is to show the plan the optimizer chose going in.
    if isinstance(query, ast.UnionAll):
        arm_plans = [_explain_select_keyed(select, catalog) for select in query.selects]
    else:
        arm_plans = None
        plan = _explain_select_keyed(query, catalog)

    result = database.execute_ast(statement)
    stmt_span = database.profiler.tracer.roots[-1]

    if arm_plans is not None:
        lines: list[str] = []
        for index, keyed in enumerate(arm_plans):
            arm_span = _find_key(stmt_span, f"arm:{index}") or stmt_span
            lines.append(
                f"UNION ALL arm {index}:"
                f"  (actual: {_rows_text(arm_span)}, {arm_span.duration:.6f}s)"
            )
            lines.extend("  " + line for line in _annotate(keyed, arm_span))
        body = "\n".join(lines)
    else:
        body = "\n".join(_annotate(plan, stmt_span))

    if prefix is not None:
        body = f"{prefix}\n{_indent(body)}"
    total_rows = (
        int(result.shape[0]) if result is not None else stmt_span.attrs.get("rows_out")
    )
    footer = (
        f"actual: {total_rows if total_rows is not None else '?'} rows "
        f"in {stmt_span.duration:.6f} simulated seconds"
    )
    return f"{body}\n{footer}"


def _find_key(scope: Span, key: str) -> Span | None:
    for span in scope.walk():
        if span.attrs.get("key") == key:
            return span
    return None


def _annotate(keyed: list[tuple[str | None, str]], scope: Span) -> list[str]:
    """Suffix each plan line with actuals from the matching span.

    First match wins on duplicate keys: pre-order traversal guarantees the
    outer query's spans precede any identically-aliased spans inside a
    NOT EXISTS subquery (anti-joins run after the outer join pipeline).
    """
    by_key: dict[str, Span] = {}
    for span in scope.walk():
        key = span.attrs.get("key")
        if key is not None and key not in by_key:
            by_key[key] = span
    out = []
    for key, line in keyed:
        span = by_key.get(key) if key is not None else None
        if span is None and key == "project":
            # Aggregation performs the projection in one pass.
            span = by_key.get("aggregate")
        if span is None:
            out.append(f"{line}  (actual: not executed)")
        else:
            out.append(f"{line}  (actual: {_rows_text(span)}, {span.duration:.6f}s)")
    return out


def _rows_text(span: Span) -> str:
    rows = span.attrs.get("rows_out")
    return f"{int(rows):,} rows" if rows is not None else "rows n/a"

"""Cost-based planning decisions.

The optimizer sees *catalog statistics*, not live tables. Statistics are
refreshed only by explicit ANALYZE calls, so when the interpreter runs
with OOF disabled (OOF-NA) the estimates here go stale and the planner
keeps picking first-iteration join orders and build sides — the exact
failure mode Figure 2 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import (
    BUILD_PHASE,
    COST_BUILD,
    COST_PARTITION,
    COST_PROBE,
    DEDUP_PHASE,
    PARTITION_PHASE,
    PARTITIONED_BUILD_PHASE,
    PARTITIONED_DEDUP_PHASE,
    PARTITIONED_PROBE_PHASE,
    PROBE_PHASE,
    ParallelCostModel,
    PhaseKind,
)
from repro.storage.block import block_count


@dataclass(frozen=True)
class BuildSideDecision:
    """Which join input the hash table is built on."""

    build_left: bool
    estimated_build_rows: int


def choose_build_side(left_estimate: int, right_estimate: int) -> BuildSideDecision:
    """Build on the side the statistics claim is smaller (ties: left)."""
    if left_estimate <= right_estimate:
        return BuildSideDecision(build_left=True, estimated_build_rows=left_estimate)
    return BuildSideDecision(build_left=False, estimated_build_rows=right_estimate)


def join_cost_estimate(build_rows: int, probe_rows: int) -> float:
    """Estimated cost of a hash join given the chosen build side."""
    return build_rows * COST_BUILD + probe_rows * COST_PROBE


def cached_join_cost_estimate(extension_rows: int, probe_rows: int) -> float:
    """Estimated cost of probing a persistent join index.

    Build-once/probe-many: the build charge covers only the rows the
    index does not hold yet (the appended Δ since the last iteration, or
    the whole table on a cold miss), so on a warm index the join costs
    probes alone.
    """
    return extension_rows * COST_BUILD + probe_rows * COST_PROBE


def order_tables_by_estimate(estimates: dict[str, int]) -> list[str]:
    """Aliases ordered by estimated cardinality (ascending, name-stable)."""
    return sorted(estimates, key=lambda alias: (estimates[alias], alias))


# --------------------------------------------------------------------------
# Partitioned-vs-shared execution (the radix escape from Figure 8's plateau)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionDecision:
    """Whether an operator should run radix-partitioned.

    Carries both modeled makespans so spans/tests can see the margin the
    decision was made on.
    """

    partitioned: bool
    shared_estimate: float
    partitioned_estimate: float


def _phase_sequence_estimate(
    cost_model: ParallelCostModel,
    phases: list[tuple[PhaseKind, float, int]],
) -> float:
    """Sum of predicted makespans of a sequence of barrier-separated phases."""
    return sum(
        cost_model.estimate_phase_time(kind, cost, tasks)
        for kind, cost, tasks in phases
    )


def partitioned_dedup_decision(
    cost_model: ParallelCostModel,
    partitions: int,
    rows: int,
    per_tuple_cost: float,
) -> PartitionDecision:
    """Shared GSCHT dedup vs radix scatter + per-bucket private tables.

    Partitioning replaces the dedup phase's heavy shared-table contention
    with a cheap scatter pass plus near-contention-free bucket work, but
    pays an extra barrier and the scatter itself — tiny deltas stay
    shared, and at low thread counts (no contention to remove) the
    scatter never wins.
    """
    shared = _phase_sequence_estimate(
        cost_model, [(DEDUP_PHASE, rows * per_tuple_cost, block_count(rows))]
    )
    partitioned = _phase_sequence_estimate(
        cost_model,
        [
            (PARTITION_PHASE, rows * COST_PARTITION, block_count(rows)),
            (PARTITIONED_DEDUP_PHASE, rows * per_tuple_cost, partitions),
        ],
    )
    return PartitionDecision(partitioned < shared, shared, partitioned)


def partitioned_join_decision(
    cost_model: ParallelCostModel,
    partitions: int,
    build_rows: int,
    probe_rows: int,
) -> PartitionDecision:
    """Shared hash build/probe vs radix scatter of both sides.

    The scatter covers build *and* probe rows; per-bucket builds escape
    the shared build phase's contention. Build-heavy operators (OPSD's
    hash over R, balanced joins) win; probe-dominated joins don't, and
    correctly stay shared.
    """
    shared = _phase_sequence_estimate(
        cost_model,
        [
            (BUILD_PHASE, build_rows * COST_BUILD, block_count(build_rows)),
            (PROBE_PHASE, probe_rows * COST_PROBE, block_count(probe_rows)),
        ],
    )
    scatter_rows = build_rows + probe_rows
    partitioned = _phase_sequence_estimate(
        cost_model,
        [
            (PARTITION_PHASE, scatter_rows * COST_PARTITION, block_count(scatter_rows)),
            (PARTITIONED_BUILD_PHASE, build_rows * COST_BUILD, partitions),
            (PARTITIONED_PROBE_PHASE, probe_rows * COST_PROBE, partitions),
        ],
    )
    return PartitionDecision(partitioned < shared, shared, partitioned)

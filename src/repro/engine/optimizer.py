"""Cost-based planning decisions.

The optimizer sees *catalog statistics*, not live tables. Statistics are
refreshed only by explicit ANALYZE calls, so when the interpreter runs
with OOF disabled (OOF-NA) the estimates here go stale and the planner
keeps picking first-iteration join orders and build sides — the exact
failure mode Figure 2 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import COST_BUILD, COST_PROBE


@dataclass(frozen=True)
class BuildSideDecision:
    """Which join input the hash table is built on."""

    build_left: bool
    estimated_build_rows: int


def choose_build_side(left_estimate: int, right_estimate: int) -> BuildSideDecision:
    """Build on the side the statistics claim is smaller (ties: left)."""
    if left_estimate <= right_estimate:
        return BuildSideDecision(build_left=True, estimated_build_rows=left_estimate)
    return BuildSideDecision(build_left=False, estimated_build_rows=right_estimate)


def join_cost_estimate(build_rows: int, probe_rows: int) -> float:
    """Estimated cost of a hash join given the chosen build side."""
    return build_rows * COST_BUILD + probe_rows * COST_PROBE


def cached_join_cost_estimate(extension_rows: int, probe_rows: int) -> float:
    """Estimated cost of probing a persistent join index.

    Build-once/probe-many: the build charge covers only the rows the
    index does not hold yet (the appended Δ since the last iteration, or
    the whole table on a cold miss), so on a warm index the join costs
    probes alone.
    """
    return extension_rows * COST_BUILD + probe_rows * COST_PROBE


def order_tables_by_estimate(estimates: dict[str, int]) -> list[str]:
    """Aliases ordered by estimated cardinality (ascending, name-stable)."""
    return sorted(estimates, key=lambda alias: (estimates[alias], alias))

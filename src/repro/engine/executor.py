"""Simulated multicore scheduling.

The paper's server has 20 physical Haswell cores (40 hyperthreads). We
reproduce its parallel behaviour with an explicit cost model: operators
split work into per-block tasks, and a phase's simulated elapsed time is
the makespan of greedily scheduling those tasks onto ``threads`` virtual
workers. Two effects from the paper are modeled explicitly:

* hyperthreads beyond the physical core count yield only a fraction of a
  core (Figure 8 gains little past 20 threads);
* phases that hammer one shared structure (the global dedup hash table)
  pay a contention penalty growing with the worker count, producing the
  speedup plateau past 16 threads the paper attributes to
  "synchronization/scheduling primitive around the common shared hash
  table".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.obs.profiler import NULL_PROFILER

#: Per-tuple cost constants (simulated seconds). Tuned so the scaled-down
#: datasets land in the paper's runtime ballpark; only ratios matter for
#: the reproduced shapes. The build/probe ratio is the DSD alpha.
COST_PROBE = 4.0e-7
COST_BUILD = 8.0e-7
COST_SCAN = 1.0e-7
COST_MATERIALIZE = 1.5e-7
COST_DEDUP_FAST = 5.0e-7
COST_DEDUP_SLOW = 1.25e-6
COST_AGGREGATE = 7.0e-7
COST_BITOP = 2.0e-9
#: Per-tuple cost of the radix scatter pass (hash, histogram, copy out).
#: A sequential streaming write — cheaper than a probe, but a real pass
#: that tiny inputs cannot amortize; the partition decision weighs it.
COST_PARTITION = 1.5e-7

#: Fixed cost of dispatching one SQL query (parse, plan, catalog work).
#: This is the overhead that UIE amortizes and that dominates CSDA's ~1000
#: tiny iterations.
QUERY_DISPATCH_OVERHEAD = 6.0e-3
#: Barrier/fork-join overhead per parallel phase.
PHASE_BARRIER_OVERHEAD = 1.2e-4


@dataclass(frozen=True)
class PhaseKind:
    """Contention class of a parallel phase."""

    name: str
    contention: float  # fraction of parallel efficiency lost at full width


SCAN_PHASE = PhaseKind("scan", 0.05)
PROBE_PHASE = PhaseKind("probe", 0.10)
BUILD_PHASE = PhaseKind("build", 0.20)
DEDUP_PHASE = PhaseKind("dedup", 0.38)
AGGREGATE_PHASE = PhaseKind("aggregate", 0.25)
BITMATRIX_PHASE = PhaseKind("bitmatrix", 0.02)

#: Radix-partitioned execution (Section 6 outlook / the partitioned-layout
#: escape from the Figure 8 plateau). The scatter pass writes disjoint
#: per-worker output runs, and each bucket's build/probe/dedup touches a
#: private structure — no shared hash table, so almost none of the
#: contention penalty the shared phases pay.
PARTITION_PHASE = PhaseKind("partition", 0.04)
PARTITIONED_BUILD_PHASE = PhaseKind("p_build", 0.03)
PARTITIONED_PROBE_PHASE = PhaseKind("p_probe", 0.03)
PARTITIONED_DEDUP_PHASE = PhaseKind("p_dedup", 0.05)


@dataclass
class PhaseOutcome:
    """Scheduling result for one parallel phase."""

    makespan: float
    total_work: float
    efficiency: float  # total_work / (workers * makespan), in [0, 1]
    #: Workers the phase actually occupied (min(threads, tasks)); lets
    #: callers convert per-worker efficiency into machine utilization.
    workers: int = 1
    #: Injected worker failures whose tasks were re-executed (fault
    #: harness only; the rerun time is already inside ``makespan``).
    task_reruns: int = 0

    def machine_utilization(self, threads: int) -> float:
        """Fraction of the whole machine kept busy during the phase."""
        if threads <= 0:
            return self.efficiency
        return min(1.0, self.efficiency * self.workers / threads)


@dataclass
class ParallelCostModel:
    """Converts task-cost lists into simulated phase times.

    Attributes:
        threads: virtual worker count (the experiment's thread knob).
        physical_cores: cores before hyperthreading kicks in.
        ht_yield: fraction of a core an extra hyperthread contributes.
    """

    threads: int = 20
    physical_cores: int = 20
    ht_yield: float = 0.20
    history: list[tuple[str, PhaseOutcome]] = field(default_factory=list)
    #: Observability sink: phase runs/busy-time land in its counters and
    #: on the innermost open span. The default is the inert profiler.
    profiler: object = field(default=NULL_PROFILER, repr=False)
    #: Fault-injection harness: when set, phases consult it for
    #: deterministic per-task worker failures (the failed task's work is
    #: re-executed and lands in the makespan). None = no injection.
    injector: object = field(default=None, repr=False)

    def effective_width(self, kind: PhaseKind) -> float:
        """Usable parallelism for a phase of the given contention class."""
        k = max(1, self.threads)
        raw = min(k, self.physical_cores) + self.ht_yield * max(0, k - self.physical_cores)
        saturation = min(k, self.physical_cores) / self.physical_cores
        return max(1.0, raw * (1.0 - kind.contention * saturation))

    def run_phase(self, kind: PhaseKind, task_costs: list[float]) -> PhaseOutcome:
        """Schedule ``task_costs`` onto the workers; return the makespan."""
        if not task_costs:
            outcome = PhaseOutcome(0.0, 0.0, 1.0)
            self.history.append((kind.name, outcome))
            self.profiler.counters.inc(f"phase_{kind.name}_runs")
            return outcome
        total = float(sum(task_costs))
        width = self.effective_width(kind)
        worker_count = max(1, min(self.threads, len(task_costs)))
        if worker_count == 1:
            makespan = total
        else:
            makespan = _lpt_makespan(task_costs, worker_count)
            # Contention/hyperthreading stretch: scheduled time cannot beat
            # the work/width bound.
            makespan = max(makespan, total / width)
        reruns = 0
        if self.injector is not None:
            # Injected worker failure: the task's work is lost and redone
            # at the end of the phase (a straggler everyone waits for).
            reruns = self.injector.task_reruns(kind.name, len(task_costs))
            if reruns:
                rerun_cost = reruns * (total / len(task_costs))
                total += rerun_cost
                makespan += rerun_cost
                self.profiler.counters.inc("faults_worker_failures", reruns)
        makespan += PHASE_BARRIER_OVERHEAD
        # Efficiency of the workers this phase actually occupied — small
        # phases that fill only a few workers are no longer penalized for
        # the idle rest of the machine (that conversion lives in
        # ``machine_utilization``).
        busy = total / (worker_count * makespan) if makespan > 0 else 1.0
        outcome = PhaseOutcome(makespan, total, min(1.0, busy), worker_count, reruns)
        self.history.append((kind.name, outcome))
        self.profiler.counters.inc(f"phase_{kind.name}_runs")
        self.profiler.add_phase_time(kind.name, outcome.makespan)
        return outcome

    def estimate_phase_time(
        self, kind: PhaseKind, total_cost: float, num_tasks: int
    ) -> float:
        """Predicted makespan of a phase, without running it.

        The optimizer's half of :meth:`run_phase`: same width/worker
        bounds and barrier overhead, assuming evenly sized tasks —
        including the LPT quantization a real schedule pays when the
        task count does not divide the workers (64 equal tasks on 20
        workers finish in 4 rounds, not 3.2). The partitioned-vs-shared
        decision compares phase sequences with this.
        """
        if total_cost <= 0:
            return 0.0
        tasks = max(1, num_tasks)
        workers = max(1, min(self.threads, tasks))
        rounds = -(-tasks // workers)
        quantized = rounds * (total_cost / tasks)
        width = self.effective_width(kind)
        return max(quantized, total_cost / width) + PHASE_BARRIER_OVERHEAD

    def serial_time(self, cost: float) -> float:
        """Time for inherently serial work (control loop, query dispatch)."""
        return cost


def _lpt_makespan(task_costs: list[float], workers: int) -> float:
    """Longest-processing-time-first greedy makespan."""
    loads = [0.0] * workers
    heapq.heapify(loads)
    for cost in sorted(task_costs, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + cost)
    return max(loads)


def split_tasks(total_cost: float, num_blocks: int) -> list[float]:
    """Divide an operator's total cost into per-block task costs."""
    blocks = max(1, num_blocks)
    return [total_cost / blocks] * blocks

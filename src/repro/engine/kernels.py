"""Vectorized relational kernels.

These are the NumPy equivalents of QuickStep's operator implementations:
key packing (the compact concatenated key of Figure 5), hash-equivalent
equi-joins, anti-joins, row deduplication, and sorted group-by reduction.
All kernels are pure: they never mutate their inputs — except
:class:`RowDictionary`, whose whole point is to carry factorization state
across calls.

Key packing comes in two flavours:

* **Domain-stable** (:class:`KeyCodec`, ``pack_columns(..., domains=...)``):
  offsets and widths come from explicit :class:`~repro.storage.stats.
  ColumnDomain` values, so the same tuple packs to the same code in every
  call. This is what the iteration-persistent join-state cache relies on.
* **Call-local** (legacy ``pack_columns(columns)``): offsets derive from
  each call's observed min/max. Codes from two different calls live in
  unrelated coordinate systems; comparing them silently produced garbage
  matches. Such keys are now tagged with a per-call token and the join
  kernels raise :class:`~repro.common.errors.KeyPackingError` on
  cross-call reuse.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.common.errors import KeyPackingError
from repro.storage.stats import ColumnDomain, observed_domain

#: CCK keys must fit a signed int64: 63 usable bits (Figure 5).
MAX_PACK_BITS = 63

# --------------------------------------------------------------------------
# Key packing (compact concatenated key, Figure 5)
# --------------------------------------------------------------------------

_pack_call_tokens = itertools.count(1)


class _LocalPackedKey(np.ndarray):
    """An int64 key column packed with one call's local offsets.

    The ``_pack_token`` identifies the packing call; keys carrying
    different tokens are incomparable (their codes use different
    per-column offsets). The token survives slicing and masking via
    ``__array_finalize__``.
    """

    _pack_token: int | None = None

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._pack_token = getattr(obj, "_pack_token", None)


def _tag_local(key: np.ndarray) -> np.ndarray:
    tagged = key.view(_LocalPackedKey)
    tagged._pack_token = next(_pack_call_tokens)
    return tagged


def _check_comparable(left_keys: np.ndarray, right_keys: np.ndarray) -> None:
    """Reject comparisons between keys packed by different local calls."""
    left_token = getattr(left_keys, "_pack_token", None)
    right_token = getattr(right_keys, "_pack_token", None)
    if left_token is not None and right_token is not None and left_token != right_token:
        raise KeyPackingError(
            "packed keys from different pack_columns calls are incomparable: "
            "each call derives offsets from its own min/max; pack both sides "
            "in one call (make_join_keys) or use a domain-stable KeyCodec"
        )


def pack_width_bits(columns: list[np.ndarray]) -> int:
    """Total CCK bits these columns need (cheap min/max scan, no key built).

    The pre-flight counterpart of :func:`pack_columns`: callers compare
    the result against :data:`MAX_PACK_BITS` to predict whether the
    compact-key path applies, without paying for the packed column.
    """
    if not columns:
        raise ValueError("pack_width_bits requires at least one column")
    if len(columns) == 1:
        return 1
    return sum(observed_domain(column).bits for column in columns)


def pack_columns(
    columns: list[np.ndarray], domains: list[ColumnDomain] | None = None
) -> np.ndarray | None:
    """Pack several int64 columns into one int64 key column, if they fit.

    Mirrors the paper's CCK: the concatenation of fixed-width attribute
    encodings *is* the key (and its own hash). Returns ``None`` when the
    combined bit width exceeds 63 bits; callers then fall back to
    factorization.

    With explicit ``domains`` the encoding is *stable*: codes are
    comparable across calls (values outside their domain raise
    :class:`KeyPackingError`). Without domains the offsets are the call's
    observed minima and the result is tagged call-local — comparing it
    against another call's key raises in the join kernels.
    """
    if not columns:
        raise ValueError("pack_columns requires at least one column")
    if domains is not None and len(domains) != len(columns):
        raise ValueError("pack_columns got mismatched domain count")
    if len(columns) == 1:
        return columns[0]
    if domains is not None:
        codec = KeyCodec(domains)
        if not codec.packable:
            return None
        return codec.pack(columns)
    bits_needed: list[int] = []
    offsets: list[int] = []
    for column in columns:
        domain = observed_domain(column)
        offsets.append(domain.low)
        bits_needed.append(domain.bits)
    if sum(bits_needed) > MAX_PACK_BITS:
        return None
    key = np.zeros(columns[0].shape[0], dtype=np.int64)
    for column, bits, offset in zip(columns, bits_needed, offsets):
        key <<= np.int64(bits)
        key |= column - np.int64(offset)
    return _tag_local(key)


class KeyCodec:
    """Domain-stable CCK encoder: fixed offsets, comparable across calls.

    A codec built once (domains registered in the catalog) assigns the
    same int64 code to the same tuple forever, which is what lets a
    persistent sorted-code index be *extended* with each iteration's Δ
    instead of rebuilt.
    """

    def __init__(self, domains: list[ColumnDomain]) -> None:
        if not domains:
            raise ValueError("KeyCodec requires at least one domain")
        self.domains: tuple[ColumnDomain, ...] = tuple(domains)
        self._bits = [domain.bits for domain in self.domains]
        self.total_bits = sum(self._bits)
        #: Single-column keys are the identity encoding: always stable.
        self.packable = len(self.domains) == 1 or self.total_bits <= MAX_PACK_BITS

    def fits(self, columns: list[np.ndarray]) -> bool:
        """True when every column stays inside its declared domain."""
        if len(columns) != len(self.domains):
            return False
        for domain, column in zip(self.domains, columns):
            if column.size == 0:
                continue
            if not domain.contains(int(column.min()), int(column.max())):
                return False
        return True

    def pack(self, columns: list[np.ndarray]) -> np.ndarray:
        """Encode columns to stable codes; out-of-domain values raise."""
        if len(columns) == 1:
            return columns[0]
        if not self.packable:
            raise KeyPackingError(
                f"key needs {self.total_bits} bits, over the {MAX_PACK_BITS}-bit CCK limit"
            )
        if not self.fits(columns):
            raise KeyPackingError(
                "value outside the codec's declared column domains",
            )
        key = np.zeros(columns[0].shape[0], dtype=np.int64)
        for column, bits, domain in zip(columns, self._bits, self.domains):
            key <<= np.int64(bits)
            key |= column - np.int64(domain.low)
        return key

    def pack_probe(self, columns: list[np.ndarray]) -> np.ndarray:
        """Encode probe-side columns, mapping out-of-domain rows to -1.

        Stable codes are non-negative, so a -1 probe never matches an
        indexed key — exactly the semantics of probing a hash table with
        a value that was never inserted.
        """
        if len(columns) == 1:
            return columns[0]
        if not self.packable:
            raise KeyPackingError(
                f"key needs {self.total_bits} bits, over the {MAX_PACK_BITS}-bit CCK limit"
            )
        n = columns[0].shape[0]
        key = np.zeros(n, dtype=np.int64)
        valid = np.ones(n, dtype=bool)
        for column, bits, domain in zip(columns, self._bits, self.domains):
            valid &= (column >= domain.low) & (column <= domain.high)
            clipped = np.clip(column, domain.low, domain.high)
            key <<= np.int64(bits)
            key |= clipped - np.int64(domain.low)
        key[~valid] = -1
        return key


class RowDictionary:
    """Incremental row → dense-code dictionary (persistent factorization).

    The stateful replacement for re-running ``np.unique`` over
    ``vstack(full, delta)`` every iteration: rows seen before keep their
    code; only unseen Δ rows are assigned fresh codes. Rows are compared
    via a structured int64 view (lexicographic field order), so lookups
    are one ``searchsorted`` against the sorted known rows.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("RowDictionary requires width >= 1")
        self.width = int(width)
        self._dtype = np.dtype([(f"f{i}", np.int64) for i in range(self.width)])
        self._sorted_rows = np.empty(0, dtype=self._dtype)
        self._sorted_codes = np.empty(0, dtype=np.int64)
        self._next_code = 0

    def __len__(self) -> int:
        return int(self._sorted_rows.shape[0])

    def memory_bytes(self) -> int:
        return int(self._sorted_rows.nbytes + self._sorted_codes.nbytes)

    def _as_records(self, rows: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != self.width:
            raise ValueError(
                f"RowDictionary of width {self.width} cannot encode shape {rows.shape}"
            )
        return rows.view(self._dtype).ravel()

    def encode(self, rows: np.ndarray, extend: bool = False) -> np.ndarray:
        """Codes for ``rows``; known rows always get their stored code.

        With ``extend=True`` unseen rows receive fresh persistent codes
        (the dictionary grows). Without it they receive transient codes
        ``>= next_code`` — distinct from every stored code, so equality
        semantics against dictionary-encoded data still hold.
        """
        records = self._as_records(rows)
        n = records.shape[0]
        codes = np.empty(n, dtype=np.int64)
        if self._sorted_rows.size:
            positions = np.searchsorted(self._sorted_rows, records)
            clipped = np.minimum(positions, self._sorted_rows.size - 1)
            found = self._sorted_rows[clipped] == records
            codes[found] = self._sorted_codes[clipped[found]]
        else:
            found = np.zeros(n, dtype=bool)
        unseen = ~found
        if unseen.any():
            unique, inverse = np.unique(records[unseen], return_inverse=True)
            codes[unseen] = self._next_code + inverse
            if extend:
                fresh = self._next_code + np.arange(unique.size, dtype=np.int64)
                insert_at = np.searchsorted(self._sorted_rows, unique)
                self._sorted_rows = np.insert(self._sorted_rows, insert_at, unique)
                self._sorted_codes = np.insert(self._sorted_codes, insert_at, fresh)
                self._next_code += int(unique.size)
        return codes


def factorize_rows(
    left: np.ndarray, right: np.ndarray, dictionary: RowDictionary | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Map the rows of two equal-arity matrices to a shared integer code.

    Fallback for keys too wide to pack. Without a ``dictionary`` it
    sorts the union and assigns dense codes — O((|left|+|right|)·log)
    every call. With one, previously seen rows reuse their cached code
    and only unseen ``right`` rows are assigned (and persisted) fresh
    codes, so repeated calls over a growing ``right`` pay for the new
    rows only.
    """
    if dictionary is not None:
        right_codes = dictionary.encode(right, extend=True)
        left_codes = dictionary.encode(left, extend=False)
        return left_codes, right_codes
    combined = np.vstack([left, right])
    _, inverse = np.unique(combined, axis=0, return_inverse=True)
    return inverse[: left.shape[0]], inverse[left.shape[0]:]


def make_join_keys(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Produce comparable int64 key columns for both sides of an equi-join."""
    if len(left_columns) != len(right_columns):
        raise ValueError("join key column counts differ")
    packed_left = pack_columns(left_columns) if left_columns else None
    packed_right = pack_columns(right_columns) if right_columns else None
    if packed_left is not None and packed_right is not None:
        # Packing uses per-side offsets; they must agree for comparability.
        # Recompute with the shared domain per key position.
        domains = [
            observed_domain(l).widened(*_domain_bounds(r))
            for l, r in zip(left_columns, right_columns)
        ]
        if sum(domain.bits for domain in domains) <= MAX_PACK_BITS:
            codec = KeyCodec(domains)
            return codec.pack(left_columns), codec.pack(right_columns)
    left_matrix = np.column_stack(left_columns) if left_columns else np.empty((0, 0), np.int64)
    right_matrix = np.column_stack(right_columns) if right_columns else np.empty((0, 0), np.int64)
    return factorize_rows(left_matrix, right_matrix)


def _domain_bounds(values: np.ndarray) -> tuple[int, int]:
    domain = observed_domain(values)
    return domain.low, domain.high


# --------------------------------------------------------------------------
# Joins
# --------------------------------------------------------------------------


def equi_join_count(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact output cardinality of the equi-join, without materializing it.

    Costs one sort + two binary searches; operators call this before
    ``equi_join_indices`` so the memory model can reject oversized
    intermediates *before* they exist.
    """
    _check_comparable(left_keys, right_keys)
    if left_keys.size == 0 or right_keys.size == 0:
        return 0
    sorted_right = np.sort(right_keys)
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    return int((ends - starts).sum())


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return aligned (left_index, right_index) arrays of all key matches.

    Sort-probe implementation with the same asymptotics as a hash join;
    the cost model, not this kernel, decides which side is "built".
    """
    _check_comparable(left_keys, right_keys)
    if left_keys.size == 0 or right_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    left_index, right_sorted_positions = _expand_match_runs(starts, ends)
    if left_index.size == 0:
        return left_index, right_sorted_positions
    return left_index, order[right_sorted_positions]


def _expand_match_runs(
    starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe [start, end) runs into aligned index pairs."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_index = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    # Positions within each run of matches, then offset by the run start.
    boundaries = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(boundaries - counts, counts)
    sorted_positions = np.repeat(starts, counts) + within
    return left_index, sorted_positions


# --------------------------------------------------------------------------
# Sorted-index probes (the join-state cache's kernels)
# --------------------------------------------------------------------------


def sorted_probe_range(
    probe_keys: np.ndarray, sorted_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-probe [start, end) match runs against an already sorted index."""
    starts = np.searchsorted(sorted_keys, probe_keys, side="left")
    ends = np.searchsorted(sorted_keys, probe_keys, side="right")
    return starts, ends


def sorted_join_indices(
    starts: np.ndarray, ends: np.ndarray, sorted_positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize (probe_index, table_position) pairs from probe runs.

    ``sorted_positions[i]`` is the table row that sorted key ``i`` came
    from, so no per-call argsort is needed — that is the entire point of
    keeping the index alive between iterations.
    """
    probe_index, run_positions = _expand_match_runs(starts, ends)
    if probe_index.size == 0:
        return probe_index, run_positions
    return probe_index, sorted_positions[run_positions]


def isin_sorted(probe_keys: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership mask of ``probe_keys`` against a sorted key array."""
    if probe_keys.size == 0:
        return np.zeros(0, dtype=bool)
    if sorted_keys.size == 0:
        return np.zeros(probe_keys.size, dtype=bool)
    starts, ends = sorted_probe_range(probe_keys, sorted_keys)
    return ends > starts


def merge_sorted_index(
    sorted_keys: np.ndarray,
    sorted_positions: np.ndarray,
    new_keys: np.ndarray,
    new_positions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge Δ's (keys, positions) into a sorted index — O(|F| + |Δ|).

    Appended rows are inserted after existing equal keys, keeping the
    within-key position order stable (matches what a full stable argsort
    over the grown table would produce).
    """
    if new_keys.size == 0:
        return sorted_keys, sorted_positions
    order = np.argsort(new_keys, kind="stable")
    new_keys = new_keys[order]
    new_positions = new_positions[order]
    if sorted_keys.size == 0:
        return new_keys, new_positions
    insert_at = np.searchsorted(sorted_keys, new_keys, side="right")
    merged_keys = np.insert(sorted_keys, insert_at, new_keys)
    merged_positions = np.insert(sorted_positions, insert_at, new_positions)
    return merged_keys, merged_positions


# --------------------------------------------------------------------------
# Radix partitioning
# --------------------------------------------------------------------------

#: Fibonacci-hashing multiplier (2^64 / φ): scrambles the key bits so the
#: top ``log2(P)`` bits spread skewed key ranges evenly across buckets.
_RADIX_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def radix_partition_ids(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Bucket id per key, from the top bits of a multiplicative hash.

    ``num_partitions`` must be a positive power of two. Equal keys always
    land in the same bucket — the property every partitioned kernel
    relies on to stay byte-identical with its shared counterpart.
    """
    if num_partitions < 1 or num_partitions & (num_partitions - 1):
        raise ValueError("num_partitions must be a positive power of two")
    if num_partitions == 1:
        return np.zeros(keys.shape[0], dtype=np.int64)
    scrambled = np.asarray(keys).astype(np.uint64) * _RADIX_MULTIPLIER
    bits = num_partitions.bit_length() - 1
    return (scrambled >> np.uint64(64 - bits)).astype(np.int64)


def radix_partition(
    keys: np.ndarray, num_partitions: int
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter ``keys`` into radix buckets.

    Returns ``(order, offsets)``: ``order`` is the stable permutation
    grouping row indices by bucket, and bucket ``p`` owns
    ``order[offsets[p]:offsets[p + 1]]``. Stability means each bucket
    lists its rows in original order — this is what lets the partitioned
    kernels reproduce the shared kernels' output exactly.
    """
    ids = radix_partition_ids(keys, num_partitions)
    order = np.argsort(ids, kind="stable")
    counts = np.bincount(ids, minlength=num_partitions)
    offsets = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


def partition_counts(offsets: np.ndarray) -> np.ndarray:
    """Per-bucket row counts from a ``radix_partition`` offsets array."""
    return np.diff(offsets)


def partitioned_unique_indices(
    key: np.ndarray, order: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Global first-occurrence indices of distinct keys, per-bucket.

    Every duplicate of a key shares its bucket, and buckets list rows in
    ascending original order, so the per-bucket ``np.unique`` first
    occurrence *is* the global one. The sorted concatenation equals what
    ``np.unique(key, return_index=True)`` finds over the whole array.
    """
    plain = np.asarray(key)
    keep: list[np.ndarray] = []
    for p in range(offsets.shape[0] - 1):
        bucket = order[offsets[p]:offsets[p + 1]]
        if bucket.size == 0:
            continue
        _, first = np.unique(plain[bucket], return_index=True)
        keep.append(bucket[first])
    if not keep:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(keep))


def partitioned_semi_join_mask(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_layout: tuple[np.ndarray, np.ndarray],
    right_layout: tuple[np.ndarray, np.ndarray],
) -> np.ndarray:
    """Per-bucket :func:`semi_join_mask`, scattered back to a global mask.

    Identical to the shared mask: membership is per-row, and matching
    keys share a bucket by construction.
    """
    _check_comparable(left_keys, right_keys)
    left_order, left_offsets = left_layout
    right_order, right_offsets = right_layout
    left_plain = np.asarray(left_keys)
    right_plain = np.asarray(right_keys)
    mask = np.zeros(left_plain.shape[0], dtype=bool)
    for p in range(left_offsets.shape[0] - 1):
        bucket = left_order[left_offsets[p]:left_offsets[p + 1]]
        if bucket.size == 0:
            continue
        other = right_order[right_offsets[p]:right_offsets[p + 1]]
        if other.size == 0:
            continue
        mask[bucket] = np.isin(left_plain[bucket], right_plain[other])
    return mask


def partitioned_equi_join_indices(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_layout: tuple[np.ndarray, np.ndarray],
    right_layout: tuple[np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bucket :func:`equi_join_indices`, restored to the shared order.

    The shared kernel emits pairs sorted by ``(left_index, right_index)``
    (the stable right-side argsort keeps equal-key right rows in index
    order), so a final lexsort over the concatenated per-bucket pairs
    reproduces its output exactly.
    """
    _check_comparable(left_keys, right_keys)
    left_order, left_offsets = left_layout
    right_order, right_offsets = right_layout
    pairs_left: list[np.ndarray] = []
    pairs_right: list[np.ndarray] = []
    for p in range(left_offsets.shape[0] - 1):
        bucket = left_order[left_offsets[p]:left_offsets[p + 1]]
        other = right_order[right_offsets[p]:right_offsets[p + 1]]
        if bucket.size == 0 or other.size == 0:
            continue
        local_left, local_right = equi_join_indices(
            left_keys[bucket], right_keys[other]
        )
        if local_left.size == 0:
            continue
        pairs_left.append(bucket[local_left])
        pairs_right.append(other[local_right])
    if not pairs_left:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_index = np.concatenate(pairs_left)
    right_index = np.concatenate(pairs_right)
    final = np.lexsort((right_index, left_index))
    return left_index[final], right_index[final]


# --------------------------------------------------------------------------
# Semi/anti joins
# --------------------------------------------------------------------------


def semi_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows whose key appears in ``right_keys``."""
    _check_comparable(left_keys, right_keys)
    if left_keys.size == 0:
        return np.zeros(0, dtype=bool)
    if right_keys.size == 0:
        return np.zeros(left_keys.size, dtype=bool)
    return np.isin(left_keys, right_keys)


def anti_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows whose key does NOT appear in ``right_keys``."""
    return ~semi_join_mask(left_keys, right_keys)


# --------------------------------------------------------------------------
# Deduplication
# --------------------------------------------------------------------------


def unique_rows(rows: np.ndarray) -> np.ndarray:
    """Row-level dedup preserving no particular order (set semantics)."""
    if rows.shape[0] == 0:
        return rows.copy()
    if rows.shape[1] == 1:
        return np.unique(rows[:, 0]).reshape(-1, 1)
    key = pack_columns([rows[:, i] for i in range(rows.shape[1])])
    if key is not None:
        _, first_index = np.unique(key, return_index=True)
        return rows[np.sort(first_index)]
    return np.unique(rows, axis=0)


def rows_difference(new_rows: np.ndarray, existing_rows: np.ndarray) -> np.ndarray:
    """Set difference ``new_rows - existing_rows`` (both deduplicated first).

    The arithmetic core shared by both OPSD and TPSD; the two strategies
    differ only in which side is hashed and whether an intersection is
    materialized, which the DSD cost model accounts for.
    """
    new_unique = unique_rows(new_rows)
    if existing_rows.shape[0] == 0:
        return new_unique
    if new_unique.shape[0] == 0:
        return new_unique
    left_cols = [new_unique[:, i] for i in range(new_unique.shape[1])]
    right_cols = [existing_rows[:, i] for i in range(existing_rows.shape[1])]
    left_keys, right_keys = make_join_keys(left_cols, right_cols)
    return new_unique[anti_join_mask(left_keys, right_keys)]


def rows_intersection(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Distinct rows appearing in both matrices (TPSD's first phase)."""
    left_unique = unique_rows(left)
    if left_unique.shape[0] == 0 or right.shape[0] == 0:
        return left_unique[:0]
    left_cols = [left_unique[:, i] for i in range(left_unique.shape[1])]
    right_cols = [right[:, i] for i in range(right.shape[1])]
    left_keys, right_keys = make_join_keys(left_cols, right_cols)
    return left_unique[semi_join_mask(left_keys, right_keys)]


# --------------------------------------------------------------------------
# Grouped aggregation
# --------------------------------------------------------------------------

_REDUCERS = {
    "MIN": np.minimum,
    "MAX": np.maximum,
    "SUM": np.add,
}


def group_aggregate(
    group_columns: list[np.ndarray],
    agg_specs: list[tuple[str, np.ndarray]],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Grouped aggregation.

    Args:
        group_columns: key columns (may be empty for global aggregates).
        agg_specs: (func, value_column) pairs; func in MIN/MAX/SUM/COUNT/AVG.

    Returns:
        (group_key_matrix, [aggregate columns...]) with one row per group.
    """
    if group_columns:
        n = group_columns[0].shape[0]
    elif agg_specs:
        n = agg_specs[0][1].shape[0]
    else:
        raise ValueError("group_aggregate needs at least one column")

    if not group_columns:
        keys = np.empty((1, 0), dtype=np.int64)
        outputs: list[np.ndarray] = []
        for func, values in agg_specs:
            outputs.append(np.asarray([_global_aggregate(func, values)], dtype=np.int64))
        return keys, outputs

    if n == 0:
        return np.empty((0, len(group_columns)), dtype=np.int64), [
            np.empty(0, dtype=np.int64) for _ in agg_specs
        ]

    key_matrix = np.column_stack(group_columns)
    packed = pack_columns(group_columns)
    if packed is not None:
        order = np.argsort(packed, kind="stable")
        sorted_keys = packed[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
    else:
        order = np.lexsort(tuple(key_matrix[:, i] for i in reversed(range(key_matrix.shape[1]))))
        sorted_matrix = key_matrix[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_matrix[1:] != sorted_matrix[:-1]).any(axis=1)
    group_starts = np.flatnonzero(boundary)
    group_keys = key_matrix[order][group_starts]
    counts = np.diff(np.append(group_starts, n))

    outputs = []
    for func, values in agg_specs:
        sorted_values = values[order]
        if func == "COUNT":
            outputs.append(counts.astype(np.int64))
        elif func == "AVG":
            sums = np.add.reduceat(sorted_values, group_starts)
            outputs.append((sums // counts).astype(np.int64))
        else:
            reducer = _REDUCERS[func]
            outputs.append(reducer.reduceat(sorted_values, group_starts).astype(np.int64))
    return group_keys, outputs


def _global_aggregate(func: str, values: np.ndarray) -> int:
    if func == "COUNT":
        return int(values.shape[0])
    if values.shape[0] == 0:
        raise ValueError(f"{func} over empty input has no value")
    if func == "MIN":
        return int(values.min())
    if func == "MAX":
        return int(values.max())
    if func == "SUM":
        return int(values.sum())
    if func == "AVG":
        return int(values.sum() // values.shape[0])
    raise ValueError(f"unknown aggregate {func!r}")

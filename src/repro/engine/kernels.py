"""Vectorized relational kernels.

These are the NumPy equivalents of QuickStep's operator implementations:
key packing (the compact concatenated key of Figure 5), hash-equivalent
equi-joins, anti-joins, row deduplication, and sorted group-by reduction.
All kernels are pure: they never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

# --------------------------------------------------------------------------
# Key packing (compact concatenated key, Figure 5)
# --------------------------------------------------------------------------


def pack_columns(columns: list[np.ndarray]) -> np.ndarray | None:
    """Pack several int64 columns into one int64 key column, if they fit.

    Mirrors the paper's CCK: the concatenation of fixed-width attribute
    encodings *is* the key (and its own hash). Returns ``None`` when the
    combined bit width exceeds 63 bits; callers then fall back to
    factorization.
    """
    if not columns:
        raise ValueError("pack_columns requires at least one column")
    if len(columns) == 1:
        return columns[0]
    bits_needed: list[int] = []
    offsets: list[int] = []
    for column in columns:
        if column.size == 0:
            bits_needed.append(1)
            offsets.append(0)
            continue
        low = int(column.min())
        high = int(column.max())
        offsets.append(low)
        span = high - low
        bits_needed.append(max(1, int(span).bit_length()))
    if sum(bits_needed) > 63:
        return None
    key = np.zeros(columns[0].shape[0], dtype=np.int64)
    for column, bits, offset in zip(columns, bits_needed, offsets):
        key <<= np.int64(bits)
        key |= column - np.int64(offset)
    return key


def factorize_rows(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map the rows of two equal-arity matrices to a shared integer code.

    Fallback for keys too wide to pack: lexicographically sorts the union
    and assigns dense codes, so equal rows on either side share a code.
    """
    combined = np.vstack([left, right])
    _, inverse = np.unique(combined, axis=0, return_inverse=True)
    return inverse[: left.shape[0]], inverse[left.shape[0]:]


def make_join_keys(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Produce comparable int64 key columns for both sides of an equi-join."""
    if len(left_columns) != len(right_columns):
        raise ValueError("join key column counts differ")
    packed_left = pack_columns(left_columns) if left_columns else None
    packed_right = pack_columns(right_columns) if right_columns else None
    if packed_left is not None and packed_right is not None:
        # Packing uses per-side offsets; they must agree for comparability.
        # Recompute with the global min per key position.
        lows = [
            min(
                int(l.min()) if l.size else 0,
                int(r.min()) if r.size else 0,
            )
            for l, r in zip(left_columns, right_columns)
        ]
        highs = [
            max(
                int(l.max()) if l.size else 0,
                int(r.max()) if r.size else 0,
            )
            for l, r in zip(left_columns, right_columns)
        ]
        bits = [max(1, int(h - lo).bit_length()) for lo, h in zip(lows, highs)]
        if sum(bits) <= 63:
            def pack(cols: list[np.ndarray]) -> np.ndarray:
                key = np.zeros(cols[0].shape[0] if cols else 0, dtype=np.int64)
                for col, b, lo in zip(cols, bits, lows):
                    key <<= np.int64(b)
                    key |= col - np.int64(lo)
                return key

            return pack(left_columns), pack(right_columns)
    left_matrix = np.column_stack(left_columns) if left_columns else np.empty((0, 0), np.int64)
    right_matrix = np.column_stack(right_columns) if right_columns else np.empty((0, 0), np.int64)
    return factorize_rows(left_matrix, right_matrix)


# --------------------------------------------------------------------------
# Joins
# --------------------------------------------------------------------------


def equi_join_count(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact output cardinality of the equi-join, without materializing it.

    Costs one sort + two binary searches; operators call this before
    ``equi_join_indices`` so the memory model can reject oversized
    intermediates *before* they exist.
    """
    if left_keys.size == 0 or right_keys.size == 0:
        return 0
    sorted_right = np.sort(right_keys)
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    return int((ends - starts).sum())


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return aligned (left_index, right_index) arrays of all key matches.

    Sort-probe implementation with the same asymptotics as a hash join;
    the cost model, not this kernel, decides which side is "built".
    """
    if left_keys.size == 0 or right_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_index = np.repeat(np.arange(left_keys.size, dtype=np.int64), counts)
    # Positions within each run of matches, then offset by the run start.
    boundaries = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        boundaries - counts, counts
    )
    right_sorted_positions = np.repeat(starts, counts) + within
    right_index = order[right_sorted_positions]
    return left_index, right_index


def semi_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows whose key appears in ``right_keys``."""
    if left_keys.size == 0:
        return np.zeros(0, dtype=bool)
    if right_keys.size == 0:
        return np.zeros(left_keys.size, dtype=bool)
    return np.isin(left_keys, right_keys)


def anti_join_mask(left_keys: np.ndarray, right_keys: np.ndarray) -> np.ndarray:
    """Boolean mask of left rows whose key does NOT appear in ``right_keys``."""
    return ~semi_join_mask(left_keys, right_keys)


# --------------------------------------------------------------------------
# Deduplication
# --------------------------------------------------------------------------


def unique_rows(rows: np.ndarray) -> np.ndarray:
    """Row-level dedup preserving no particular order (set semantics)."""
    if rows.shape[0] == 0:
        return rows.copy()
    if rows.shape[1] == 1:
        return np.unique(rows[:, 0]).reshape(-1, 1)
    key = pack_columns([rows[:, i] for i in range(rows.shape[1])])
    if key is not None:
        _, first_index = np.unique(key, return_index=True)
        return rows[np.sort(first_index)]
    return np.unique(rows, axis=0)


def rows_difference(new_rows: np.ndarray, existing_rows: np.ndarray) -> np.ndarray:
    """Set difference ``new_rows - existing_rows`` (both deduplicated first).

    The arithmetic core shared by both OPSD and TPSD; the two strategies
    differ only in which side is hashed and whether an intersection is
    materialized, which the DSD cost model accounts for.
    """
    new_unique = unique_rows(new_rows)
    if existing_rows.shape[0] == 0:
        return new_unique
    if new_unique.shape[0] == 0:
        return new_unique
    left_cols = [new_unique[:, i] for i in range(new_unique.shape[1])]
    right_cols = [existing_rows[:, i] for i in range(existing_rows.shape[1])]
    left_keys, right_keys = make_join_keys(left_cols, right_cols)
    return new_unique[anti_join_mask(left_keys, right_keys)]


def rows_intersection(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Distinct rows appearing in both matrices (TPSD's first phase)."""
    left_unique = unique_rows(left)
    if left_unique.shape[0] == 0 or right.shape[0] == 0:
        return left_unique[:0]
    left_cols = [left_unique[:, i] for i in range(left_unique.shape[1])]
    right_cols = [right[:, i] for i in range(right.shape[1])]
    left_keys, right_keys = make_join_keys(left_cols, right_cols)
    return left_unique[semi_join_mask(left_keys, right_keys)]


# --------------------------------------------------------------------------
# Grouped aggregation
# --------------------------------------------------------------------------

_REDUCERS = {
    "MIN": np.minimum,
    "MAX": np.maximum,
    "SUM": np.add,
}


def group_aggregate(
    group_columns: list[np.ndarray],
    agg_specs: list[tuple[str, np.ndarray]],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Grouped aggregation.

    Args:
        group_columns: key columns (may be empty for global aggregates).
        agg_specs: (func, value_column) pairs; func in MIN/MAX/SUM/COUNT/AVG.

    Returns:
        (group_key_matrix, [aggregate columns...]) with one row per group.
    """
    if group_columns:
        n = group_columns[0].shape[0]
    elif agg_specs:
        n = agg_specs[0][1].shape[0]
    else:
        raise ValueError("group_aggregate needs at least one column")

    if not group_columns:
        keys = np.empty((1, 0), dtype=np.int64)
        outputs: list[np.ndarray] = []
        for func, values in agg_specs:
            outputs.append(np.asarray([_global_aggregate(func, values)], dtype=np.int64))
        return keys, outputs

    if n == 0:
        return np.empty((0, len(group_columns)), dtype=np.int64), [
            np.empty(0, dtype=np.int64) for _ in agg_specs
        ]

    key_matrix = np.column_stack(group_columns)
    packed = pack_columns(group_columns)
    if packed is not None:
        order = np.argsort(packed, kind="stable")
        sorted_keys = packed[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
    else:
        order = np.lexsort(tuple(key_matrix[:, i] for i in reversed(range(key_matrix.shape[1]))))
        sorted_matrix = key_matrix[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_matrix[1:] != sorted_matrix[:-1]).any(axis=1)
    group_starts = np.flatnonzero(boundary)
    group_keys = key_matrix[order][group_starts]
    counts = np.diff(np.append(group_starts, n))

    outputs = []
    for func, values in agg_specs:
        sorted_values = values[order]
        if func == "COUNT":
            outputs.append(counts.astype(np.int64))
        elif func == "AVG":
            sums = np.add.reduceat(sorted_values, group_starts)
            outputs.append((sums // counts).astype(np.int64))
        else:
            reducer = _REDUCERS[func]
            outputs.append(reducer.reduceat(sorted_values, group_starts).astype(np.int64))
    return group_keys, outputs


def _global_aggregate(func: str, values: np.ndarray) -> int:
    if func == "COUNT":
        return int(values.shape[0])
    if values.shape[0] == 0:
        raise ValueError(f"{func} over empty input has no value")
    if func == "MIN":
        return int(values.min())
    if func == "MAX":
        return int(values.max())
    if func == "SUM":
        return int(values.sum())
    if func == "AVG":
        return int(values.sum() // values.shape[0])
    raise ValueError(f"unknown aggregate {func!r}")

"""The Database facade: SQL in, arrays out, everything metered.

This is the engine's public API, playing the role QuickStep plays for
RecStep: the interpreter connects to a :class:`Database`, issues SQL
(``execute``), refreshes statistics (``analyze``), and calls the two
system-level specialized operations (``dedup_table``,
``set_difference``). All work — including per-query dispatch overhead and
EOST-vs-per-query I/O — lands on one simulated clock.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import PlanError
from repro.engine.dedup import (
    DedupOutcome,
    deduplicate,
    planned_transient_bytes,
    rows_packable,
)
from repro.engine.executor import QUERY_DISPATCH_OVERHEAD, ParallelCostModel
from repro.engine.joincache import COUNTER_EVICT, INDEX_ROW_BYTES, JoinStateCache
from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET, MetricsRecorder
from repro.engine.operators import ExecutionContext, run_query
from repro.engine.setops import (
    SetDifferenceOutcome,
    one_phase_set_difference,
    streaming_two_phase_set_difference,
    two_phase_set_difference,
)
from repro.obs import CATEGORY_STATEMENT, NULL_PROFILER, Profiler
from repro.resilience.runtime import ResilienceContext
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog
from repro.storage.column import ColumnSchema, ColumnType
from repro.storage.manager import StorageManager
from repro.storage.spill import MIN_SPILL_BYTES, SpillManager
from repro.storage.stats import StatsMode
from repro.storage.table import Table

#: Dispatches since a table was last *scanned* before it counts as cold
#: for the spill rung. Delta/EDB tables are touched every iteration (a
#: semi-naive iteration is a handful of dispatches) and never qualify;
#: full relations — appended to but rarely scanned — go cold fast.
SPILL_COLD_AFTER_DISPATCHES = 8

#: Once the spill rung engages (sticky pressure level >= soft), cold
#: tables are evicted until the resident footprint is back under this
#: fraction of the budget — deliberately well below the soft watermark,
#: so the freed headroom absorbs the transient spikes (hash builds,
#: dedup scratch) that triggered the pressure in the first place.
SPILL_TARGET_FRACTION = 0.5


class Database:
    """An in-memory parallel relational database with a mini-SQL surface.

    Args:
        threads: simulated worker count (the experiments' thread knob).
        memory_budget: modeled memory in bytes; exceeding it raises
            ``OutOfMemoryError``, reproducing the paper's OOM envelope.
        eost: evaluate-as-one-single-transaction; when off, every
            state-changing query pays a write-back (Section 5.2).
        fast_dedup: use the CCK-GSCHT dedup path (Section 5.2).
        enforce_budgets: disable to let tests run without OOM/timeout.
        join_cache: keep packed-key join indexes alive across queries and
            extend them incrementally as tables are appended to (the
            iteration-persistent join state; ``--no-join-cache`` escape
            hatch). Disabled, every join rebuilds its hash state.
        partitioned_exec: allow operators to run radix-partitioned
            (scatter by key-hash bits, then per-bucket private hash
            tables) when the modeled makespan beats the shared-table
            path; ``--no-partitioned-exec`` escape hatch. Results are
            byte-identical either way.
        partitions: radix bucket count (rounded up to a power of two).
        profile: enable the span tracer + counter registry (repro.obs);
            off by default, at zero instrumentation cost.
        resilience: the evaluation's resilience context (fault injector,
            retry policy, degradation ladder, cancellation token). The
            default context is inert: every hook is one ``is None`` test.
        spill_dir: directory for the spill-to-disk tier. ``None`` (the
            default) disables spilling entirely; with a directory and the
            degradation ladder enabled, cold full-relation prefixes are
            evicted to checksummed segment files under memory pressure
            and streamed back through the kernels.
        spill_disk_budget: modeled disk bytes available to the spill
            tier; ``None`` means unbounded. Exhausting it is not an
            error — the rung simply stops and the ladder proceeds.
    """

    def __init__(
        self,
        threads: int = 20,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        time_budget: float = DEFAULT_TIME_BUDGET,
        eost: bool = True,
        fast_dedup: bool = True,
        enforce_budgets: bool = True,
        join_cache: bool = True,
        partitioned_exec: bool = True,
        partitions: int = 256,
        profile: bool = False,
        resilience: ResilienceContext | None = None,
        spill_dir: str | None = None,
        spill_disk_budget: int | None = None,
    ) -> None:
        self.catalog = Catalog()
        self.storage = StorageManager(eost=eost)
        self.cost_model = ParallelCostModel(threads=threads)
        self.metrics = MetricsRecorder(
            memory_budget=memory_budget,
            time_budget=time_budget,
            enforce_budgets=enforce_budgets,
        )
        self.fast_dedup = fast_dedup
        self.join_cache = JoinStateCache(enabled=join_cache)
        if partitions < 1:
            raise PlanError(f"partitions must be positive, got {partitions}")
        # The radix scatter derives bucket ids from the key hash's top
        # bits, so the count must be a power of two; round up quietly.
        self.partitions = 1 << (partitions - 1).bit_length() if partitions > 1 else 1
        self.partitioned_exec = partitioned_exec
        self.queries_executed = 0
        self.profiler = NULL_PROFILER
        self.resilience = resilience if resilience is not None else ResilienceContext()
        self.cost_model.injector = self.resilience.injector
        self.resilience.bind(self.metrics, self.profiler.counters)
        self.spill: SpillManager | None = (
            SpillManager(spill_dir, disk_budget=spill_disk_budget)
            if spill_dir is not None
            else None
        )
        #: Coldness ledger for the spill rung: dispatch sequence number
        #: and, per table, the sequence at which it was last scanned.
        self._touch_seq = 0
        self._last_touch: dict[str, int] = {}
        self._bind_spill()
        if profile:
            self.enable_profiling()

    # -- internals -----------------------------------------------------------

    def enable_profiling(self) -> Profiler:
        """Attach a live profiler to the clock, cost model, and metrics."""
        if not self.profiler.enabled:
            self.profiler = Profiler(self.metrics.clock)
            self.cost_model.profiler = self.profiler
            self.metrics.counters = self.profiler.counters
            self.resilience.bind(self.metrics, self.profiler.counters)
            self._bind_spill()
        return self.profiler

    def _bind_spill(self) -> None:
        if self.spill is not None:
            self.spill.bind(
                self.metrics,
                self.profiler.counters,
                resilience=self.resilience,
                on_change=self._refresh_base_bytes,
            )

    def _context(self) -> ExecutionContext:
        self._maybe_shed_join_cache()
        self._maybe_spill_cold_tables()
        return ExecutionContext(
            catalog=self.catalog,
            metrics=self.metrics,
            cost_model=self.cost_model,
            profiler=self.profiler,
            join_cache=self.join_cache if self.join_cache.enabled else None,
            partitions=self.partitions if self.partitioned_exec else 0,
            degradation=self.resilience.degradation,
        )

    def _maybe_shed_join_cache(self, planned_bytes: int = 0) -> None:
        """Degradation ladder, rung 1: under memory pressure the
        persistent join indexes are evicted and the cache disabled for
        the rest of the run — they trade memory for speed, so they are
        the first thing given back. ``planned_bytes`` lets a caller
        about to *build* an index pre-flight that allocation."""
        degradation = self.resilience.degradation
        if (
            self.join_cache.enabled
            and degradation.enabled
            and degradation.shed_join_cache(planned_bytes)
        ):
            degradation.note("shed-join-cache")
            evicted = self.join_cache.invalidate_all()
            if evicted:
                self.profiler.counters.inc(COUNTER_EVICT, evicted)
            self.join_cache.enabled = False
            self._refresh_base_bytes()

    @staticmethod
    def _query_source_tables(query: ast.Query) -> list[str]:
        """Every table a query scans (UNION ALL arms included)."""
        selects = query.selects if isinstance(query, ast.UnionAll) else (query,)
        return [ref.table for select in selects for ref in select.tables]

    def _touch(self, *names: str) -> None:
        """Mark tables as scanned *now* (spill-rung coldness ledger).

        Touch points are reads of row content — query sources, dedup and
        aggregate targets, replace/restore. Appends deliberately do not
        touch: ``R <- R U delta`` lands in the resident tail of a spilled
        table, so a full relation can stay cold (and on disk) while it
        grows. The set-difference base is also not touched — TPSD streams
        it chunk-wise without rehydrating.
        """
        for name in names:
            self._last_touch[name] = self._touch_seq

    def _maybe_spill_cold_tables(self) -> None:
        """Degradation ladder: evict cold table prefixes to disk.

        Engaged at the soft watermark like the shedding rungs, but
        instead of giving up speed-for-memory state it moves *relation
        bytes themselves* out of RAM: candidates are tables whose rows
        have not been scanned for :data:`SPILL_COLD_AFTER_DISPATCHES`
        dispatches, coldest first (ties broken by name, so the eviction
        order is deterministic). Eviction continues until the footprint
        is under :data:`SPILL_TARGET_FRACTION` of the budget (hysteresis
        below the watermark), or until the disk budget — real or
        injected ENOSPC — is exhausted, in which case the ladder simply
        proceeds to its next rung.
        """
        spill = self.spill
        if spill is None or spill.capacity_exhausted:
            return
        degradation = self.resilience.degradation
        if not (degradation.enabled and degradation.spill_cold_tables()):
            return
        metrics = self.metrics
        if metrics.memory_budget <= 0:
            return
        if metrics.budget_fraction() < SPILL_TARGET_FRACTION:
            return
        candidates = []
        for name in self.catalog.table_names():
            table = self.catalog.get_table(name)
            if table.memory_bytes() < MIN_SPILL_BYTES:
                continue
            age = self._touch_seq - self._last_touch.get(name, 0)
            if age < SPILL_COLD_AFTER_DISPATCHES:
                continue
            candidates.append((-age, name, table))
        candidates.sort(key=lambda item: (item[0], item[1]))
        for _neg_age, _name, table in candidates:
            if metrics.budget_fraction() < SPILL_TARGET_FRACTION:
                break
            table.bind_spill(spill)
            if spill.spill_table(table):
                degradation.note("spill-cold-tables")
            if spill.capacity_exhausted:
                break

    def _maybe_spill_restored(self, table: Table) -> None:
        """Pre-flight spill during checkpoint restore.

        The restore path materializes whole relations before any query
        runs, so the watermark machinery would fire *after* the OOM. This
        is the ladder's planned-bytes pre-flight applied to the restore:
        if the refreshed footprint would breach the soft watermark, the
        just-restored (by definition cold) table spills immediately.
        """
        spill = self.spill
        if spill is None or spill.capacity_exhausted:
            return
        metrics = self.metrics
        if metrics.memory_budget <= 0 or table.memory_bytes() < MIN_SPILL_BYTES:
            return
        projected = self.catalog.total_memory_bytes() + self.join_cache.memory_bytes()
        planned = max(0, projected - metrics.base_bytes)
        if not self.resilience.degradation.spill_cold_tables(planned):
            return
        table.bind_spill(spill)
        if spill.spill_table(table):
            self.resilience.degradation.note("spill-cold-tables")

    def _statement_span(self, name: str, table: str | None = None, **attrs):
        if table is not None:
            attrs["table"] = table
        return self.profiler.span(name, CATEGORY_STATEMENT, **attrs)

    #: Catalog-only DDL (CREATE/DROP) costs far less than a full query
    #: compile+dispatch cycle.
    DDL_OVERHEAD = 5.0e-4

    def _charge_dispatch(self) -> None:
        self.queries_executed += 1
        self._touch_seq += 1
        self.profiler.counters.inc("queries_dispatched")
        self.resilience.maybe_spike()
        self.metrics.advance(QUERY_DISPATCH_OVERHEAD, utilization=1.0 / max(1, self.cost_model.threads))

    def _charge_ddl(self) -> None:
        self.queries_executed += 1
        self.profiler.counters.inc("ddl_statements")
        self.metrics.advance(self.DDL_OVERHEAD, utilization=1.0 / max(1, self.cost_model.threads))

    def _after_mutation(self, table: Table, new_bytes: int) -> None:
        io_cost = self.storage.mark_dirty(table.name, new_bytes)
        if io_cost:
            self.metrics.advance(io_cost, utilization=0.02)
        self._refresh_base_bytes()

    def _refresh_base_bytes(self) -> None:
        """Resident memory = tables + live join indexes (cache state is
        real memory, not transient: it survives between queries)."""
        self.metrics.set_base_bytes(
            self.catalog.total_memory_bytes() + self.join_cache.memory_bytes()
        )

    def _note_table_rewrite(self, name: str) -> None:
        """Evict join-index entries invalidated by a rewrite/truncate/drop."""
        evicted = self.join_cache.note_rewrite(name)
        if evicted:
            self.profiler.counters.inc(COUNTER_EVICT, evicted)

    def invalidate_join_cache(self) -> None:
        """Drop every persistent join index (stratum boundaries).

        A new stratum evaluates different rules over different tables;
        carrying indexes across the boundary would hold memory for tables
        that may never be joined again.
        """
        evicted = self.join_cache.invalidate_all()
        if evicted:
            self.profiler.counters.inc(COUNTER_EVICT, evicted)
        self._refresh_base_bytes()

    def rehydrate_join_cache(self, names: list[str]) -> None:
        """Rebuild whole-row indexes after a checkpoint restore.

        Restored tables arrive with fresh epochs, so any surviving entry
        is stale; eagerly rebuilding here puts the post-resume run in the
        same cache state an uninterrupted run would be in.
        """
        if not self.join_cache.enabled:
            return
        with self._statement_span("REHYDRATE_JOIN_CACHE", tables=len(names)):
            ctx = self._context()
            for name in names:
                table = self.catalog.get_table(name)
                if table.spilled_rows:
                    # A table the restore spilled stays cold: building an
                    # index would fault the prefix back in and recreate
                    # exactly the pressure the spill relieved.
                    continue
                # Pre-flight the index build's sort scratch — a restore
                # into a tight budget must shed the cache, not OOM.
                self._maybe_shed_join_cache(table.num_rows * INDEX_ROW_BYTES)
                if not self.join_cache.enabled:
                    break
                self._touch(name)
                self.join_cache.acquire(ctx, name, table.column_names)

    def join_cache_extension(self, name: str) -> int | None:
        """Rows a whole-row index over ``name`` still needs to ingest.

        ``None`` when the cache is disabled. The DSD policy uses this to
        price OPSD's build at the extension size instead of ``|R|``.
        """
        if not self.join_cache.enabled:
            return None
        columns = self.catalog.get_table(name).column_names
        return self.join_cache.extension_estimate(self.catalog, name, columns)

    # -- SQL surface ------------------------------------------------------------

    def execute(self, sql_text: str) -> np.ndarray | None:
        """Parse and execute one SQL statement.

        SELECT returns an ``(n, width)`` int64 matrix; other statements
        return ``None``.
        """
        return self.execute_ast(parse_statement(sql_text))

    #: Span names for statement kinds (EXPLAIN ANALYZE groups by these).
    _STATEMENT_NAMES = {
        ast.CreateTable: "CREATE TABLE",
        ast.DropTable: "DROP TABLE",
        ast.InsertValues: "INSERT VALUES",
        ast.InsertSelect: "INSERT..SELECT",
        ast.DeleteAll: "DELETE",
        ast.Analyze: "ANALYZE",
        ast.SelectStatement: "SELECT",
    }

    def execute_ast(self, statement: ast.Statement) -> np.ndarray | None:
        """Execute an already parsed statement (used by the compiler)."""
        name = self._STATEMENT_NAMES.get(type(statement), type(statement).__name__)
        target = getattr(statement, "table", None)
        with self._statement_span(name, table=target) as span:
            result = self._execute_ast_inner(statement)
            if result is not None:
                span.set(rows_out=int(result.shape[0]))
            self.profiler.counters.inc("statements_executed")
        if self.profiler.enabled:
            self.profiler.histograms.observe(f"statement.latency.{name}", span.duration)
            if result is not None:
                self.profiler.histograms.observe(
                    f"statement.rows.{name}", float(result.shape[0])
                )
        return result

    # -- telemetry ---------------------------------------------------------------

    def sample_timeline(self, **marks) -> None:
        """One resource-timeline sample at the current simulated time.

        Captures the full "what did the run look like right now" vector:
        resident/transient memory, degradation-ladder level, join-cache
        and partitioning state. No-op (one attribute test) when profiling
        is off.
        """
        profiler = self.profiler
        if not profiler.enabled:
            return
        counters = profiler.counters
        profiler.timeline.sample(
            self.metrics.clock.now(),
            resident_bytes=self.metrics.base_bytes,
            transient_bytes=self.metrics.transient_bytes,
            peak_bytes=self.metrics.peak_bytes,
            spilled_bytes=self.metrics.spilled_bytes,
            degradation_level=self.resilience.degradation.level,
            join_cache_entries=len(self.join_cache),
            join_cache_bytes=self.join_cache.memory_bytes(),
            join_cache_hits=counters.get("join_cache.hit"),
            join_cache_extends=counters.get("join_cache.extend"),
            partition_join_runs=counters.get("partition.join_runs"),
            partition_scatter_rows=counters.get("partition.scatter_rows"),
            **marks,
        )

    def note_iteration(
        self, stratum: int, iteration: int, delta_rows: int, seconds: float
    ) -> None:
        """Iteration-boundary hook: distribution + timeline bookkeeping.

        The interpreter calls this after every semi-naive iteration so
        per-iteration latency and delta-size distributions accumulate and
        the resource timeline gains a sample exactly at the boundary —
        the sampling cadence the paper's memory-trajectory figures use.
        """
        if not self.profiler.enabled:
            return
        self.profiler.histograms.observe("iteration.seconds", seconds)
        self.profiler.histograms.observe("iteration.delta_rows", float(delta_rows))
        self.sample_timeline(stratum=stratum, iteration=iteration, delta_rows=delta_rows)

    def _execute_ast_inner(self, statement: ast.Statement) -> np.ndarray | None:
        if isinstance(statement, (ast.CreateTable, ast.DropTable)):
            self._charge_ddl()
        else:
            self._charge_dispatch()
        if isinstance(statement, ast.CreateTable):
            self.catalog.create_table(
                statement.table,
                [ColumnSchema(name, ctype) for name, ctype in statement.columns],
            )
            self._refresh_base_bytes()
            return None
        if isinstance(statement, ast.DropTable):
            self._note_table_rewrite(statement.table)
            self.catalog.drop_table(statement.table)
            self._refresh_base_bytes()
            return None
        if isinstance(statement, ast.InsertValues):
            table = self.catalog.get_table(statement.table)
            table.append_tuples(statement.rows)
            self._after_mutation(table, len(statement.rows) * table.tuple_bytes())
            return None
        if isinstance(statement, ast.InsertSelect):
            self._touch(*self._query_source_tables(statement.query))
            rows = self.resilience.run(
                "insert_select", lambda: run_query(statement.query, self._context())
            )
            table = self.catalog.get_table(statement.table)
            table.append_array(rows)
            self._after_mutation(table, rows.shape[0] * table.tuple_bytes())
            self.profiler.annotate(rows_out=int(rows.shape[0]))
            return None
        if isinstance(statement, ast.DeleteAll):
            table = self.catalog.get_table(statement.table)
            table.truncate()
            self._note_table_rewrite(statement.table)
            self._after_mutation(table, 0)
            return None
        if isinstance(statement, ast.Analyze):
            mode = StatsMode.FULL if statement.full else StatsMode.SIZE_ONLY
            cost = self.catalog.analyze(statement.table, mode)
            self.metrics.advance(cost, utilization=0.5)
            return None
        if isinstance(statement, ast.SelectStatement):
            self._touch(*self._query_source_tables(statement.query))
            return run_query(statement.query, self._context())
        raise PlanError(f"unsupported statement {statement!r}")

    def execute_script(self, sql_text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT results."""
        from repro.sql.parser import parse_script

        for statement in parse_script(sql_text).statements:
            self.execute_ast(statement)

    # -- programmatic surface ------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        with self._statement_span("CREATE TABLE", table=name):
            self._charge_ddl()
            table = self.catalog.create_table(
                name, [ColumnSchema(column, ColumnType.INT) for column in columns]
            )
            self._refresh_base_bytes()
        return table

    def load_table(self, name: str, columns: Sequence[str], rows: np.ndarray) -> Table:
        """Create a table and bulk-load rows (dataset ingest path)."""
        with self._statement_span("LOAD", table=name) as span:
            self._touch(name)
            table = self.create_table(name, columns)
            table.append_array(np.asarray(rows, dtype=np.int64).reshape(-1, len(columns)))
            self._after_mutation(table, table.memory_bytes())
            self.catalog.analyze(name, StatsMode.SIZE_ONLY)
            span.set(rows_out=table.num_rows)
        return table

    def table_array(self, name: str) -> np.ndarray:
        return self.catalog.get_table(name).to_array()

    def table_size(self, name: str) -> int:
        return self.catalog.get_table(name).num_rows

    def table_spilled_bytes(self, name: str) -> int:
        """Modeled bytes of ``name``'s on-disk prefix (0 when resident).

        The DSD policy consumes this to price rehydration I/O into the
        OPSD-vs-TPSD decision.
        """
        return self.catalog.get_table(name).spilled_bytes()

    def table_snapshot(self, name: str) -> np.ndarray:
        """Full logical contents *without* changing residency.

        Checkpoints use this instead of :meth:`table_array`: saving
        state must not fault a cold table back in — the checkpoint is
        supposed to relieve pressure, not recreate it.
        """
        table = self.catalog.get_table(name)
        if table.spilled_rows and self.spill is not None:
            prefix = self.spill.snapshot_prefix(table)
            resident = table.resident_data()
            if resident.shape[0] == 0:
                return prefix
            return np.vstack([prefix, resident])
        return table.to_array()

    def release_spill(self) -> None:
        """Delete every live spill segment (end of evaluation).

        Called after results are extracted; quarantined files are left
        behind as evidence of torn reads.
        """
        if self.spill is not None:
            self.spill.cleanup()

    def analyze(self, name: str, full: bool = False) -> None:
        """Refresh optimizer statistics (Algorithm 1's ``analyze``)."""
        with self._statement_span("ANALYZE", table=name, full=full):
            mode = StatsMode.FULL if full else StatsMode.SIZE_ONLY
            cost = self.catalog.analyze(name, mode)
            self.metrics.advance(cost, utilization=0.5)

    def dedup_table(self, name: str) -> DedupOutcome:
        """Deduplicate a table in place (Algorithm 1's ``dedup``).

        Bucket pre-allocation is sized from the *catalog statistics* (the
        paper's "conservative approximation ... size of the table"): if
        the statistics are stale — OOF disabled — the hash table is
        mis-sized and dedup pays collision chains or wasted memory.
        """
        with self._statement_span("DEDUP", table=name) as span:
            self._charge_dispatch()
            self._touch(name)
            table = self.catalog.get_table(name)
            estimated_rows = self.catalog.get_stats(name).num_rows
            degradation = self.resilience.degradation
            lean = False
            if degradation.enabled:
                # The pre-flight uses the same sizing rule as deduplicate
                # itself — including whether the tuple is CCK-packable, so
                # a wide tuple's generic-path overhead is not under-
                # reported to the watermark check.
                planned = planned_transient_bytes(
                    table.num_rows,
                    table.arity,
                    self.fast_dedup,
                    estimated_rows,
                    packable=rows_packable(table.data()),
                )
                lean = degradation.lean_dedup(planned)
                if lean:
                    degradation.note("lean-dedup")
            outcome = self.resilience.run(
                "dedup",
                lambda: deduplicate(
                    table.to_array(),
                    self._context(),
                    fast=self.fast_dedup,
                    estimated_rows=estimated_rows,
                    lean=lean,
                    partitions=self.partitions if self.partitioned_exec else 0,
                ),
            )
            table.replace_contents(outcome.rows)
            self._note_table_rewrite(name)
            self._after_mutation(table, 0)
            span.set(
                rows_in=outcome.input_rows,
                rows_out=outcome.output_rows,
                duplicates=outcome.input_rows - outcome.output_rows,
                compact_key=outcome.used_compact_key,
                partitioned=outcome.partitioned,
            )
            if lean:
                span.set(lean=True)
        return outcome

    def set_difference(
        self, new_table: str, base_table: str, strategy: str = "OPSD"
    ) -> SetDifferenceOutcome:
        """Compute ``new_table - base_table`` with the given strategy.

        A spilled base relation is handled without rehydration wherever
        the strategy allows: TPSD streams the on-disk prefix chunk by
        chunk through :func:`streaming_two_phase_set_difference`, and an
        OPSD backed by a whole-row cache index never reads base rows at
        all. Only the uncached OPSD genuinely needs R materialized and
        faults it back in (``Table.data``) — the DSD policy prices that
        rehydration, so it rarely picks this path for a spilled base.
        """
        from repro.engine.operators import HASH_ENTRY_OVERHEAD

        new_rows = self.catalog.get_table(new_table).data()
        self._touch(new_table)
        base = self.catalog.get_table(base_table)
        ctx = self._context()
        if strategy not in ("OPSD", "TPSD"):
            raise PlanError(f"unknown set-difference strategy {strategy!r}")
        degradation = self.resilience.degradation
        forced = False
        if strategy == "OPSD" and degradation.enabled:
            # OPSD's hash table covers all of R; under pressure (or when
            # that build alone would breach the soft watermark) fall back
            # to TPSD, which only ever builds on the smaller side.
            planned = base.num_rows * (8 + HASH_ENTRY_OVERHEAD)
            forced = degradation.force_tpsd(planned)
            if forced:
                strategy = "TPSD"
                degradation.note("force-tpsd")
        with self._statement_span(
            "SET_DIFFERENCE", table=new_table, strategy=strategy, base=base_table
        ) as span:
            self._charge_dispatch()
            self.profiler.counters.inc(f"dsd_{strategy.lower()}_choices")
            if strategy == "OPSD":
                cache_entry = None
                if self.join_cache.enabled:
                    # Whole-row index over R: the anti-probe for ``Δ = R_Δ - R``
                    # is a semi-join on every column, so the same persistent
                    # index the join operators maintain serves OPSD too.
                    base_columns = base.column_names
                    cache_entry, _ = self.join_cache.acquire(ctx, base_table, base_columns)
                if cache_entry is not None and base.spilled_rows:
                    # The anti-probe runs entirely against the sorted
                    # index; R's rows are never read, so the spilled
                    # prefix stays on disk. Only R's size is needed.
                    outcome = self.resilience.run(
                        "set_difference",
                        lambda: one_phase_set_difference(
                            new_rows,
                            base.resident_data(),
                            ctx,
                            cache_entry=cache_entry,
                            build_rows=base.num_rows,
                        ),
                    )
                else:
                    base_rows = base.data()
                    outcome = self.resilience.run(
                        "set_difference",
                        lambda: one_phase_set_difference(
                            new_rows, base_rows, ctx, cache_entry=cache_entry
                        ),
                    )
            elif base.spilled_rows and self.spill is not None:
                self.profiler.counters.inc("spill.streamed_setdiffs")
                outcome = self.resilience.run(
                    "set_difference",
                    lambda: streaming_two_phase_set_difference(
                        new_rows, self._spilled_base_chunks(base), ctx
                    ),
                )
            else:
                base_rows = base.data()
                outcome = self.resilience.run(
                    "set_difference",
                    lambda: two_phase_set_difference(new_rows, base_rows, ctx),
                )
            span.set(rows_in=int(new_rows.shape[0]), rows_out=int(outcome.delta.shape[0]))
            if forced:
                span.set(forced_tpsd=True)
        return outcome

    def _spilled_base_chunks(self, table: Table):
        """Yield R as bounded chunks: spilled segments one at a time
        (the SpillManager charges each read's I/O; this generator ledgers
        the chunk as a transient while a kernel holds it), then the
        resident tail. Residency is unchanged throughout — R is never
        materialized in memory at once.
        """
        spill = self.spill
        tuple_bytes = table.tuple_bytes()
        for segment in spill.segments(table.name):
            rows = spill.read_segment(table, segment)
            chunk_bytes = int(rows.shape[0]) * tuple_bytes
            self.metrics.allocate_transient(chunk_bytes)
            try:
                yield rows
            finally:
                self.metrics.release_transient(chunk_bytes)
        resident = table.resident_data()
        if resident.shape[0]:
            yield resident

    def aggregate_merge(
        self, name: str, candidates: np.ndarray, func: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge candidate (group..., value) rows into an aggregated table.

        Implements the recursive-aggregation step (Section 3.3 / the CC
        and SSSP programs): the table keeps one row per group holding the
        current best value; candidates with strictly better values update
        it. Returns ``(merged_rows, improved_rows)`` — the improved rows
        are the iteration's ∆.
        """
        if func not in ("MIN", "MAX"):
            raise PlanError(f"aggregate_merge supports MIN/MAX, not {func!r}")
        with self._statement_span("AGGREGATE_MERGE", table=name, func=func) as span:
            merged, improved = self.resilience.run(
                "aggregate", lambda: self._aggregate_merge_inner(name, candidates, func)
            )
            span.set(rows_in=int(np.asarray(candidates).shape[0]), rows_out=int(improved.shape[0]))
        return merged, improved

    def _aggregate_merge_inner(
        self, name: str, candidates: np.ndarray, func: str
    ) -> tuple[np.ndarray, np.ndarray]:
        from repro.engine import kernels
        from repro.engine.executor import AGGREGATE_PHASE, COST_AGGREGATE

        self._charge_dispatch()
        self._touch(name)
        table = self.catalog.get_table(name)
        existing = table.data()
        candidates = np.asarray(candidates, dtype=np.int64).reshape(-1, table.arity)
        combined = np.vstack([existing, candidates]) if existing.shape[0] else candidates
        n = combined.shape[0]
        ctx = self._context()
        ctx.metrics.allocate_transient(n * 16)
        ctx.charge_parallel(AGGREGATE_PHASE, n * COST_AGGREGATE, n)
        if n == 0:
            ctx.metrics.release_transient(n * 16)
            return existing.copy(), np.empty((0, table.arity), dtype=np.int64)
        group_columns = [combined[:, i] for i in range(table.arity - 1)]
        keys, (values,) = kernels.group_aggregate(group_columns, [(func, combined[:, -1])])
        merged = np.column_stack([keys, values]) if keys.size else values.reshape(-1, 1)
        improved = kernels.rows_difference(merged, existing)
        ctx.metrics.release_transient(n * 16)
        table.replace_contents(merged)
        self._note_table_rewrite(name)
        self._after_mutation(table, merged.shape[0] * table.tuple_bytes())
        return merged, improved

    def append_rows(self, name: str, rows: np.ndarray) -> None:
        """Append rows to a table (the ``R <- R ⊎ ΔR`` step)."""
        with self._statement_span("APPEND", table=name, rows_out=int(rows.shape[0])):
            self._charge_dispatch()

            def _append() -> None:
                table = self.catalog.get_table(name)
                table.append_array(rows)
                self._after_mutation(table, rows.shape[0] * table.tuple_bytes())

            self.resilience.run("append", _append)

    def delete_rows(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Delete the given tuples from a table (the IVM mutation path).

        Returns the distinct tuples actually removed; tuples not present
        are ignored. Survivors go through ``replace_contents``, so every
        deletion path shares the one rewrite primitive — the epoch bump
        is unconditional and a stale join index can never outlive a
        delete, whatever the surviving row count is.
        """
        from repro.engine import kernels
        from repro.engine.executor import COST_PROBE, PROBE_PHASE

        table = self.catalog.get_table(name)
        rows = np.asarray(rows, dtype=np.int64).reshape(-1, table.arity)
        with self._statement_span(
            "DELETE_ROWS", table=name, rows_in=int(rows.shape[0])
        ) as span:
            self._charge_dispatch()
            self._touch(name)

            def _delete() -> np.ndarray:
                existing = table.data()
                ctx = self._context()
                n = existing.shape[0] + rows.shape[0]
                scratch = n * 16
                ctx.metrics.allocate_transient(scratch)
                ctx.charge_parallel(PROBE_PHASE, n * COST_PROBE, n)
                removed = kernels.rows_intersection(rows, existing)
                if removed.shape[0] == 0:
                    ctx.metrics.release_transient(scratch)
                    return removed
                left_cols = [existing[:, i] for i in range(table.arity)]
                right_cols = [removed[:, i] for i in range(table.arity)]
                left_keys, right_keys = kernels.make_join_keys(left_cols, right_cols)
                survivors = existing[kernels.anti_join_mask(left_keys, right_keys)]
                ctx.metrics.release_transient(scratch)
                table.replace_contents(survivors)
                self._note_table_rewrite(name)
                self._after_mutation(table, table.memory_bytes())
                return removed

            removed = self.resilience.run("delete", _delete)
            span.set(rows_out=int(removed.shape[0]))
        return removed

    def replace_rows(self, name: str, rows: np.ndarray) -> None:
        """Swap a table's contents (the ∆-table update each iteration)."""
        rows = np.asarray(rows, dtype=np.int64)
        with self._statement_span("REPLACE", table=name, rows_out=int(rows.shape[0])):
            self._charge_dispatch()
            self._touch(name)
            table = self.catalog.get_table(name)
            table.replace_contents(rows)
            self._note_table_rewrite(name)
            self._after_mutation(table, table.memory_bytes())

    def commit(self) -> None:
        """Flush pending writes (end of the EOST transaction)."""
        with self._statement_span("COMMIT"):

            def _commit() -> None:
                cost = self.storage.commit()
                if cost:
                    self.metrics.advance(cost, utilization=0.02)

            self.resilience.run("commit", _commit)

    def restore_rows(self, name: str, rows: np.ndarray) -> None:
        """Overwrite a table's contents from a checkpoint snapshot.

        Unlike :meth:`replace_rows` this charges no query dispatch — the
        checkpoint manager accounts the restore I/O itself — but the
        memory ledger is refreshed so the restored footprint is real.
        """
        rows = np.asarray(rows, dtype=np.int64)
        with self._statement_span("RESTORE", table=name, rows_out=int(rows.shape[0])):
            table = self.catalog.get_table(name)
            table.replace_contents(rows)
            self._note_table_rewrite(name)
            # Deliberately NOT touched: a restored table has not been
            # scanned, so it is immediately spillable — which matters,
            # because restoring a checkpoint whose run was only viable
            # *because* it spilled must re-spill rather than OOM.
            self._maybe_spill_restored(table)
            self._after_mutation(table, table.memory_bytes())

    def explain(self, sql_text: str) -> str:
        """EXPLAIN a SELECT / INSERT..SELECT against current statistics."""
        from repro.engine.explain import explain_sql

        return explain_sql(sql_text, self.catalog)

    def explain_analyze(self, sql_text: str) -> str:
        """EXPLAIN ANALYZE: execute the statement, render the plan with
        actual per-operator row counts and simulated times.

        Runs under a temporary profiler (restored afterwards), so it works
        whether or not the database was opened with ``profile=True``.
        """
        from repro.engine.explain import explain_analyze_sql

        saved = (self.profiler, self.cost_model.profiler, self.metrics.counters)
        probe = Profiler(self.metrics.clock)
        self.profiler = probe
        self.cost_model.profiler = probe
        self.metrics.counters = probe.counters
        try:
            return explain_analyze_sql(sql_text, self)
        finally:
            self.profiler, self.cost_model.profiler, self.metrics.counters = saved

    # -- reporting ----------------------------------------------------------------

    @property
    def sim_seconds(self) -> float:
        return self.metrics.now()

    @property
    def peak_memory_bytes(self) -> int:
        return self.metrics.peak_bytes

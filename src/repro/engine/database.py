"""The Database facade: SQL in, arrays out, everything metered.

This is the engine's public API, playing the role QuickStep plays for
RecStep: the interpreter connects to a :class:`Database`, issues SQL
(``execute``), refreshes statistics (``analyze``), and calls the two
system-level specialized operations (``dedup_table``,
``set_difference``). All work — including per-query dispatch overhead and
EOST-vs-per-query I/O — lands on one simulated clock.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import PlanError
from repro.engine.dedup import DedupOutcome, deduplicate
from repro.engine.executor import QUERY_DISPATCH_OVERHEAD, ParallelCostModel
from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET, MetricsRecorder
from repro.engine.operators import ExecutionContext, run_query
from repro.engine.setops import (
    SetDifferenceOutcome,
    one_phase_set_difference,
    two_phase_set_difference,
)
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog
from repro.storage.column import ColumnSchema, ColumnType
from repro.storage.manager import StorageManager
from repro.storage.stats import StatsMode
from repro.storage.table import Table


class Database:
    """An in-memory parallel relational database with a mini-SQL surface.

    Args:
        threads: simulated worker count (the experiments' thread knob).
        memory_budget: modeled memory in bytes; exceeding it raises
            ``OutOfMemoryError``, reproducing the paper's OOM envelope.
        eost: evaluate-as-one-single-transaction; when off, every
            state-changing query pays a write-back (Section 5.2).
        fast_dedup: use the CCK-GSCHT dedup path (Section 5.2).
        enforce_budgets: disable to let tests run without OOM/timeout.
    """

    def __init__(
        self,
        threads: int = 20,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        time_budget: float = DEFAULT_TIME_BUDGET,
        eost: bool = True,
        fast_dedup: bool = True,
        enforce_budgets: bool = True,
    ) -> None:
        self.catalog = Catalog()
        self.storage = StorageManager(eost=eost)
        self.cost_model = ParallelCostModel(threads=threads)
        self.metrics = MetricsRecorder(
            memory_budget=memory_budget,
            time_budget=time_budget,
            enforce_budgets=enforce_budgets,
        )
        self.fast_dedup = fast_dedup
        self.queries_executed = 0

    # -- internals -----------------------------------------------------------

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            catalog=self.catalog, metrics=self.metrics, cost_model=self.cost_model
        )

    #: Catalog-only DDL (CREATE/DROP) costs far less than a full query
    #: compile+dispatch cycle.
    DDL_OVERHEAD = 5.0e-4

    def _charge_dispatch(self) -> None:
        self.queries_executed += 1
        self.metrics.advance(QUERY_DISPATCH_OVERHEAD, utilization=1.0 / max(1, self.cost_model.threads))

    def _charge_ddl(self) -> None:
        self.queries_executed += 1
        self.metrics.advance(self.DDL_OVERHEAD, utilization=1.0 / max(1, self.cost_model.threads))

    def _after_mutation(self, table: Table, new_bytes: int) -> None:
        io_cost = self.storage.mark_dirty(table.name, new_bytes)
        if io_cost:
            self.metrics.advance(io_cost, utilization=0.02)
        self.metrics.set_base_bytes(self.catalog.total_memory_bytes())

    # -- SQL surface ------------------------------------------------------------

    def execute(self, sql_text: str) -> np.ndarray | None:
        """Parse and execute one SQL statement.

        SELECT returns an ``(n, width)`` int64 matrix; other statements
        return ``None``.
        """
        return self.execute_ast(parse_statement(sql_text))

    def execute_ast(self, statement: ast.Statement) -> np.ndarray | None:
        """Execute an already parsed statement (used by the compiler)."""
        if isinstance(statement, (ast.CreateTable, ast.DropTable)):
            self._charge_ddl()
        else:
            self._charge_dispatch()
        if isinstance(statement, ast.CreateTable):
            self.catalog.create_table(
                statement.table,
                [ColumnSchema(name, ctype) for name, ctype in statement.columns],
            )
            self.metrics.set_base_bytes(self.catalog.total_memory_bytes())
            return None
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.table)
            self.metrics.set_base_bytes(self.catalog.total_memory_bytes())
            return None
        if isinstance(statement, ast.InsertValues):
            table = self.catalog.get_table(statement.table)
            table.append_tuples(statement.rows)
            self._after_mutation(table, len(statement.rows) * table.tuple_bytes())
            return None
        if isinstance(statement, ast.InsertSelect):
            rows = run_query(statement.query, self._context())
            table = self.catalog.get_table(statement.table)
            table.append_array(rows)
            self._after_mutation(table, rows.shape[0] * table.tuple_bytes())
            return None
        if isinstance(statement, ast.DeleteAll):
            table = self.catalog.get_table(statement.table)
            table.truncate()
            self._after_mutation(table, 0)
            return None
        if isinstance(statement, ast.Analyze):
            mode = StatsMode.FULL if statement.full else StatsMode.SIZE_ONLY
            cost = self.catalog.analyze(statement.table, mode)
            self.metrics.advance(cost, utilization=0.5)
            return None
        if isinstance(statement, ast.SelectStatement):
            return run_query(statement.query, self._context())
        raise PlanError(f"unsupported statement {statement!r}")

    def execute_script(self, sql_text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT results."""
        from repro.sql.parser import parse_script

        for statement in parse_script(sql_text).statements:
            self.execute_ast(statement)

    # -- programmatic surface ------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        self._charge_ddl()
        table = self.catalog.create_table(
            name, [ColumnSchema(column, ColumnType.INT) for column in columns]
        )
        self.metrics.set_base_bytes(self.catalog.total_memory_bytes())
        return table

    def load_table(self, name: str, columns: Sequence[str], rows: np.ndarray) -> Table:
        """Create a table and bulk-load rows (dataset ingest path)."""
        table = self.create_table(name, columns)
        table.append_array(np.asarray(rows, dtype=np.int64).reshape(-1, len(columns)))
        self._after_mutation(table, table.memory_bytes())
        self.catalog.analyze(name, StatsMode.SIZE_ONLY)
        return table

    def table_array(self, name: str) -> np.ndarray:
        return self.catalog.get_table(name).to_array()

    def table_size(self, name: str) -> int:
        return self.catalog.get_table(name).num_rows

    def analyze(self, name: str, full: bool = False) -> None:
        """Refresh optimizer statistics (Algorithm 1's ``analyze``)."""
        mode = StatsMode.FULL if full else StatsMode.SIZE_ONLY
        cost = self.catalog.analyze(name, mode)
        self.metrics.advance(cost, utilization=0.5)

    def dedup_table(self, name: str) -> DedupOutcome:
        """Deduplicate a table in place (Algorithm 1's ``dedup``).

        Bucket pre-allocation is sized from the *catalog statistics* (the
        paper's "conservative approximation ... size of the table"): if
        the statistics are stale — OOF disabled — the hash table is
        mis-sized and dedup pays collision chains or wasted memory.
        """
        self._charge_dispatch()
        table = self.catalog.get_table(name)
        estimated_rows = self.catalog.get_stats(name).num_rows
        outcome = deduplicate(
            table.to_array(),
            self._context(),
            fast=self.fast_dedup,
            estimated_rows=estimated_rows,
        )
        table.replace_contents(outcome.rows)
        self._after_mutation(table, 0)
        return outcome

    def set_difference(
        self, new_table: str, base_table: str, strategy: str = "OPSD"
    ) -> SetDifferenceOutcome:
        """Compute ``new_table - base_table`` with the given strategy."""
        new_rows = self.catalog.get_table(new_table).data()
        base_rows = self.catalog.get_table(base_table).data()
        ctx = self._context()
        if strategy == "OPSD":
            self._charge_dispatch()
            return one_phase_set_difference(new_rows, base_rows, ctx)
        if strategy == "TPSD":
            self._charge_dispatch()
            return two_phase_set_difference(new_rows, base_rows, ctx)
        raise PlanError(f"unknown set-difference strategy {strategy!r}")

    def aggregate_merge(
        self, name: str, candidates: np.ndarray, func: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge candidate (group..., value) rows into an aggregated table.

        Implements the recursive-aggregation step (Section 3.3 / the CC
        and SSSP programs): the table keeps one row per group holding the
        current best value; candidates with strictly better values update
        it. Returns ``(merged_rows, improved_rows)`` — the improved rows
        are the iteration's ∆.
        """
        from repro.engine import kernels
        from repro.engine.executor import AGGREGATE_PHASE, COST_AGGREGATE

        if func not in ("MIN", "MAX"):
            raise PlanError(f"aggregate_merge supports MIN/MAX, not {func!r}")
        self._charge_dispatch()
        table = self.catalog.get_table(name)
        existing = table.data()
        candidates = np.asarray(candidates, dtype=np.int64).reshape(-1, table.arity)
        combined = np.vstack([existing, candidates]) if existing.shape[0] else candidates
        n = combined.shape[0]
        ctx = self._context()
        ctx.metrics.allocate_transient(n * 16)
        ctx.charge_parallel(AGGREGATE_PHASE, n * COST_AGGREGATE, n)
        if n == 0:
            ctx.metrics.release_transient(n * 16)
            return existing.copy(), np.empty((0, table.arity), dtype=np.int64)
        group_columns = [combined[:, i] for i in range(table.arity - 1)]
        keys, (values,) = kernels.group_aggregate(group_columns, [(func, combined[:, -1])])
        merged = np.column_stack([keys, values]) if keys.size else values.reshape(-1, 1)
        improved = kernels.rows_difference(merged, existing)
        ctx.metrics.release_transient(n * 16)
        table.replace_contents(merged)
        self._after_mutation(table, merged.shape[0] * table.tuple_bytes())
        return merged, improved

    def append_rows(self, name: str, rows: np.ndarray) -> None:
        """Append rows to a table (the ``R <- R ⊎ ΔR`` step)."""
        self._charge_dispatch()
        table = self.catalog.get_table(name)
        table.append_array(rows)
        self._after_mutation(table, rows.shape[0] * table.tuple_bytes())

    def replace_rows(self, name: str, rows: np.ndarray) -> None:
        """Swap a table's contents (the ∆-table update each iteration)."""
        self._charge_dispatch()
        table = self.catalog.get_table(name)
        table.replace_contents(np.asarray(rows, dtype=np.int64))
        self._after_mutation(table, table.memory_bytes())

    def commit(self) -> None:
        """Flush pending writes (end of the EOST transaction)."""
        cost = self.storage.commit()
        if cost:
            self.metrics.advance(cost, utilization=0.02)

    def explain(self, sql_text: str) -> str:
        """EXPLAIN a SELECT / INSERT..SELECT against current statistics."""
        from repro.engine.explain import explain_sql

        return explain_sql(sql_text, self.catalog)

    # -- reporting ----------------------------------------------------------------

    @property
    def sim_seconds(self) -> float:
        return self.metrics.now()

    @property
    def peak_memory_bytes(self) -> int:
        return self.metrics.peak_bytes

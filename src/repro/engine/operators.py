"""Physical execution of SELECT queries.

One module implements the whole pipeline the RecStep query generator
needs: scan → (filter) → multi-way equi-join with cost-based build-side
selection → anti-join (NOT EXISTS) → projection or grouped aggregation.
Every operator charges its work to the execution context's parallel cost
model and declares its transient allocations to the metrics recorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import PlanError
from repro.engine import kernels
from repro.engine.executor import (
    AGGREGATE_PHASE,
    BUILD_PHASE,
    COST_AGGREGATE,
    COST_BUILD,
    COST_MATERIALIZE,
    COST_PARTITION,
    COST_PROBE,
    COST_SCAN,
    PARTITION_PHASE,
    PARTITIONED_BUILD_PHASE,
    PARTITIONED_PROBE_PHASE,
    PROBE_PHASE,
    SCAN_PHASE,
    ParallelCostModel,
    PhaseKind,
    split_tasks,
)
from repro.engine.expressions import (
    Frame,
    evaluate,
    evaluate_comparison,
    expr_aliases,
    resolve_column,
)
from repro.engine.metrics import MetricsRecorder
from repro.engine.optimizer import (
    cached_join_cost_estimate,
    choose_build_side,
    join_cost_estimate,
    order_tables_by_estimate,
    partitioned_join_decision,
)
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import CATEGORY_OPERATOR
from repro.sql import ast
from repro.storage.block import block_count
from repro.storage.catalog import Catalog

#: Modeled per-entry overhead of a join hash table (bucket pointer + next).
HASH_ENTRY_OVERHEAD = 24

#: Radix scatter scratch per row: the copied-out key plus a row index.
PARTITION_SCRATCH_BYTES = 16

#: Hard cap on a single join's output cardinality. QuickStep would spill
#: such an intermediate to disk and (on the paper's dense workloads)
#: subsequently die; we surface it as the same OOM failure. This also
#: bounds host-side allocations independent of the modeled budget.
HARD_JOIN_ROWS = 30_000_000


@dataclass
class ExecutionContext:
    """Everything operators need: catalog, metrics, and the cost model."""

    catalog: Catalog
    metrics: MetricsRecorder
    cost_model: ParallelCostModel
    #: Observability sink; the inert default keeps hot paths branch-free.
    profiler: object = field(default=NULL_PROFILER, repr=False)
    #: Iteration-persistent join indexes (repro.engine.joincache); None
    #: disables the cached join path entirely.
    join_cache: object | None = field(default=None, repr=False)
    #: Radix-partitioned execution: bucket count, 0 = disabled. When set,
    #: the contention-heavy operators compare shared vs partitioned
    #: makespans per call and may take the scatter + per-bucket path.
    partitions: int = 0
    #: Degradation ladder hook (repro.resilience.degradation); partition
    #: scratch is a speed-for-memory trade, shed under pressure.
    degradation: object | None = field(default=None, repr=False)

    def charge_parallel(self, kind: PhaseKind, total_cost: float, rows_hint: int) -> None:
        """Run a data-parallel phase through the scheduler and the clock."""
        tasks = split_tasks(total_cost, block_count(rows_hint))
        outcome = self.cost_model.run_phase(kind, tasks)
        # The CPU trace wants whole-machine utilization, not the per-worker
        # scheduling efficiency a narrow phase reports.
        self.metrics.advance(
            outcome.makespan, outcome.machine_utilization(self.cost_model.threads)
        )

    def charge_partitioned_tasks(self, kind: PhaseKind, task_costs) -> None:
        """Run a phase whose tasks are one-per-bucket (possibly skewed).

        Unlike :meth:`charge_parallel` the task split is not uniform: a
        skewed radix scatter yields unequal buckets, and the straggler
        bucket bounds the makespan — partitioning does not hide skew.
        """
        tasks = [float(cost) for cost in task_costs if cost > 0]
        outcome = self.cost_model.run_phase(kind, tasks)
        self.metrics.advance(
            outcome.makespan, outcome.machine_utilization(self.cost_model.threads)
        )

    def charge_index_pass(
        self,
        shared_kind: PhaseKind,
        partitioned_kind: PhaseKind,
        total_cost: float,
        rows: int,
    ) -> None:
        """Charge position-chunkable index work (cache extends/probes).

        Packing, sorting, and binary-searching a persistent sorted-code
        index are independent per input chunk — there is no shared hash
        table to contend on. With partitioned execution on, the work is
        charged as P even position chunks at the partitioned contention
        rate; otherwise it pays the classic shared phase.
        """
        if self.partitions and rows > 0:
            chunks = min(self.partitions, rows)
            self.charge_partitioned_tasks(
                partitioned_kind, [total_cost / chunks] * chunks
            )
        else:
            self.charge_parallel(shared_kind, total_cost, rows)

    def partition_scratch_ok(self, planned_bytes: int) -> bool:
        """Pre-flight a partitioned operator against the degradation ladder.

        ``planned_bytes`` is the full transient the partitioned path would
        allocate (bucket tables *and* scatter scratch). False shunts the
        operator back to the shared path: the scatter buffers are pure
        speed-for-memory, so under pressure they are shed like the join
        cache.
        """
        if self.degradation is None or not getattr(self.degradation, "enabled", False):
            return True
        if self.degradation.shed_partitioning(planned_bytes):
            self.degradation.note("shed-partitioning")
            self.profiler.counters.inc("partition.shed")
            return False
        return True

    def op_span(self, name: str, key: str, **attrs):
        """Open an operator-category span carrying a plan-matching key.

        The ``key`` (``scan:{alias}``, ``join:{alias}``, ``filter:{i}``,
        ``anti:{i}``, ``aggregate``, ``project``, ``arm:{i}``) is what
        EXPLAIN ANALYZE uses to pair executed spans with plan lines —
        alias-based so it survives join-order differences.
        """
        return self.profiler.span(name, CATEGORY_OPERATOR, key=key, **attrs)

    def estimated_rows(self, table_name: str) -> int:
        # Rewrite-aware: stats describing a previous table generation
        # fall back to the live count (append staleness stays, for OOF).
        return self.catalog.estimated_rows(table_name)


# --------------------------------------------------------------------------
# Predicate classification
# --------------------------------------------------------------------------


@dataclass
class _JoinEdge:
    """Equality predicate linking exactly two aliases."""

    alias_a: str
    expr_a: ast.Expr
    alias_b: str
    expr_b: ast.Expr

    def key_for(self, alias: str) -> ast.Expr:
        if alias == self.alias_a:
            return self.expr_a
        if alias == self.alias_b:
            return self.expr_b
        raise PlanError(f"alias {alias!r} not part of join edge")

    def other(self, alias: str) -> str:
        return self.alias_b if alias == self.alias_a else self.alias_a


@dataclass
class _ClassifiedPredicates:
    join_edges: list[_JoinEdge]
    filters: list[tuple[set[str], ast.Comparison]]
    anti_joins: list[ast.NotExists]


def _classify_predicates(
    select: ast.Select, schemas: dict[str, tuple[str, ...]]
) -> _ClassifiedPredicates:
    join_edges: list[_JoinEdge] = []
    filters: list[tuple[set[str], ast.Comparison]] = []
    anti_joins: list[ast.NotExists] = []
    for predicate in select.where:
        if isinstance(predicate, ast.NotExists):
            anti_joins.append(predicate)
            continue
        left_aliases = expr_aliases(predicate.left, schemas)
        right_aliases = expr_aliases(predicate.right, schemas)
        if (
            predicate.op == "="
            and len(left_aliases) == 1
            and len(right_aliases) == 1
            and left_aliases != right_aliases
        ):
            (alias_a,) = left_aliases
            (alias_b,) = right_aliases
            join_edges.append(_JoinEdge(alias_a, predicate.left, alias_b, predicate.right))
        else:
            filters.append((left_aliases | right_aliases, predicate))
    return _ClassifiedPredicates(join_edges, filters, anti_joins)


# --------------------------------------------------------------------------
# Join pipeline
# --------------------------------------------------------------------------


def _scan_table(alias: str, table_name: str, ctx: ExecutionContext) -> Frame:
    table = ctx.catalog.get_table(table_name)
    with ctx.op_span(f"scan {table_name}", key=f"scan:{alias}", table=table_name) as span:
        data = table.data()
        ctx.charge_parallel(SCAN_PHASE, table.num_rows * COST_SCAN, table.num_rows)
        span.set(rows_out=table.num_rows)
    return Frame.from_table(alias, data, table.column_names)


def _apply_ready_filters(
    frame: Frame,
    bound: set[str],
    classified: _ClassifiedPredicates,
    applied: set[int],
    ctx: ExecutionContext,
) -> Frame:
    for index, (aliases, predicate) in enumerate(classified.filters):
        if index in applied or not aliases <= bound:
            continue
        with ctx.op_span(
            f"filter {predicate}", key=f"filter:{index}", rows_in=len(frame)
        ) as span:
            mask = evaluate_comparison(predicate, frame)
            ctx.charge_parallel(SCAN_PHASE, len(frame) * COST_SCAN, len(frame))
            frame = frame.select(mask)
            span.set(rows_out=len(frame))
        applied.add(index)
    return frame


def _join_frame_with_alias(
    frame: Frame,
    frame_estimate: int,
    alias: str,
    table_name: str,
    edges: list[_JoinEdge],
    ctx: ExecutionContext,
) -> Frame:
    """Hash-join the running frame with a new base table."""
    kind = "hash join" if edges else "cross join"
    with ctx.op_span(
        f"{kind} {table_name} AS {alias}",
        key=f"join:{alias}",
        table=table_name,
        rows_in=len(frame),
    ) as span:
        result = _join_frame_with_alias_inner(
            frame, frame_estimate, alias, table_name, edges, ctx, span
        )
        span.set(rows_out=len(result))
    return result


def _join_frame_with_alias_inner(
    frame: Frame,
    frame_estimate: int,
    alias: str,
    table_name: str,
    edges: list[_JoinEdge],
    ctx: ExecutionContext,
    span,
) -> Frame:
    new_frame = _scan_table(alias, table_name, ctx)
    right_estimate = ctx.estimated_rows(table_name)

    if not edges:
        # Cross product (e.g. node(x), node(y) in the NTC program).
        n, m = len(frame), len(new_frame)
        width = len(frame.indices) + 1
        # Reserve the output *before* materializing so oversized products
        # die as modeled OOMs, not host allocations.
        ctx.metrics.allocate_transient(n * m * 8 * width)
        left_positions = np.repeat(np.arange(n, dtype=np.int64), m)
        right_positions = np.tile(np.arange(m, dtype=np.int64), n)
        ctx.charge_parallel(PROBE_PHASE, (n * m) * COST_MATERIALIZE, n)
        result = frame.joined_with(
            alias, new_frame.bases[alias], new_frame.schemas[alias],
            left_positions, new_frame.indices[alias][right_positions],
        )
        ctx.metrics.release_transient(n * m * 8 * width)
        _charge_frame_materialization(result, ctx)
        return result

    cache = ctx.join_cache
    if cache is not None and cache.enabled:
        cache_columns = _cacheable_key_columns(edges, alias, new_frame)
        if cache_columns is not None:
            extension = cache.extension_estimate(ctx.catalog, table_name, cache_columns)
            classic = choose_build_side(frame_estimate, right_estimate)
            classic_probe = right_estimate if classic.build_left else frame_estimate
            # Build-once/probe-many: a warm index costs probes alone,
            # so the cache wins whenever its extension (Δ) is cheaper
            # than the classic per-iteration hash build. Ties prefer the
            # cache — its build is an investment later probes amortize.
            if cached_join_cost_estimate(extension, frame_estimate) <= join_cost_estimate(
                classic.estimated_build_rows, classic_probe
            ):
                return _cached_index_join(
                    frame, alias, table_name, new_frame, edges, cache_columns, ctx, span
                )

    left_keys = [evaluate(edge.key_for(edge.other(alias)), frame) for edge in edges]
    right_keys = [evaluate(edge.key_for(alias), new_frame) for edge in edges]
    left_key, right_key = kernels.make_join_keys(left_keys, right_keys)

    # The *decision* uses optimizer estimates (possibly stale); the *cost*
    # uses true sizes. A stale decision builds the hash table on the truly
    # larger side — slower and bigger, exactly the OOF-NA penalty.
    decision = choose_build_side(frame_estimate, right_estimate)
    true_left, true_right = len(frame), len(new_frame)
    if decision.build_left:
        build_rows, probe_rows = true_left, true_right
    else:
        build_rows, probe_rows = true_right, true_left
    hash_bytes = build_rows * (8 + HASH_ENTRY_OVERHEAD)
    scatter_rows = true_left + true_right
    scratch_bytes = scatter_rows * PARTITION_SCRATCH_BYTES
    layouts = None
    if ctx.partitions and left_key.size and right_key.size:
        partition_choice = partitioned_join_decision(
            ctx.cost_model, ctx.partitions, build_rows, probe_rows
        )
        if partition_choice.partitioned and ctx.partition_scratch_ok(
            hash_bytes + scratch_bytes
        ):
            layouts = (
                kernels.radix_partition(left_key, ctx.partitions),
                kernels.radix_partition(right_key, ctx.partitions),
            )
    if layouts is not None:
        left_counts = kernels.partition_counts(layouts[0][1])
        right_counts = kernels.partition_counts(layouts[1][1])
        if decision.build_left:
            build_counts, probe_counts = left_counts, right_counts
        else:
            build_counts, probe_counts = right_counts, left_counts
        ctx.metrics.allocate_transient(hash_bytes + scratch_bytes)
        ctx.charge_parallel(
            PARTITION_PHASE, scatter_rows * COST_PARTITION, scatter_rows
        )
        ctx.charge_partitioned_tasks(PARTITIONED_BUILD_PHASE, build_counts * COST_BUILD)
        ctx.charge_partitioned_tasks(PARTITIONED_PROBE_PHASE, probe_counts * COST_PROBE)
        ctx.profiler.counters.inc("partition.join_runs")
        ctx.profiler.counters.inc("partition.scatter_rows", scatter_rows)
    else:
        scratch_bytes = 0
        ctx.metrics.allocate_transient(hash_bytes)
        ctx.charge_parallel(BUILD_PHASE, build_rows * COST_BUILD, build_rows)
        ctx.charge_parallel(PROBE_PHASE, probe_rows * COST_PROBE, probe_rows)
    ctx.profiler.counters.inc("hash_tables_built")
    ctx.profiler.counters.inc("hash_build_rows", build_rows)
    ctx.profiler.counters.inc("hash_probe_rows", probe_rows)
    span.set(
        build_rows=build_rows,
        probe_rows=probe_rows,
        build_side="left(frame)" if decision.build_left else f"right({alias})",
        transient_bytes=hash_bytes + scratch_bytes,
        partitioned=layouts is not None,
    )

    # Reserve the join output before it exists: an intermediate too big
    # for the modeled budget must OOM here, not in the host allocator.
    out_rows = kernels.equi_join_count(left_key, right_key)
    ctx.profiler.counters.inc("join_output_rows", out_rows)
    if out_rows > HARD_JOIN_ROWS:
        from repro.common.errors import OutOfMemoryError

        raise OutOfMemoryError(
            f"join intermediate of {out_rows} rows exceeds the spill limit",
            rows=out_rows,
            limit_rows=HARD_JOIN_ROWS,
            modeled_bytes=out_rows * 8 * (len(frame.indices) + 1),
        )
    out_width = len(frame.indices) + 1
    out_bytes = out_rows * 8 * out_width
    ctx.metrics.allocate_transient(out_bytes)
    if layouts is not None:
        left_positions, right_positions = kernels.partitioned_equi_join_indices(
            left_key, right_key, layouts[0], layouts[1]
        )
    else:
        left_positions, right_positions = kernels.equi_join_indices(left_key, right_key)
    result = frame.joined_with(
        alias,
        new_frame.bases[alias],
        new_frame.schemas[alias],
        left_positions,
        new_frame.indices[alias][right_positions],
    )
    ctx.metrics.release_transient(out_bytes)
    _charge_frame_materialization(result, ctx)
    ctx.metrics.release_transient(hash_bytes + scratch_bytes)
    return result


def _cacheable_key_columns(
    edges: list[_JoinEdge], alias: str, new_frame: Frame
) -> tuple[str, ...] | None:
    """The table-side key columns, if every edge keys on a plain column.

    Computed expressions on the table side (e.g. ``b.x + 1``) are not
    cacheable: the index must be a pure function of stored columns to
    stay valid across appends.
    """
    names: list[str] = []
    for edge in edges:
        expr = edge.key_for(alias)
        if not isinstance(expr, ast.ColumnRef):
            return None
        try:
            owner, column = resolve_column(expr, new_frame)
        except PlanError:
            return None
        if owner != alias:
            return None
        names.append(column)
    return tuple(names)


def _cached_index_join(
    frame: Frame,
    alias: str,
    table_name: str,
    new_frame: Frame,
    edges: list[_JoinEdge],
    key_columns: tuple[str, ...],
    ctx: ExecutionContext,
    span,
) -> Frame:
    """Probe the persistent sorted-code index instead of hashing a side.

    The index build/extension is charged inside ``acquire`` (on the rows
    actually indexed); this path then pays probes only — no per-call hash
    transient, the index is resident memory.
    """
    entry, event = ctx.join_cache.acquire(ctx, table_name, key_columns)
    probe_columns = [evaluate(edge.key_for(edge.other(alias)), frame) for edge in edges]
    probe_rows = len(frame)
    probe_codes = entry.probe_codes(probe_columns)
    ctx.charge_index_pass(
        PROBE_PHASE, PARTITIONED_PROBE_PHASE, probe_rows * COST_PROBE, probe_rows
    )
    ctx.profiler.counters.inc("hash_probe_rows", probe_rows)
    span.set(
        probe_rows=probe_rows,
        build_side=f"cache({alias})",
        join_cache=event,
        cached_rows=entry.rows_indexed,
    )

    # Same pre-materialization OOM guard as the classic path.
    starts, ends = kernels.sorted_probe_range(probe_codes, entry.sorted_codes)
    out_rows = int((ends - starts).sum())
    ctx.profiler.counters.inc("join_output_rows", out_rows)
    if out_rows > HARD_JOIN_ROWS:
        from repro.common.errors import OutOfMemoryError

        raise OutOfMemoryError(
            f"join intermediate of {out_rows} rows exceeds the spill limit",
            rows=out_rows,
            limit_rows=HARD_JOIN_ROWS,
            modeled_bytes=out_rows * 8 * (len(frame.indices) + 1),
        )
    out_width = len(frame.indices) + 1
    out_bytes = out_rows * 8 * out_width
    ctx.metrics.allocate_transient(out_bytes)
    left_positions, table_positions = kernels.sorted_join_indices(
        starts, ends, entry.sorted_positions
    )
    result = frame.joined_with(
        alias,
        new_frame.bases[alias],
        new_frame.schemas[alias],
        left_positions,
        new_frame.indices[alias][table_positions],
    )
    ctx.metrics.release_transient(out_bytes)
    _charge_frame_materialization(result, ctx)
    return result


def _charge_frame_materialization(frame: Frame, ctx: ExecutionContext) -> None:
    rows = len(frame)
    width = len(frame.indices)
    ctx.metrics.allocate_transient(rows * 8 * width)
    ctx.charge_parallel(PROBE_PHASE, rows * COST_MATERIALIZE, rows)
    ctx.metrics.release_transient(rows * 8 * width)


def _build_join_frame(select: ast.Select, ctx: ExecutionContext) -> Frame:
    schemas: dict[str, tuple[str, ...]] = {}
    table_of: dict[str, str] = {}
    for ref in select.tables:
        if ref.alias in schemas:
            raise PlanError(f"duplicate alias {ref.alias!r}")
        schemas[ref.alias] = ctx.catalog.get_table(ref.table).column_names
        table_of[ref.alias] = ref.table

    classified = _classify_predicates(select, schemas)
    estimates = {alias: ctx.estimated_rows(table_of[alias]) for alias in schemas}
    ordered = order_tables_by_estimate(estimates)

    applied_filters: set[int] = set()
    start = ordered[0]
    frame = _scan_table(start, table_of[start], ctx)
    frame = _apply_ready_filters(frame, {start}, classified, applied_filters, ctx)
    bound = {start}
    remaining = [alias for alias in ordered if alias != start]
    frame_estimate = estimates[start]

    while remaining:
        connected = [
            alias
            for alias in remaining
            if any(
                {edge.alias_a, edge.alias_b} == {alias, other}
                for edge in classified.join_edges
                for other in bound
            )
        ]
        next_alias = connected[0] if connected else remaining[0]
        edges = [
            edge
            for edge in classified.join_edges
            if next_alias in (edge.alias_a, edge.alias_b)
            and edge.other(next_alias) in bound
        ]
        frame = _join_frame_with_alias(
            frame, frame_estimate, next_alias, table_of[next_alias], edges, ctx
        )
        bound.add(next_alias)
        remaining.remove(next_alias)
        frame = _apply_ready_filters(frame, bound, classified, applied_filters, ctx)
        # After materializing, the pipeline knows the true cardinality.
        frame_estimate = len(frame)

    if len(applied_filters) != len(classified.filters):
        raise PlanError("some WHERE predicates reference unknown aliases")

    for index, anti in enumerate(classified.anti_joins):
        frame = _apply_anti_join(frame, anti, ctx, index)
    return frame


# --------------------------------------------------------------------------
# NOT EXISTS anti-join
# --------------------------------------------------------------------------


def _apply_anti_join(
    frame: Frame, anti: ast.NotExists, ctx: ExecutionContext, index: int = 0
) -> Frame:
    inner_tables = ", ".join(ref.table for ref in anti.subquery.tables)
    with ctx.op_span(
        f"anti join (NOT EXISTS over {inner_tables})",
        key=f"anti:{index}",
        rows_in=len(frame),
    ) as span:
        result = _apply_anti_join_inner(frame, anti, ctx)
        span.set(rows_out=len(result))
    return result


def _apply_anti_join_inner(
    frame: Frame, anti: ast.NotExists, ctx: ExecutionContext
) -> Frame:
    sub = anti.subquery
    inner_schemas: dict[str, tuple[str, ...]] = {}
    for ref in sub.tables:
        inner_schemas[ref.alias] = ctx.catalog.get_table(ref.table).column_names

    inner_predicates: list[ast.Predicate] = []
    correlated: list[tuple[ast.Expr, ast.Expr]] = []  # (outer expr, inner expr)
    for predicate in sub.where:
        if isinstance(predicate, ast.NotExists):
            raise PlanError("nested NOT EXISTS is not supported")
        left_inner = _is_inner(predicate.left, inner_schemas, frame)
        right_inner = _is_inner(predicate.right, inner_schemas, frame)
        if left_inner and right_inner:
            inner_predicates.append(predicate)
        elif predicate.op == "=" and left_inner != right_inner:
            outer_expr, inner_expr = (
                (predicate.right, predicate.left)
                if left_inner
                else (predicate.left, predicate.right)
            )
            correlated.append((outer_expr, inner_expr))
        else:
            raise PlanError(f"unsupported correlated predicate {predicate}")
    if not correlated:
        raise PlanError("NOT EXISTS subquery must correlate with the outer query")

    inner_select = ast.Select(
        items=tuple(
            ast.SelectItem(ast.Literal(1), None) for _ in correlated
        ),  # items unused; we join on raw expressions below
        tables=sub.tables,
        where=tuple(inner_predicates),
    )
    inner_frame = _build_join_frame(inner_select, ctx)

    outer_keys = [evaluate(outer_expr, frame) for outer_expr, _ in correlated]
    inner_keys = [evaluate(inner_expr, inner_frame) for _, inner_expr in correlated]
    left_key, right_key = kernels.make_join_keys(outer_keys, inner_keys)

    hash_bytes = len(inner_frame) * (8 + HASH_ENTRY_OVERHEAD)
    ctx.metrics.allocate_transient(hash_bytes)
    ctx.charge_parallel(BUILD_PHASE, len(inner_frame) * COST_BUILD, len(inner_frame))
    ctx.charge_parallel(PROBE_PHASE, len(frame) * COST_PROBE, len(frame))
    ctx.profiler.counters.inc("hash_tables_built")
    ctx.profiler.counters.inc("hash_build_rows", len(inner_frame))
    ctx.profiler.counters.inc("hash_probe_rows", len(frame))
    mask = kernels.anti_join_mask(left_key, right_key)
    ctx.metrics.release_transient(hash_bytes)
    return frame.select(mask)


def _is_inner(
    expr: ast.Expr, inner_schemas: dict[str, tuple[str, ...]], outer_frame: Frame
) -> bool:
    """True if the expression refers to the subquery's own tables."""
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            if expr.table in inner_schemas:
                return True
            if expr.table in outer_frame.schemas:
                return False
            raise PlanError(f"unknown alias {expr.table!r} in NOT EXISTS")
        inner_owner = any(expr.column in schema for schema in inner_schemas.values())
        outer_owner = any(expr.column in schema for schema in outer_frame.schemas.values())
        if inner_owner and not outer_owner:
            return True
        if outer_owner and not inner_owner:
            return False
        raise PlanError(f"ambiguous column {expr.column!r} in NOT EXISTS")
    if isinstance(expr, ast.BinaryOp):
        sides = {
            _is_inner(expr.left, inner_schemas, outer_frame),
            _is_inner(expr.right, inner_schemas, outer_frame),
        }
        if len(sides) == 1:
            return sides.pop()
        raise PlanError("expression mixes inner and outer columns")
    raise PlanError(f"unsupported expression in NOT EXISTS: {expr!r}")


# --------------------------------------------------------------------------
# Projection and aggregation
# --------------------------------------------------------------------------


def _has_aggregates(select: ast.Select) -> bool:
    return any(isinstance(item.expr, ast.AggregateCall) for item in select.items)


def _project(select: ast.Select, frame: Frame, ctx: ExecutionContext) -> np.ndarray:
    with ctx.op_span("project", key="project", rows_in=len(frame)) as span:
        columns = [evaluate(item.expr, frame) for item in select.items]
        rows = len(frame)
        ctx.charge_parallel(SCAN_PHASE, rows * COST_MATERIALIZE * len(columns), rows)
        if not columns:
            raise PlanError("SELECT list is empty")
        result = np.column_stack(columns) if rows else np.empty((0, len(columns)), np.int64)
        if select.distinct:
            ctx.charge_parallel(AGGREGATE_PHASE, rows * COST_AGGREGATE, rows)
            result = kernels.unique_rows(result)
        span.set(rows_out=int(result.shape[0]))
    return result


def _aggregate(select: ast.Select, frame: Frame, ctx: ExecutionContext) -> np.ndarray:
    with ctx.op_span("aggregate", key="aggregate", rows_in=len(frame)) as span:
        result = _aggregate_inner(select, frame, ctx)
        span.set(rows_out=int(result.shape[0]))
    return result


def _aggregate_inner(select: ast.Select, frame: Frame, ctx: ExecutionContext) -> np.ndarray:
    group_exprs = list(select.group_by)
    item_plan: list[tuple[str, int]] = []  # ("group", idx) or ("agg", idx)
    agg_specs: list[tuple[str, np.ndarray]] = []
    group_columns = [evaluate(expr, frame) for expr in group_exprs]
    group_repr = [str(expr) for expr in group_exprs]

    for item in select.items:
        if isinstance(item.expr, ast.AggregateCall):
            values = evaluate(item.expr.argument, frame)
            item_plan.append(("agg", len(agg_specs)))
            agg_specs.append((item.expr.func, values))
        else:
            text = str(item.expr)
            if text not in group_repr:
                raise PlanError(
                    f"non-aggregate item {text} must appear in GROUP BY"
                )
            item_plan.append(("group", group_repr.index(text)))

    rows = len(frame)
    ctx.metrics.allocate_transient(rows * 16)
    ctx.charge_parallel(AGGREGATE_PHASE, rows * COST_AGGREGATE, rows)
    group_keys, agg_outputs = kernels.group_aggregate(group_columns, agg_specs)
    ctx.metrics.release_transient(rows * 16)

    if group_columns and group_keys.shape[0] == 0:
        return np.empty((0, len(select.items)), dtype=np.int64)
    out_columns: list[np.ndarray] = []
    for kind, index in item_plan:
        if kind == "group":
            out_columns.append(group_keys[:, index])
        else:
            out_columns.append(agg_outputs[index])
    return np.column_stack(out_columns)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def run_select(select: ast.Select, ctx: ExecutionContext) -> np.ndarray:
    """Execute one SELECT block, returning an (n, items) int64 matrix."""
    frame = _build_join_frame(select, ctx)
    if _has_aggregates(select) or select.group_by:
        return _aggregate(select, frame, ctx)
    return _project(select, frame, ctx)


def run_query(query: ast.Query, ctx: ExecutionContext) -> np.ndarray:
    """Execute a SELECT or UNION ALL of SELECTs (bag semantics)."""
    if isinstance(query, ast.Select):
        return run_select(query, ctx)
    parts = []
    for index, select in enumerate(query.selects):
        with ctx.op_span(f"union arm {index}", key=f"arm:{index}") as span:
            part = run_select(select, ctx)
            span.set(rows_out=int(part.shape[0]))
        parts.append(part)
    widths = {part.shape[1] for part in parts}
    if len(widths) != 1:
        raise PlanError(f"UNION ALL arms have differing widths {sorted(widths)}")
    return np.vstack(parts)

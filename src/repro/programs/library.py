"""Benchmark Datalog programs.

Every program evaluated in the paper (Table 3 plus the running examples),
verbatim in our Datalog dialect. EDB schemas give the column names the
dataset loaders must provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.analyzer import AnalyzedProgram, analyze_program
from repro.datalog.parser import parse_program


@dataclass(frozen=True)
class ProgramSpec:
    """A named benchmark program.

    Attributes:
        name: short id used across benches ("TC", "CSPA", ...).
        title: human-readable name.
        domain: "graph" or "program-analysis".
        source: Datalog source text.
        edb_schemas: relation -> column names (order = term positions).
        outputs: the result relations the paper reports sizes/times for.
    """

    name: str
    title: str
    domain: str
    source: str
    edb_schemas: dict[str, tuple[str, ...]] = field(default_factory=dict)
    outputs: tuple[str, ...] = ()

    def parse(self) -> AnalyzedProgram:
        return analyze_program(parse_program(self.source, name=self.name))


TC = ProgramSpec(
    name="TC",
    title="Transitive Closure",
    domain="graph",
    source="""
        tc(x, y) :- arc(x, y).
        tc(x, y) :- tc(x, z), arc(z, y).
    """,
    edb_schemas={"arc": ("c0", "c1")},
    outputs=("tc",),
)

SG = ProgramSpec(
    name="SG",
    title="Same Generation",
    domain="graph",
    source="""
        sg(x, y) :- arc(p, x), arc(p, y), x != y.
        sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
    """,
    edb_schemas={"arc": ("c0", "c1")},
    outputs=("sg",),
)

REACH = ProgramSpec(
    name="REACH",
    title="Reachability",
    domain="graph",
    source="""
        reach(y) :- id(y).
        reach(y) :- reach(x), arc(x, y).
    """,
    edb_schemas={"arc": ("c0", "c1"), "id": ("c0",)},
    outputs=("reach",),
)

CC = ProgramSpec(
    name="CC",
    title="Connected Components",
    domain="graph",
    source="""
        cc3(x, MIN(x)) :- arc(x, _).
        cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).
        cc2(x, MIN(y)) :- cc3(x, y).
        cc(x) :- cc2(_, x).
    """,
    edb_schemas={"arc": ("c0", "c1")},
    outputs=("cc",),
)

SSSP = ProgramSpec(
    name="SSSP",
    title="Single Source Shortest Path",
    domain="graph",
    source="""
        sssp2(y, MIN(0)) :- id(y).
        sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
        sssp(x, MIN(d)) :- sssp2(x, d).
    """,
    edb_schemas={"arc": ("c0", "c1", "c2"), "id": ("c0",)},
    outputs=("sssp",),
)

ANDERSEN = ProgramSpec(
    name="AA",
    title="Andersen's Analysis",
    domain="program-analysis",
    source="""
        pointsTo(y, x) :- addressOf(y, x).
        pointsTo(y, x) :- assign(y, z), pointsTo(z, x).
        pointsTo(y, w) :- load(y, x), pointsTo(x, z), pointsTo(z, w).
        pointsTo(z, w) :- store(y, x), pointsTo(y, z), pointsTo(x, w).
    """,
    edb_schemas={
        "addressOf": ("c0", "c1"),
        "assign": ("c0", "c1"),
        "load": ("c0", "c1"),
        "store": ("c0", "c1"),
    },
    outputs=("pointsTo",),
)

CSPA = ProgramSpec(
    name="CSPA",
    title="Context-sensitive Points-to Analysis",
    domain="program-analysis",
    source="""
        valueFlow(y, x) :- assign(y, x).
        valueFlow(x, y) :- assign(x, z), memoryAlias(z, y).
        valueFlow(x, y) :- valueFlow(x, z), valueFlow(z, y).
        memoryAlias(x, w) :- dereference(y, x), valueAlias(y, z), dereference(z, w).
        valueAlias(x, y) :- valueFlow(z, x), valueFlow(z, y).
        valueAlias(x, y) :- valueFlow(z, x), memoryAlias(z, w), valueFlow(w, y).
        valueFlow(x, x) :- assign(x, y).
        valueFlow(x, x) :- assign(y, x).
        memoryAlias(x, x) :- assign(y, x).
        memoryAlias(x, x) :- assign(x, y).
    """,
    edb_schemas={"assign": ("c0", "c1"), "dereference": ("c0", "c1")},
    outputs=("valueFlow", "memoryAlias", "valueAlias"),
)

CSDA = ProgramSpec(
    name="CSDA",
    title="Context-sensitive Dataflow Analysis",
    domain="program-analysis",
    source="""
        null(x, y) :- nullEdge(x, y).
        null(x, y) :- null(x, w), arc(w, y).
    """,
    edb_schemas={"nullEdge": ("c0", "c1"), "arc": ("c0", "c1")},
    outputs=("null",),
)

NTC = ProgramSpec(
    name="NTC",
    title="Complement of Transitive Closure (stratified negation)",
    domain="graph",
    source="""
        tc(x, y) :- arc(x, y).
        tc(x, y) :- tc(x, z), arc(z, y).
        node(x) :- arc(x, y).
        node(y) :- arc(x, y).
        ntc(x, y) :- node(x), node(y), !tc(x, y).
    """,
    edb_schemas={"arc": ("c0", "c1")},
    outputs=("ntc",),
)

GTC = ProgramSpec(
    name="GTC",
    title="Transitive Closure with reachable-count aggregation",
    domain="graph",
    source="""
        tc(x, y) :- arc(x, y).
        tc(x, y) :- tc(x, z), arc(z, y).
        gtc(x, COUNT(y)) :- tc(x, y).
    """,
    edb_schemas={"arc": ("c0", "c1")},
    outputs=("gtc",),
)

ALL_PROGRAMS: dict[str, ProgramSpec] = {
    spec.name: spec
    for spec in (TC, SG, REACH, CC, SSSP, ANDERSEN, CSPA, CSDA, NTC, GTC)
}


def get_program(name: str) -> ProgramSpec:
    try:
        return ALL_PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {sorted(ALL_PROGRAMS)}"
        ) from None


def program_names() -> list[str]:
    return sorted(ALL_PROGRAMS)

"""The paper's benchmark Datalog programs (Section 6.2)."""

from repro.programs.library import (
    ALL_PROGRAMS,
    ProgramSpec,
    get_program,
    program_names,
)

__all__ = ["ALL_PROGRAMS", "ProgramSpec", "get_program", "program_names"]

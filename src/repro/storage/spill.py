"""The spill-to-disk storage tier: degrade to disk, not to shed work.

Under memory pressure the degradation ladder's *spill-cold-tables* rung
evicts cold full-relation prefixes to per-table **segment files** on
disk. The resident tail of a spilled table stays appendable (semi-naive
``R <- R U delta`` never rehydrates), kernel scans stream spilled
segments back one at a time through the existing set-difference kernels,
and any code path that genuinely needs the whole relation faults it back
in transparently via :meth:`Table.data`.

Durability discipline matches checkpoints exactly: every segment is
written to a tmp sibling, fsynced, and published with ``os.replace``; a
CRC32 over header+payload rides in a footer; a torn or corrupt segment
is quarantined (renamed, never silently read) and surfaces as a
structured :class:`~repro.common.errors.SpillError` — under pressure the
service gets *slower, never wrong*. Running out of disk is not an error:
the manager sets :attr:`SpillManager.capacity_exhausted`, the table stays
resident, and the degradation ladder proceeds to its next rung — work is
shed only when disk is also exhausted.

All I/O is metered on the simulated clock at the storage manager's
commit bandwidth, resident-vs-spilled bytes are tracked in
:class:`~repro.engine.metrics.MetricsRecorder`, and every outcome bumps
a ``spill.*`` counter.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import SpillError
from repro.obs.counters import NULL_COUNTERS
from repro.storage.block import BLOCK_ROWS, BlockResidency
from repro.storage.manager import COMMIT_WRITE_BANDWIDTH, SPILL_READ_BANDWIDTH
from repro.storage.table import Table

#: Rows per spill segment: a small multiple of the storage block so a
#: streamed scan's transient footprint stays bounded while the segment
#: count (and per-segment fsync overhead) stays low.
SPILL_SEGMENT_ROWS = 4 * BLOCK_ROWS

#: Fixed per-segment I/O overhead (seek + fsync + rename), simulated.
SPILL_IO_OVERHEAD_SECONDS = 2e-4

#: Tables smaller than this are never worth a segment file.
MIN_SPILL_BYTES = 32 << 10

_MAGIC = b"RSPL"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIIQ")  # magic, version, arity, num_rows
_FOOTER = struct.Struct("<I")  # CRC32 over header + payload


@dataclass
class SpillSegment:
    """One durably written row range of a spilled table prefix."""

    path: Path
    start_row: int
    num_rows: int
    payload_bytes: int  # physical int64 bytes in the file
    logical_bytes: int  # modeled bytes (logical tuple width * rows)
    residency: BlockResidency = BlockResidency.SPILLED

    @property
    def file_bytes(self) -> int:
        return _HEADER.size + self.payload_bytes + _FOOTER.size


class SpillManager:
    """Per-table segment files with checkpoint-grade durability.

    The manager owns the spill directory, the segment ledger, and the
    modeled disk budget; tables route their residency transitions
    (:meth:`spill_table`, :meth:`fault_in`, :meth:`discard`) through it
    so the metrics ledger and the files on disk never disagree.
    """

    def __init__(self, directory: str | Path, disk_budget: int | None = None) -> None:
        self.directory = Path(directory)
        self.disk_budget = disk_budget
        self.disk_used = 0
        self.capacity_exhausted = False
        self._segments: dict[str, list[SpillSegment]] = {}
        self._metrics = None
        self._counters = NULL_COUNTERS
        self._resilience = None
        self._on_change = None

    def bind(self, metrics, counters, resilience=None, on_change=None) -> None:
        """Attach the live metrics/counter/resilience surfaces."""
        self._metrics = metrics
        self._counters = counters if counters is not None else NULL_COUNTERS
        self._resilience = resilience
        self._on_change = on_change

    # -- introspection -----------------------------------------------------

    def segments(self, table_name: str) -> tuple[SpillSegment, ...]:
        return tuple(self._segments.get(table_name, ()))

    def spilled_tables(self) -> tuple[str, ...]:
        return tuple(name for name, segs in self._segments.items() if segs)

    def spilled_bytes(self) -> int:
        """Modeled (logical) bytes currently on disk across all tables."""
        return sum(
            segment.logical_bytes
            for segments in self._segments.values()
            for segment in segments
        )

    # -- spilling ----------------------------------------------------------

    def spill_table(self, table: Table, max_rows: int | None = None) -> int:
        """Evict (a prefix of) ``table``'s resident rows to disk.

        Returns the number of rows durably spilled, which may be short of
        the request when the disk budget (real or injected ENOSPC) runs
        out — in that case :attr:`capacity_exhausted` is set and the
        caller stops descending this rung. The table's prefix is only
        dropped after every covering segment hit disk, so a fault mid-way
        leaves the table fully consistent.
        """
        resident = table.resident_rows
        rows = resident if max_rows is None else min(max_rows, resident)
        if rows <= 0:
            return 0
        self.directory.mkdir(parents=True, exist_ok=True)
        data = table.resident_data()
        tuple_bytes = table.tuple_bytes()
        existing = self._segments.setdefault(table.name, [])
        base_row = table.spilled_rows
        written: list[SpillSegment] = []
        io_seconds = 0.0
        for start in range(0, rows, SPILL_SEGMENT_ROWS):
            chunk = data[start : min(start + SPILL_SEGMENT_ROWS, rows)]
            payload = np.ascontiguousarray(chunk, dtype=np.int64).tobytes()
            file_bytes = _HEADER.size + len(payload) + _FOOTER.size
            if self._out_of_disk(file_bytes):
                self.capacity_exhausted = True
                self._counters.inc("spill.enospc")
                break
            segment = SpillSegment(
                path=self.directory
                / f"{table.name}-e{table.epoch:04d}-s{base_row + start:010d}.spill",
                start_row=base_row + start,
                num_rows=chunk.shape[0],
                payload_bytes=len(payload),
                logical_bytes=tuple_bytes * chunk.shape[0],
            )
            self._run_guarded(
                "spill_write", lambda: self._write_segment(segment, table.arity, payload)
            )
            written.append(segment)
            self.disk_used += segment.file_bytes
            self._counters.inc("spill.segments_written")
            self._counters.inc("spill.bytes_written", segment.file_bytes)
            io_seconds += (
                segment.file_bytes / COMMIT_WRITE_BANDWIDTH + SPILL_IO_OVERHEAD_SECONDS
            )
        spilled_rows = sum(segment.num_rows for segment in written)
        if spilled_rows:
            existing.extend(written)
            table.drop_spilled_prefix(spilled_rows)
            self._counters.inc("spill.tables_spilled")
            self._note_spilled(sum(segment.logical_bytes for segment in written))
            self._changed()
        self._advance(io_seconds)
        return spilled_rows

    # -- reading back ------------------------------------------------------

    def read_segment(self, table: Table, segment: SpillSegment) -> np.ndarray:
        """Read and validate one segment (streamed scans).

        Charges the simulated read bandwidth; a corrupt segment is
        quarantined and raised as :class:`SpillError`.
        """
        rows = self._run_guarded(
            "spill_read", lambda: self._read_validated(table, segment)
        )
        self._counters.inc("spill.segment_reads")
        self._counters.inc("spill.bytes_read", segment.file_bytes)
        self._advance(
            segment.file_bytes / SPILL_READ_BANDWIDTH + SPILL_IO_OVERHEAD_SECONDS
        )
        return rows

    def fault_in(self, table: Table) -> int:
        """Rehydrate the whole spilled prefix back into the table.

        The correctness backstop: any consumer that needs the full
        relation (``Table.data()``) lands here. Segment files are removed
        once absorbed. Returns the number of rows rehydrated.
        """
        segments = self._segments.get(table.name)
        if not segments:
            return 0
        prefix = np.empty((table.spilled_rows, table.arity), dtype=np.int64)
        for segment in segments:
            rows = self.read_segment(table, segment)
            prefix[segment.start_row : segment.start_row + segment.num_rows] = rows
        table.absorb_spilled_prefix(prefix)
        self._note_spilled(-sum(segment.logical_bytes for segment in segments))
        self._remove_files(segments)
        self._segments[table.name] = []
        self._counters.inc("spill.fault_ins")
        self._changed()
        return prefix.shape[0]

    def snapshot_prefix(self, table: Table) -> np.ndarray:
        """The spilled prefix as an array *without* changing residency.

        Checkpoints use this so saving state never flips a cold table
        back to resident (checkpoint_every=1 would otherwise defeat the
        rung entirely).
        """
        segments = self._segments.get(table.name, [])
        prefix = np.empty((table.spilled_rows, table.arity), dtype=np.int64)
        for segment in segments:
            rows = self.read_segment(table, segment)
            prefix[segment.start_row : segment.start_row + segment.num_rows] = rows
        return prefix

    # -- lifecycle ---------------------------------------------------------

    def discard(self, table_name: str) -> int:
        """Drop a table's segments unread (rewrite/truncate/drop paths)."""
        segments = self._segments.pop(table_name, [])
        if not segments:
            return 0
        self._note_spilled(-sum(segment.logical_bytes for segment in segments))
        self._remove_files(segments)
        self._counters.inc("spill.discarded_segments", len(segments))
        self._changed()
        return len(segments)

    def cleanup(self) -> None:
        """Remove every segment file (end of evaluation).

        Quarantined torn files are swept too: they were evidence for the
        duration of the evaluation, but session release is the end of
        their forensic life — leaving them would accumulate unbounded
        ``.quarantine`` litter across sessions. Each sweep bumps
        ``spill.quarantine_swept``.
        """
        for name in list(self._segments):
            segments = self._segments.pop(name)
            self._note_spilled(-sum(segment.logical_bytes for segment in segments))
            self._remove_files(segments)
        swept = 0
        try:
            quarantined = list(self.directory.glob("*.quarantine"))
        except OSError:
            quarantined = []
        for path in quarantined:
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        if swept:
            self._counters.inc("spill.quarantine_swept", swept)
        try:
            self.directory.rmdir()
        except OSError:
            pass

    # -- internals ---------------------------------------------------------

    def _out_of_disk(self, file_bytes: int) -> bool:
        if self.disk_budget is not None and self.disk_used + file_bytes > self.disk_budget:
            return True
        injector = getattr(self._resilience, "injector", None)
        return injector is not None and injector.disk_full()

    def _write_segment(self, segment: SpillSegment, arity: int, payload: bytes) -> None:
        header = _HEADER.pack(_MAGIC, _FORMAT_VERSION, arity, segment.num_rows)
        footer = _FOOTER.pack(zlib.crc32(header + payload))
        tmp = segment.path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.write(footer)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, segment.path)

    def _read_validated(self, table: Table, segment: SpillSegment) -> np.ndarray:
        try:
            raw = segment.path.read_bytes()
        except OSError as exc:
            raise self._torn(table, segment, f"unreadable: {exc}") from exc
        if len(raw) != segment.file_bytes:
            raise self._torn(table, segment, "truncated")
        header, payload = raw[: _HEADER.size], raw[_HEADER.size : -_FOOTER.size]
        magic, version, arity, num_rows = _HEADER.unpack(header)
        (crc,) = _FOOTER.unpack(raw[-_FOOTER.size :])
        if magic != _MAGIC or version != _FORMAT_VERSION:
            raise self._torn(table, segment, "bad magic/version")
        if arity != table.arity or num_rows != segment.num_rows:
            raise self._torn(table, segment, "header mismatch")
        if zlib.crc32(header + payload) != crc:
            raise self._torn(table, segment, "checksum mismatch")
        return np.frombuffer(payload, dtype=np.int64).reshape(num_rows, arity)

    def _torn(self, table: Table, segment: SpillSegment, reason: str) -> SpillError:
        quarantine = segment.path.with_suffix(".quarantine")
        try:
            os.replace(segment.path, quarantine)
        except OSError:
            pass
        self._counters.inc("spill.torn_quarantined")
        return SpillError(
            f"torn spill segment ({reason})",
            table=table.name,
            segment=str(segment.path.name),
            start_row=segment.start_row,
        )

    def _run_guarded(self, site: str, operation):
        if self._resilience is not None:
            return self._resilience.run(site, operation)
        return operation()

    def _remove_files(self, segments: list[SpillSegment]) -> None:
        for segment in segments:
            segment.path.unlink(missing_ok=True)
            self.disk_used = max(0, self.disk_used - segment.file_bytes)

    def _note_spilled(self, delta: int) -> None:
        if self._metrics is not None:
            self._metrics.note_spilled(delta)

    def _advance(self, seconds: float) -> None:
        if seconds > 0 and self._metrics is not None:
            self._metrics.advance(seconds, utilization=0.05)

    def _changed(self) -> None:
        if self._on_change is not None:
            self._on_change()

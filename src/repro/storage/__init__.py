"""In-memory columnar storage substrate (the QuickStep stand-in).

Tables hold fixed-width integer tuples in block-partitioned NumPy storage.
The catalog tracks schemas and (explicitly refreshed) statistics, and the
storage manager models persistence so the EOST optimization has an I/O
cost to remove.
"""

from repro.storage.block import BLOCK_ROWS, BlockResidency, iter_blocks
from repro.storage.catalog import Catalog
from repro.storage.column import ColumnSchema, ColumnType
from repro.storage.manager import StorageManager
from repro.storage.spill import SpillManager, SpillSegment
from repro.storage.stats import StatsMode, TableStats, collect_stats
from repro.storage.table import Table

__all__ = [
    "BLOCK_ROWS",
    "BlockResidency",
    "iter_blocks",
    "Catalog",
    "ColumnSchema",
    "ColumnType",
    "StorageManager",
    "SpillManager",
    "SpillSegment",
    "StatsMode",
    "TableStats",
    "collect_stats",
    "Table",
]

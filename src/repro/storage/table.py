"""Growable in-memory tables.

A :class:`Table` owns a 2-D ``int64`` array of shape ``(capacity, arity)``
with amortized-doubling appends, plus the column schema. Rows are bag
semantics at this layer — deduplication is an explicit engine operation
(Algorithm 1's ``dedup``), exactly as in the paper where INSERT uses
UNION ALL and dedup is a separate call.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.common.errors import CatalogError
from repro.storage.block import BLOCK_ROWS, block_count, iter_blocks
from repro.storage.column import ColumnSchema, ColumnType

_INITIAL_CAPACITY = 64


class Table:
    """A named, typed, block-partitioned bag of integer tuples."""

    def __init__(self, name: str, columns: Sequence[ColumnSchema]) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(column.name)
        self.name = name
        self.columns: tuple[ColumnSchema, ...] = tuple(columns)
        self._rows = np.empty((_INITIAL_CAPACITY, len(columns)), dtype=np.int64)
        self._count = 0
        #: Rows [0, _spilled_rows) live in spill segment files; the
        #: in-memory array holds only the resident tail, so buffer index i
        #: is logical row ``i + _spilled_rows``. Residency transitions go
        #: through the bound SpillManager and never touch version/epoch —
        #: the logical contents are unchanged.
        self._spilled_rows = 0
        self._spill_manager = None
        #: Bumped on *every* mutation; lets caches detect any change.
        self.version = 0
        #: Bumped only on rewrites (replace/truncate) — appends keep the
        #: epoch, which is what makes append-only incremental indexing and
        #: the optimizer's rewrite-staleness guard possible.
        self.epoch = 0

    # -- schema ------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def tuple_bytes(self) -> int:
        """Logical bytes per tuple (used by cost and memory models)."""
        return sum(column.ctype.logical_bytes for column in self.columns)

    # -- contents ----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def num_rows(self) -> int:
        return self._count

    @property
    def spilled_rows(self) -> int:
        return self._spilled_rows

    @property
    def resident_rows(self) -> int:
        return self._count - self._spilled_rows

    def data(self) -> np.ndarray:
        """A read-only view of the live rows (no copy).

        The correctness backstop for spilling: a spilled table is faulted
        back in (charging the modeled read I/O) before the view is
        handed out, so every consumer always sees the full relation.
        """
        if self._spilled_rows:
            self._spill_manager.fault_in(self)
        view = self._rows[: self._count]
        view.flags.writeable = False
        return view

    def resident_data(self) -> np.ndarray:
        """A read-only view of only the resident tail (no fault-in)."""
        view = self._rows[: self.resident_rows]
        view.flags.writeable = False
        return view

    def tail_data(self, start_row: int) -> np.ndarray:
        """Rows ``[start_row, num_rows)`` without fault-in when possible.

        Incremental consumers (the join-cache extension) only ever need
        the appended tail, which by construction lives in the resident
        region; asking for rows inside the spilled prefix falls back to
        the fault-in path.
        """
        if start_row < self._spilled_rows:
            return self.data()[start_row:]
        view = self._rows[start_row - self._spilled_rows : self.resident_rows]
        view.flags.writeable = False
        return view

    def to_array(self) -> np.ndarray:
        """A copy of the live rows, safe to mutate."""
        return self.data().copy()

    def to_set(self) -> set[tuple[int, ...]]:
        """Rows as a Python set of tuples (tests and small results only)."""
        return {tuple(int(value) for value in row) for row in self.data()}

    def blocks(self, block_rows: int = BLOCK_ROWS):
        return iter_blocks(self.data(), block_rows)

    def num_blocks(self, block_rows: int = BLOCK_ROWS) -> int:
        return block_count(self._count, block_rows)

    def memory_bytes(self) -> int:
        """Modeled resident size: logical tuple width times resident rows."""
        return self.tuple_bytes() * self.resident_rows

    def spilled_bytes(self) -> int:
        """Modeled bytes of the spilled prefix (on disk, not in memory)."""
        return self.tuple_bytes() * self._spilled_rows

    # -- mutation ----------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        needed = self.resident_rows + extra
        if needed <= self._rows.shape[0]:
            return
        capacity = max(self._rows.shape[0], _INITIAL_CAPACITY)
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self.arity), dtype=np.int64)
        grown[: self.resident_rows] = self._rows[: self.resident_rows]
        self._rows = grown

    def append_array(self, rows: np.ndarray) -> None:
        """Append a 2-D array of rows (bag semantics, no dedup)."""
        if rows.ndim != 2 or rows.shape[1] != self.arity:
            raise CatalogError(
                f"cannot append shape {rows.shape} into table {self.name!r} "
                f"of arity {self.arity}"
            )
        if rows.shape[0] == 0:
            return
        self._reserve(rows.shape[0])
        resident = self.resident_rows
        self._rows[resident : resident + rows.shape[0]] = rows
        self._count += rows.shape[0]
        self.version += 1

    def append_tuples(self, tuples: Iterable[Sequence[int]]) -> None:
        materialized = list(tuples)
        if not materialized:
            return
        self.append_array(np.asarray(materialized, dtype=np.int64).reshape(len(materialized), self.arity))

    def replace_contents(self, rows: np.ndarray) -> None:
        """Overwrite the table's rows (used by dedup and delta swaps)."""
        if rows.ndim != 2 or rows.shape[1] != self.arity:
            raise CatalogError(
                f"cannot load shape {rows.shape} into table {self.name!r} "
                f"of arity {self.arity}"
            )
        self._discard_spill()
        self._rows = np.ascontiguousarray(rows, dtype=np.int64)
        self._count = rows.shape[0]
        self.version += 1
        self.epoch += 1

    def truncate(self) -> None:
        self._discard_spill()
        self._count = 0
        self.version += 1
        self.epoch += 1

    # -- residency (driven by the SpillManager) ----------------------------

    def bind_spill(self, manager) -> None:
        self._spill_manager = manager

    def drop_spilled_prefix(self, rows: int) -> None:
        """Release the first ``rows`` resident rows; they are now on disk.

        Called by the SpillManager only after every covering segment has
        been durably written. The buffer is reallocated so the memory is
        genuinely freed, not just re-labelled.
        """
        resident = self.resident_rows
        if not 0 < rows <= resident:
            raise ValueError(
                f"cannot spill {rows} of {resident} resident rows in {self.name!r}"
            )
        remaining = resident - rows
        shrunk = np.empty((max(remaining, _INITIAL_CAPACITY), self.arity), dtype=np.int64)
        shrunk[:remaining] = self._rows[rows:resident]
        self._rows = shrunk
        self._spilled_rows += rows

    def absorb_spilled_prefix(self, prefix: np.ndarray) -> None:
        """Rehydrate the spilled prefix in front of the resident tail."""
        if prefix.shape != (self._spilled_rows, self.arity):
            raise ValueError(
                f"prefix shape {prefix.shape} does not match "
                f"{(self._spilled_rows, self.arity)} for {self.name!r}"
            )
        resident = self.resident_rows
        grown = np.empty((max(self._count, _INITIAL_CAPACITY), self.arity), dtype=np.int64)
        grown[: self._spilled_rows] = prefix
        grown[self._spilled_rows : self._count] = self._rows[:resident]
        self._rows = grown
        self._spilled_rows = 0

    def _discard_spill(self) -> None:
        if self._spilled_rows and self._spill_manager is not None:
            self._spill_manager.discard(self.name)
        self._spilled_rows = 0

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"Table({self.name!r}, [{cols}], rows={self._count})"


def make_table(name: str, column_names: Sequence[str], ctype: ColumnType = ColumnType.INT) -> Table:
    """Convenience constructor used heavily in tests and dataset loaders."""
    return Table(name, [ColumnSchema(column, ctype) for column in column_names])

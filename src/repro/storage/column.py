"""Column schema descriptors.

The engine is an integer machine, like the paper's setting: "The inputs of
Datalog programs are usually integers transformed by mapping the active
domain of the original data" (Section 5.2, footnote 2). All columns are
64-bit integers at the storage level; ``ColumnType`` records the declared
logical type for width-aware optimizations such as the compact concatenated
key used by FAST-DEDUP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ColumnType(enum.Enum):
    """Logical column types supported by the mini-SQL dialect."""

    INT = "INT"        # 32-bit logical width (storage is int64)
    BIGINT = "BIGINT"  # full 64-bit width

    @property
    def logical_bytes(self) -> int:
        return 4 if self is ColumnType.INT else 8

    @classmethod
    def parse(cls, text: str) -> "ColumnType":
        normalized = text.strip().upper()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown column type {text!r}")


@dataclass(frozen=True)
class ColumnSchema:
    """Name and logical type of one table column."""

    name: str
    ctype: ColumnType = ColumnType.INT

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid column name {self.name!r}")

"""Table statistics and the ANALYZE machinery behind OOF.

The paper's Optimization-On-the-Fly collects *targeted* statistics at every
iteration instead of either never re-analyzing (OOF-NA) or re-collecting
everything (OOF-FA). We model three collection modes with different costs:

* ``SIZE_ONLY``  — row count + tuple width; O(1). What OOF uses for joins.
* ``FULL``       — adds min/max/sum/avg and a distinct estimate per column;
                   requires a full scan. What OOF-FA always pays.
* ``NONE``       — statistics frozen at their last value (OOF-NA).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.storage.table import Table


class StatsMode(enum.Enum):
    NONE = "none"
    SIZE_ONLY = "size_only"
    FULL = "full"


@dataclass(frozen=True)
class ColumnDomain:
    """A closed value range ``[low, high]`` a column is promised to stay in.

    Domains are what make compact-key packing *stable*: a codec built
    from explicit domains assigns the same code to the same tuple in
    every call, so packed keys are comparable across calls and
    iterations. Domains only ever widen (see ``Catalog.widen_domain``).
    """

    low: int
    high: int

    @property
    def bits(self) -> int:
        """Bits needed to encode any value in the domain (minimum 1)."""
        return max(1, int(self.high - self.low).bit_length())

    def contains(self, low: int, high: int) -> bool:
        return self.low <= low and high <= self.high

    def widened(self, low: int, high: int) -> "ColumnDomain":
        if self.contains(low, high):
            return self
        return ColumnDomain(min(self.low, low), max(self.high, high))


def observed_domain(values: np.ndarray) -> ColumnDomain:
    """The tightest domain covering ``values`` (``[0, 0]`` when empty)."""
    if values.size == 0:
        return ColumnDomain(0, 0)
    return ColumnDomain(int(values.min()), int(values.max()))


@dataclass
class ColumnStats:
    minimum: int = 0
    maximum: int = 0
    total: int = 0
    mean: float = 0.0
    distinct_estimate: int = 0


@dataclass
class TableStats:
    """Optimizer-visible statistics for one table.

    ``num_rows`` may be stale: it reflects the last ANALYZE, not the live
    table, which is precisely what makes OOF-NA pick bad plans.
    """

    num_rows: int = 0
    tuple_bytes: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    analyzed_full: bool = False
    #: Table version/epoch at collection time (-1: never stamped). The
    #: epoch lets consumers tell *append* staleness (the modeled OOF
    #: failure mode, epochs match) from *rewrite* staleness (the stats
    #: describe a previous generation of the table entirely).
    table_version: int = -1
    table_epoch: int = -1
    #: Version/epoch stamps of the last FULL collection that produced
    #: ``columns``. A SIZE_ONLY refresh carries the column stats forward
    #: (they are expensive and still useful to the optimizer) but leaves
    #: these stamps at the FULL collection's values, so consumers can
    #: tell how stale min/max/distinct are independently of ``num_rows``.
    columns_table_version: int = -1
    columns_table_epoch: int = -1

    def estimated_bytes(self) -> int:
        return self.num_rows * self.tuple_bytes


def collect_stats(table: Table, mode: StatsMode, previous: TableStats | None = None) -> tuple[TableStats, float]:
    """Collect statistics for ``table`` under ``mode``.

    Returns the stats plus the modeled collection cost in simulated seconds
    (charged by the interpreter's ``analyze`` calls).
    """
    if mode is StatsMode.NONE:
        stats = previous if previous is not None else TableStats(tuple_bytes=table.tuple_bytes())
        return stats, 0.0

    stats = TableStats(
        num_rows=table.num_rows,
        tuple_bytes=table.tuple_bytes(),
        table_version=table.version,
        table_epoch=table.epoch,
    )
    if mode is StatsMode.SIZE_ONLY:
        # Catalog lookup only: constant, tiny cost. Column statistics
        # from an earlier FULL collection are carried forward instead of
        # discarded (a size refresh says nothing about min/max/distinct);
        # their staleness stamps keep the FULL collection's values.
        if previous is not None and previous.analyzed_full:
            stats.columns = dict(previous.columns)
            stats.analyzed_full = True
            stats.columns_table_version = previous.columns_table_version
            stats.columns_table_epoch = previous.columns_table_epoch
        return stats, 2e-5

    data = table.data()
    if table.num_rows:
        for index, column in enumerate(table.columns):
            values = data[:, index]
            stats.columns[column.name] = ColumnStats(
                minimum=int(values.min()),
                maximum=int(values.max()),
                total=int(values.sum()),
                mean=float(values.mean()),
                distinct_estimate=_distinct_estimate(values),
            )
    else:
        for column in table.columns:
            stats.columns[column.name] = ColumnStats()
    stats.analyzed_full = True
    stats.columns_table_version = table.version
    stats.columns_table_epoch = table.epoch
    # Full scan of every column: cost linear in cell count.
    cost = 2e-9 * max(1, table.num_rows) * table.arity + 5e-5
    return stats, cost


#: Distinct-estimate sample budget: the bounded cost the OOF contract
#: promises for FULL ANALYZE regardless of table size.
DISTINCT_SAMPLE_TARGET = 4096


def _distinct_estimate(values: np.ndarray) -> int:
    """Sample-based distinct-count estimate (GEE-style scale-up).

    The stride is ``ceil(n / target)`` so the sample never exceeds the
    target: a floor stride (the old code) degenerated near the boundary —
    n = 8191 gave stride 1, i.e. a "sample" of the whole array.
    """
    n = values.shape[0]
    if n <= DISTINCT_SAMPLE_TARGET:
        return int(np.unique(values).size)
    stride = -(-n // DISTINCT_SAMPLE_TARGET)
    sample = values[::stride]
    d_sample = int(np.unique(sample).size)
    scale = n / sample.shape[0]
    return min(n, int(d_sample * np.sqrt(scale)))

"""Block partitioning of table storage.

QuickStep stores tables as independent blocks that its scheduler hands to
worker threads; we reproduce that by carving each table's row array into
fixed-size row ranges. The executor turns each block into one task, so the
block size is the unit of intra-operator parallelism.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator

import numpy as np

#: Rows per storage block. Chosen so the scaled-down datasets still span
#: enough blocks to keep all simulated workers busy (QuickStep's blocks are
#: a few MB; our data is ~1/100 scale, so blocks shrink accordingly), while
#: genuinely small deltas stay single-block — reproducing the paper's
#: observation that small per-iteration inputs underutilize the cores.
BLOCK_ROWS = 1 << 12


class BlockResidency(enum.Enum):
    """Where a row range of a table currently lives.

    ``RESIDENT`` ranges are in the table's in-memory array; ``SPILLED``
    ranges live in checksummed segment files owned by the
    :class:`~repro.storage.spill.SpillManager` and must be streamed or
    faulted back in before a kernel can touch them.
    """

    RESIDENT = "resident"
    SPILLED = "spilled"


def iter_blocks(rows: np.ndarray, block_rows: int = BLOCK_ROWS) -> Iterator[np.ndarray]:
    """Yield consecutive row-range views of ``rows``.

    Views, not copies: operators may read blocks but must not mutate them.
    """
    if block_rows <= 0:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    total = rows.shape[0]
    for start in range(0, total, block_rows):
        yield rows[start : start + block_rows]


def block_count(num_rows: int, block_rows: int = BLOCK_ROWS) -> int:
    """Number of blocks a table with ``num_rows`` rows occupies (min 1)."""
    if num_rows <= 0:
        return 1
    return (num_rows + block_rows - 1) // block_rows

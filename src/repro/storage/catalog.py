"""The catalog: schemas plus optimizer statistics.

Statistics updates are explicit (the interpreter calls ``analyze``),
mirroring Algorithm 1's ``analyze(R)`` calls and making the OOF ablation
(stale vs. targeted vs. full statistics) observable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import CatalogError
from repro.storage.column import ColumnSchema
from repro.storage.stats import StatsMode, TableStats, collect_stats
from repro.storage.table import Table


class Catalog:
    """Name -> (table, stats) mapping with CREATE/DROP semantics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def create_table(self, name: str, columns: Sequence[ColumnSchema]) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        self._stats[name] = TableStats(tuple_bytes=table.tuple_bytes())
        return table

    def adopt_table(self, table: Table) -> Table:
        """Register an externally built table (dataset loaders use this)."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._stats[table.name] = TableStats(
            num_rows=table.num_rows, tuple_bytes=table.tuple_bytes()
        )
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        del self._stats[name]

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def get_stats(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def analyze(self, name: str, mode: StatsMode = StatsMode.SIZE_ONLY) -> float:
        """Refresh statistics for ``name``; returns the modeled cost."""
        table = self.get_table(name)
        stats, cost = collect_stats(table, mode, previous=self._stats.get(name))
        self._stats[name] = stats
        return cost

    def total_memory_bytes(self) -> int:
        """Modeled bytes resident across all tables (memory traces)."""
        return sum(table.memory_bytes() for table in self._tables.values())

"""The catalog: schemas plus optimizer statistics.

Statistics updates are explicit (the interpreter calls ``analyze``),
mirroring Algorithm 1's ``analyze(R)`` calls and making the OOF ablation
(stale vs. targeted vs. full statistics) observable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import CatalogError
from repro.storage.column import ColumnSchema
from repro.storage.stats import ColumnDomain, StatsMode, TableStats, collect_stats
from repro.storage.table import Table


class Catalog:
    """Name -> (table, stats) mapping with CREATE/DROP semantics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        #: Per-table, per-column value domains (monotonically widening).
        #: Registered by FULL ANALYZE and by the join-state cache; these
        #: are what keep compact-key packing stable across iterations.
        self._domains: dict[str, dict[str, ColumnDomain]] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def create_table(self, name: str, columns: Sequence[ColumnSchema]) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        self._stats[name] = TableStats(
            tuple_bytes=table.tuple_bytes(),
            table_version=table.version,
            table_epoch=table.epoch,
        )
        return table

    def adopt_table(self, table: Table) -> Table:
        """Register an externally built table (dataset loaders use this)."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._stats[table.name] = TableStats(
            num_rows=table.num_rows,
            tuple_bytes=table.tuple_bytes(),
            table_version=table.version,
            table_epoch=table.epoch,
        )
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        del self._stats[name]
        self._domains.pop(name, None)

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def get_stats(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def analyze(self, name: str, mode: StatsMode = StatsMode.SIZE_ONLY) -> float:
        """Refresh statistics for ``name``; returns the modeled cost."""
        table = self.get_table(name)
        stats, cost = collect_stats(table, mode, previous=self._stats.get(name))
        self._stats[name] = stats
        if table.num_rows:
            for column, column_stats in stats.columns.items():
                self.widen_domain(
                    name, column, column_stats.minimum, column_stats.maximum
                )
        return cost

    def estimated_rows(self, name: str) -> int:
        """Optimizer row estimate, guarded against rewritten tables.

        Statistics describing a *previous generation* of the table (the
        epoch changed since collection — the table was rewritten, not
        appended to) fall back to the live row count: such estimates are
        not merely stale, they are about different contents entirely.
        Append-only staleness keeps the stats value — that is the OOF
        trade-off the ablations measure.
        """
        stats = self.get_stats(name)
        if stats.table_epoch >= 0 and stats.table_epoch != self.get_table(name).epoch:
            return self.get_table(name).num_rows
        return stats.num_rows

    def widen_domain(self, name: str, column: str, low: int, high: int) -> ColumnDomain:
        """Widen (or register) the stable value domain of one column."""
        per_table = self._domains.setdefault(name, {})
        current = per_table.get(column)
        domain = (
            ColumnDomain(low, high) if current is None else current.widened(low, high)
        )
        per_table[column] = domain
        return domain

    def column_domain(self, name: str, column: str) -> ColumnDomain | None:
        """The registered stable domain of a column, if any."""
        return self._domains.get(name, {}).get(column)

    def total_memory_bytes(self) -> int:
        """Modeled bytes resident across all tables (memory traces)."""
        return sum(table.memory_bytes() for table in self._tables.values())

"""Storage manager: models persistence so EOST has an effect.

QuickStep writes dirty blocks back after each state-changing query; the
paper's EOST optimization pends those writes until the fixpoint. We model
that I/O with a per-byte cost: with EOST off, every mutation charges
write-back immediately; with EOST on, the manager accumulates dirty bytes
and charges a single (cheaper, sequential) flush at commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modeled random write-back bandwidth (bytes/simulated-second) used for the
#: per-query flushes that EOST removes.
PER_QUERY_WRITE_BANDWIDTH = 300e6
#: Sequential flush bandwidth at commit time (EOST path).
COMMIT_WRITE_BANDWIDTH = 1.2e9
#: Fixed transaction bookkeeping cost per committed query (log record,
#: page-table walk); this accumulates over the ~1000 iterations of CSDA.
PER_QUERY_COMMIT_OVERHEAD = 4e-4
#: Sequential read bandwidth for rehydrating/streaming spilled segments
#: (the spill tier shares the commit device, so writes reuse
#: COMMIT_WRITE_BANDWIDTH; reads are the same class of sequential I/O).
SPILL_READ_BANDWIDTH = 1.2e9


@dataclass
class StorageManager:
    """Tracks dirty bytes and converts them into simulated I/O time."""

    eost: bool = True
    _pending_bytes: int = 0
    _flushed_bytes: int = 0
    io_seconds: float = 0.0
    query_commits: int = 0
    _dirty_tables: set[str] = field(default_factory=set)

    def mark_dirty(self, table_name: str, new_bytes: int) -> float:
        """Record that a query dirtied ``new_bytes`` of ``table_name``.

        Returns the simulated I/O seconds charged *now* (0 under EOST).
        """
        if new_bytes < 0:
            raise ValueError(f"negative dirty byte count {new_bytes}")
        self._dirty_tables.add(table_name)
        if self.eost:
            self._pending_bytes += new_bytes
            return 0.0
        self.query_commits += 1
        cost = new_bytes / PER_QUERY_WRITE_BANDWIDTH + PER_QUERY_COMMIT_OVERHEAD
        self._flushed_bytes += new_bytes
        self.io_seconds += cost
        return cost

    def commit(self) -> float:
        """Flush everything pending; returns the simulated flush cost."""
        if self._pending_bytes == 0:
            return 0.0
        cost = self._pending_bytes / COMMIT_WRITE_BANDWIDTH
        self._flushed_bytes += self._pending_bytes
        self._pending_bytes = 0
        self._dirty_tables.clear()
        self.io_seconds += cost
        return cost

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    @property
    def flushed_bytes(self) -> int:
        return self._flushed_bytes

    def dirty_tables(self) -> set[str]:
        return set(self._dirty_tables)

"""AST node types for the mini-SQL dialect.

The nodes are deliberately close to the textual dialect; binding against
the catalog and lowering to physical operators happens in ``repro.engine``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.column import ColumnType

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for scalar expressions."""


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``alias.column`` or bare ``column`` reference."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic: ``left op right`` with op in {+, -, *}."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggregateCall(Expr):
    """``MIN(expr)`` etc. Only valid in a SELECT item."""

    func: str  # MIN | MAX | SUM | COUNT | AVG
    argument: Expr

    def __str__(self) -> str:
        return f"{self.func}({self.argument})"


# --------------------------------------------------------------------------
# Predicates
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in {=, <>, !=, <, <=, >, >=}."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class NotExists:
    """``NOT EXISTS (SELECT ...)`` — compiled to an anti-join."""

    subquery: "Select"

    def __str__(self) -> str:
        return f"NOT EXISTS ({self.subquery})"


Predicate = Comparison | NotExists


# --------------------------------------------------------------------------
# Queries and statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str

    def __str__(self) -> str:
        return self.table if self.table == self.alias else f"{self.table} {self.alias}"


@dataclass(frozen=True)
class Select:
    """One SELECT block (a UNION ALL arm)."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: tuple[Predicate, ...] = ()
    group_by: tuple[Expr, ...] = ()
    distinct: bool = False

    def __str__(self) -> str:
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        parts.append(", ".join(str(item) for item in self.items))
        parts.append(" FROM " + ", ".join(str(ref) for ref in self.tables))
        if self.where:
            parts.append(" WHERE " + " AND ".join(str(p) for p in self.where))
        if self.group_by:
            parts.append(" GROUP BY " + ", ".join(str(e) for e in self.group_by))
        return "".join(parts)


@dataclass(frozen=True)
class UnionAll:
    """``SELECT ... UNION ALL SELECT ...`` — the UIE vehicle."""

    selects: tuple[Select, ...]

    def __str__(self) -> str:
        return " UNION ALL ".join(str(select) for select in self.selects)


Query = Select | UnionAll


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, ColumnType], ...]


@dataclass(frozen=True)
class DropTable:
    table: str


@dataclass(frozen=True)
class InsertValues:
    table: str
    rows: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class InsertSelect:
    table: str
    query: Query


@dataclass(frozen=True)
class DeleteAll:
    table: str


@dataclass(frozen=True)
class Analyze:
    table: str
    full: bool = False


@dataclass(frozen=True)
class SelectStatement:
    query: Query


Statement = (
    CreateTable
    | DropTable
    | InsertValues
    | InsertSelect
    | DeleteAll
    | Analyze
    | SelectStatement
)


@dataclass
class Script:
    statements: list[Statement] = field(default_factory=list)

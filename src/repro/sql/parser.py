"""Recursive-descent parser for the mini-SQL dialect."""

from __future__ import annotations

from repro.common.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import AGGREGATE_KEYWORDS, Token, TokenType
from repro.storage.column import ColumnType


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.ttype is not TokenType.END:
            self._index += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise SqlSyntaxError(
                f"expected {' or '.join(names)}, found {token.text!r}", token.position
            )
        return self._advance()

    def _expect_symbol(self, *symbols: str) -> Token:
        token = self._peek()
        if not token.is_symbol(*symbols):
            raise SqlSyntaxError(
                f"expected {' or '.join(symbols)}, found {token.text!r}", token.position
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.ttype is not TokenType.IDENT:
            raise SqlSyntaxError(f"expected identifier, found {token.text!r}", token.position)
        self._advance()
        return token.text

    def _accept_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _accept_symbol(self, *symbols: str) -> bool:
        if self._peek().is_symbol(*symbols):
            self._advance()
            return True
        return False

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("ANALYZE"):
            return self._parse_analyze()
        if token.is_keyword("SELECT"):
            return ast.SelectStatement(self._parse_query())
        raise SqlSyntaxError(f"unexpected token {token.text!r}", token.position)

    def parse_script(self) -> ast.Script:
        script = ast.Script()
        while self._peek().ttype is not TokenType.END:
            script.statements.append(self.parse_statement())
            while self._accept_symbol(";"):
                pass
        return script

    def finish_statement(self) -> None:
        self._accept_symbol(";")
        token = self._peek()
        if token.ttype is not TokenType.END:
            raise SqlSyntaxError(f"trailing input {token.text!r}", token.position)

    def _parse_create(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident()
        self._expect_symbol("(")
        columns: list[tuple[str, ColumnType]] = []
        while True:
            column = self._expect_ident()
            type_token = self._peek()
            if type_token.is_keyword("INT", "BIGINT"):
                self._advance()
                ctype = ColumnType.parse(type_token.text)
            else:
                ctype = ColumnType.INT
            columns.append((column, ctype))
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        return ast.CreateTable(name, tuple(columns))

    def _parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTable(self._expect_ident())

    def _parse_insert(self) -> ast.Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        if self._peek().is_keyword("VALUES"):
            self._advance()
            rows: list[tuple[int, ...]] = []
            while True:
                self._expect_symbol("(")
                row: list[int] = []
                while True:
                    row.append(self._parse_signed_number())
                    if not self._accept_symbol(","):
                        break
                self._expect_symbol(")")
                rows.append(tuple(row))
                if not self._accept_symbol(","):
                    break
            return ast.InsertValues(table, tuple(rows))
        return ast.InsertSelect(table, self._parse_query())

    def _parse_delete(self) -> ast.DeleteAll:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        return ast.DeleteAll(self._expect_ident())

    def _parse_analyze(self) -> ast.Analyze:
        self._expect_keyword("ANALYZE")
        table = self._expect_ident()
        full = self._accept_keyword("FULL")
        return ast.Analyze(table, full=full)

    def _parse_signed_number(self) -> int:
        negative = self._accept_symbol("-")
        token = self._peek()
        if token.ttype is not TokenType.NUMBER:
            raise SqlSyntaxError(f"expected number, found {token.text!r}", token.position)
        self._advance()
        value = int(token.text)
        return -value if negative else value

    # -- queries ---------------------------------------------------------------

    def _parse_query(self) -> ast.Query:
        selects = [self._parse_select()]
        while True:
            checkpoint = self._index
            if self._accept_keyword("UNION"):
                if not self._accept_keyword("ALL"):
                    raise SqlSyntaxError(
                        "only UNION ALL is supported (dedup is explicit)",
                        self._peek().position,
                    )
                selects.append(self._parse_select())
            else:
                self._index = checkpoint
                break
        if len(selects) == 1:
            return selects[0]
        return ast.UnionAll(tuple(selects))

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._accept_symbol(","):
            tables.append(self._parse_table_ref())
        where: list[ast.Predicate] = []
        if self._accept_keyword("WHERE"):
            where.append(self._parse_predicate())
            while self._accept_keyword("AND"):
                where.append(self._parse_predicate())
        group_by: list[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_symbol(","):
                group_by.append(self._parse_expr())
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        return ast.SelectItem(expr, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._expect_ident()
        token = self._peek()
        if token.ttype is TokenType.IDENT:
            self._advance()
            return ast.TableRef(table, token.text)
        return ast.TableRef(table, table)

    # -- predicates --------------------------------------------------------------

    def _parse_predicate(self) -> ast.Predicate:
        if self._peek().is_keyword("NOT"):
            self._advance()
            self._expect_keyword("EXISTS")
            self._expect_symbol("(")
            subquery = self._parse_select()
            self._expect_symbol(")")
            return ast.NotExists(subquery)
        left = self._parse_expr()
        token = self._peek()
        if not token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            raise SqlSyntaxError(f"expected comparison, found {token.text!r}", token.position)
        self._advance()
        op = "<>" if token.text == "!=" else token.text
        right = self._parse_expr()
        return ast.Comparison(op, left, right)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().is_symbol("+", "-"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_primary()
        while self._peek().is_symbol("*"):
            self._advance()
            right = self._parse_primary()
            left = ast.BinaryOp("*", left, right)
        return left

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.ttype is TokenType.KEYWORD and token.text in AGGREGATE_KEYWORDS:
            self._advance()
            self._expect_symbol("(")
            if token.text == "COUNT" and self._peek().is_symbol("*"):
                self._advance()
                argument: ast.Expr = ast.Literal(1)
            else:
                argument = self._parse_expr()
            self._expect_symbol(")")
            return ast.AggregateCall(token.text, argument)
        if token.ttype is TokenType.NUMBER:
            self._advance()
            return ast.Literal(int(token.text))
        if token.is_symbol("-"):
            self._advance()
            inner = self._parse_primary()
            if isinstance(inner, ast.Literal):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        if token.is_symbol("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_symbol(")")
            return expr
        if token.ttype is TokenType.IDENT:
            self._advance()
            if self._accept_symbol("."):
                column = self._expect_ident()
                return ast.ColumnRef(token.text, column)
            return ast.ColumnRef(None, token.text)
        raise SqlSyntaxError(f"expected expression, found {token.text!r}", token.position)


def parse_statement(text: str) -> ast.Statement:
    """Parse a single statement (trailing ``;`` allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.finish_statement()
    return statement


def parse_script(text: str) -> ast.Script:
    """Parse a ``;``-separated sequence of statements."""
    return _Parser(tokenize(text)).parse_script()

"""Hand-rolled lexer for the mini-SQL dialect."""

from __future__ import annotations

from repro.common.errors import SqlSyntaxError
from repro.sql.tokens import KEYWORDS, SYMBOLS, Token, TokenType


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with a single END token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            tokens.append(Token(TokenType.NUMBER, text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token(TokenType.SYMBOL, symbol, index))
                index += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r}", position=index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens

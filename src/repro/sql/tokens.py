"""Token definitions for the mini-SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "EXISTS", "AS",
    "INSERT", "INTO", "VALUES", "CREATE", "DROP", "TABLE", "DELETE",
    "UNION", "ALL", "GROUP", "BY", "ANALYZE", "FULL", "DISTINCT",
    "MIN", "MAX", "SUM", "COUNT", "AVG", "INT", "BIGINT",
}

SYMBOLS = ("<>", "<=", ">=", "!=", "(", ")", ",", ".", ";", "*", "+", "-", "=", "<", ">")

AGGREGATE_KEYWORDS = {"MIN", "MAX", "SUM", "COUNT", "AVG"}


@dataclass(frozen=True)
class Token:
    ttype: TokenType
    text: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.ttype is TokenType.KEYWORD and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.ttype is TokenType.SYMBOL and self.text in symbols

"""Mini-SQL frontend.

Implements exactly the SQL subset RecStep's query generator emits:
CREATE/DROP TABLE, INSERT INTO ... VALUES, INSERT INTO ... SELECT,
SELECT with inner equi-joins, WHERE conjunctions, NOT EXISTS anti-joins,
arithmetic expressions, GROUP BY aggregation (MIN/MAX/SUM/COUNT/AVG),
UNION ALL, DELETE FROM (truncate) and ANALYZE.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement, parse_script

__all__ = ["tokenize", "parse_statement", "parse_script"]

"""The stuck-fixpoint watchdog: heartbeat-gap detection per session.

The interpreter polls its cancellation token at every stratum/iteration
boundary; each poll is therefore a *progress heartbeat* on the query's
own simulated clock. The watchdog token rides that channel: it measures
the simulated-time gap between consecutive heartbeats, and when an
iteration takes longer than ``stall_timeout`` — a fixpoint stuck in a
pathologically expensive iteration, a retry storm inflating one
boundary-to-boundary span — it cancels the evaluation cooperatively via
the standard :class:`~repro.resilience.cancellation.CancellationToken`
machinery. The query stops at the next consistent boundary with a
structured partial-result report (``failure["kind"] == "watchdog"``),
and the service slot is reclaimed.

The token also streams progress to the session record (heartbeat count,
last loop position), which is what the drain report and ``status()``
expose.
"""

from __future__ import annotations

from repro.common.errors import EvaluationCancelled
from repro.resilience.cancellation import CancellationToken


class WatchdogToken(CancellationToken):
    """Cancels an evaluation whose iteration boundaries stop arriving.

    Args:
        clock: the *evaluation's* simulated clock (not the service's).
        stall_timeout: max simulated seconds between heartbeats.
        on_heartbeat: optional callback ``(now, context)`` — the service
            uses it to mirror progress into the session record.
    """

    def __init__(self, clock, stall_timeout: float, on_heartbeat=None) -> None:
        super().__init__()
        if stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be > 0, got {stall_timeout}")
        self._clock = clock
        self.stall_timeout = stall_timeout
        self._on_heartbeat = on_heartbeat
        self.heartbeats = 0
        self._last: float = clock.now()

    def check(self, **context) -> None:
        now = self._clock.now()
        gap = now - self._last
        self._last = now
        self.heartbeats += 1
        if self._on_heartbeat is not None:
            self._on_heartbeat(now, context)
        if gap > self.stall_timeout:
            self.cancel("watchdog")
            raise EvaluationCancelled(
                f"watchdog: {gap:.3f}s between iteration heartbeats exceeds "
                f"the {self.stall_timeout:.3f}s stall timeout",
                reason="watchdog",
                kind="watchdog",
                gap_seconds=round(gap, 6),
                stall_timeout=self.stall_timeout,
                heartbeats=self.heartbeats,
                **context,
            )
        super().check(**context)

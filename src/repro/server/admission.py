"""Admission control: bounded queue, memory reservations, backpressure.

The admission controller is the service's front door. It answers one
question per submission — *can this query be queued right now?* — and
one per queued session — *can it start?* — using two resources:

* **queue slots**: the session queue is bounded (``queue_limit``); a
  full queue rejects new work immediately rather than buffering
  unbounded state, the classic load-shedding discipline.
* **memory reservations**: each query reserves a quota (its evaluation
  runs with that quota as its own hard ``memory_budget``, so the
  reservation is enforced, not advisory). The sum of live reservations
  is capped at the high watermark of the service budget; submissions
  that would push past it are rejected with backpressure.

Rejections are never exceptions: they are structured
:class:`Overloaded` responses carrying the reason and a retry-after
hint derived from the earliest expected slot release, so well-behaved
clients can back off instead of retry-storming.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.metrics import CRITICAL_WATERMARK

#: Fallback retry hint (simulated seconds) when nothing is running to
#: derive a better estimate from.
DEFAULT_RETRY_AFTER = 1.0

#: Smallest per-session default quota the controller will hand out.
#: Without the floor, ``watermarked_budget // max_concurrent`` reaches 0
#: on small budgets and sessions would be admitted with no reservation —
#: an unenforceable budget. With it, a service too small to give every
#: slot a real quota rejects default-quota submissions with a structured
#: ``memory-pressure`` Overloaded instead of admitting unbudgeted work.
#: Explicit ``memory_quota`` requests are never floored.
MIN_SESSION_QUOTA = 1 << 20

#: Floor of the delta-derived quota priced for an update request, and
#: the per-row footprint it assumes (row + join-index + count-table
#: bookkeeping for one churned tuple).
MIN_UPDATE_QUOTA = 1 << 16
UPDATE_ROW_BYTES = 64


@dataclass
class QueryRequest:
    """One Datalog query as submitted to the service.

    Args:
        program: a ProgramSpec or Datalog source text (anything
            :meth:`RecStep.evaluate` accepts).
        edb_data: relation name -> int64 row array.
        dataset: label recorded in the result.
        klass: session class for circuit breaking and reporting;
            defaults to the program's name when available.
        memory_quota: bytes reserved against the service budget and
            enforced as the query's own memory budget (None: the
            service's default per-slot quota).
        deadline: per-query cooperative deadline (simulated seconds on
            the query's own clock).
        max_iterations / max_total_rows: per-query divergence budgets
            (see :mod:`repro.resilience.guards`).
        kind: ``"query"`` (evaluate to fixpoint), ``"update"`` (apply
            an EDB delta batch to a materialized session's warm
            fixpoint), or ``"point"`` (answer a single goal atom through
            the magic-set demand rewrite, evaluating only the goal's
            cone).
        goal: for ``kind="point"``, the goal atom — an
            :class:`repro.datalog.ast.Atom` or its source text, e.g.
            ``"tc(5, x)"``.
        materialize: keep the fixpoint (database + interpreter) alive
            after a ``"query"`` completes so later ``"update"`` requests
            can target it by session id.
        target_session: for ``kind="update"``, the session id of the
            materialized fixpoint to maintain.
        inserts / deletes: for ``kind="update"``, EDB relation name ->
            row array of tuples to insert / delete.
        batch_id: client-supplied idempotence key for ``kind="update"``
            against a durable view: a batch already acknowledged under
            this id is acked again without re-applying, so client
            retries after an unclear outcome are exactly-once.
    """

    program: object
    edb_data: dict[str, np.ndarray]
    dataset: str = "unnamed"
    klass: str = ""
    memory_quota: int | None = None
    deadline: float | None = None
    max_iterations: int | None = None
    max_total_rows: int | None = None
    kind: str = "query"
    materialize: bool = False
    target_session: str | None = None
    inserts: dict | None = None
    deletes: dict | None = None
    batch_id: str | None = None
    goal: object | None = None
    #: Service-internal: the submit-time point plan (parsed goal,
    #: canonical goal, magic rewrite, demand-cache key), stamped by
    #: ``QueryService._plan_point`` so execution never re-plans.
    point_plan: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.klass:
            self.klass = getattr(self.program, "name", "default") or "default"
        if self.kind not in ("query", "update", "point"):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == "point" and self.goal is None:
            raise ValueError('kind="point" requires a goal')

    def delta_rows(self) -> int:
        """Total churned tuples across both sides of an update batch."""
        total = 0
        for batch in (self.inserts, self.deletes):
            for rows in (batch or {}).values():
                total += len(rows)
        return total

    @property
    def priced(self) -> bool:
        """Whether this request carries its own explicit quota rather
        than the service's default per-slot split. Only priced quotas
        accrue ``pending_bytes`` while queued — the default split is a
        slot property, already bounded by ``max_concurrent``, and
        updates ride their target view's standing reservation instead of
        the global pool. Point queries are always priced: the service
        stamps their quota from the goal's cone estimate at submit
        time."""
        return self.kind in ("query", "point") and self.memory_quota is not None


@dataclass(frozen=True)
class Overloaded:
    """A structured rejection: the service cannot take this query now.

    ``reason`` is one of ``queue-full``, ``memory-pressure``,
    ``breaker-open``, ``draining``, or ``no-such-view``;
    ``retry_after_seconds`` is the
    service's estimate of when capacity frees up (simulated seconds).
    """

    reason: str
    retry_after_seconds: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "overloaded": True,
            "reason": self.reason,
            "retry_after_seconds": round(self.retry_after_seconds, 6),
            **self.detail,
        }


class AdmissionController:
    """Tracks queue depth and memory reservations; decides admission.

    Args:
        queue_limit: maximum sessions waiting for a slot.
        memory_budget: the service's total modeled memory (bytes).
        max_concurrent: executor slots (used for the default quota).
        high_watermark: fraction of ``memory_budget`` the sum of live
            reservations may reach; beyond it, submissions bounce.
    """

    def __init__(
        self,
        queue_limit: int,
        memory_budget: int,
        max_concurrent: int,
        high_watermark: float = CRITICAL_WATERMARK,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.queue_limit = queue_limit
        self.memory_budget = memory_budget
        self.max_concurrent = max_concurrent
        self.high_watermark = high_watermark
        self.reserved_bytes = 0
        #: Quota promised to *queued* priced sessions (explicit quota or
        #: delta-sized updates) that have not started yet. Counting it at
        #: submit time keeps a burst of accepted-but-waiting sessions
        #: from over-committing the watermark; releasing it on cancel or
        #: shed keeps cancelled phantoms from pricing out real work.
        self.pending_bytes = 0
        #: Default per-query quota: an even split of the watermarked
        #: budget across executor slots, floored at MIN_SESSION_QUOTA so
        #: a tiny budget can never admit a session with no reservation.
        self.default_quota = max(
            MIN_SESSION_QUOTA,
            int(memory_budget * high_watermark) // max_concurrent,
        )

    def quota_for(self, request: QueryRequest) -> int:
        quota = request.memory_quota
        if quota is None:
            if request.kind == "update":
                # Updates ride on the target view's already-reserved
                # database; their own footprint is the delta batch plus
                # per-tuple maintenance state, priced by batch size.
                quota = max(
                    MIN_UPDATE_QUOTA, request.delta_rows() * UPDATE_ROW_BYTES
                )
            else:
                quota = self.default_quota
        return int(quota)

    # -- submission-time checks ------------------------------------------------

    def check_submit(
        self, request: QueryRequest, queue_depth: int, retry_hint: float
    ) -> Overloaded | None:
        """None if the submission may queue, else a structured rejection."""
        if queue_depth >= self.queue_limit:
            return Overloaded(
                reason="queue-full",
                retry_after_seconds=retry_hint,
                detail={"queue_depth": queue_depth, "queue_limit": self.queue_limit},
            )
        quota = self.quota_for(request)
        if request.kind == "update":
            # Updates are priced against their target view's standing
            # reservation (the service checks that), not the global
            # pool: the view's memory is already committed.
            return None
        if self.reserved_bytes + self.pending_bytes + quota > self._watermark_bytes():
            return Overloaded(
                reason="memory-pressure",
                retry_after_seconds=retry_hint,
                detail={
                    "reserved_bytes": self.reserved_bytes,
                    "pending_bytes": self.pending_bytes,
                    "requested_bytes": quota,
                    "high_watermark_bytes": self._watermark_bytes(),
                },
            )
        return None

    # -- pending (queued, priced) reservations ---------------------------------

    def note_pending(self, quota: int) -> None:
        """Account a priced session's quota while it waits in the queue."""
        self.pending_bytes += quota

    def release_pending(self, quota: int) -> None:
        """A queued priced session left the queue without starting
        (cancel, shed): return its promised quota immediately so
        retry-after hints and rejections stop pricing phantom memory."""
        self.pending_bytes = max(0, self.pending_bytes - quota)

    # -- start-time reservation ------------------------------------------------

    def try_reserve(self, quota: int, was_pending: bool = False) -> bool:
        """Reserve ``quota`` bytes for a starting session, if they fit.

        With ``was_pending``, the quota moves from the pending pool to
        the reserved pool (it was already counted at submit time, so the
        fit check must not double-count it).
        """
        if not self._reservation_fits(quota):
            return False
        if was_pending:
            self.release_pending(quota)
        self.reserved_bytes += quota
        return True

    def release(self, quota: int) -> None:
        self.reserved_bytes = max(0, self.reserved_bytes - quota)

    def _watermark_bytes(self) -> int:
        return int(self.memory_budget * self.high_watermark)

    def _reservation_fits(self, quota: int) -> bool:
        return self.reserved_bytes + quota <= self._watermark_bytes()

    def to_dict(self) -> dict:
        return {
            "queue_limit": self.queue_limit,
            "memory_budget": self.memory_budget,
            "high_watermark": self.high_watermark,
            "reserved_bytes": self.reserved_bytes,
            "pending_bytes": self.pending_bytes,
            "default_quota": self.default_quota,
        }

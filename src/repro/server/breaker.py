"""Per-class circuit breakers: stop retry storms against a sick backend.

When a session class (by default, one Datalog program) keeps failing at
the backend — exhausted fault retries, OOM, hard timeout — re-admitting
more of the same work burns worker-pool time that healthy classes could
use. The breaker is the standard three-state remedy on the service's
simulated clock:

* **closed** — normal operation; consecutive backend failures count up.
* **open** — after ``failure_threshold`` consecutive failures the class
  is rejected at the front door (a structured ``breaker-open``
  Overloaded response with the cooldown remainder as the retry hint).
* **half-open** — after ``cooldown_seconds`` the next submission is
  admitted as a probe; success closes the breaker, failure re-opens it
  for another cooldown.

Client-scoped outcomes (deadline, watchdog cancel, divergence guard) do
NOT count as backend failures: they say something about the query, not
about the backend's health.
"""

from __future__ import annotations

from repro.obs.counters import NULL_COUNTERS

#: Terminal evaluation statuses that indicate backend sickness.
BACKEND_FAILURE_STATUSES = frozenset({"fault", "oom", "timeout"})

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One class's breaker, advancing on the service's simulated clock."""

    def __init__(
        self,
        klass: str,
        failure_threshold: int = 3,
        cooldown_seconds: float = 60.0,
        counters=NULL_COUNTERS,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.klass = klass
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.counters = counters
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0
        self._probe_outstanding = False

    def allow(self, now: float) -> bool:
        """May a session of this class proceed right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.cooldown_seconds:
                self.state = HALF_OPEN
                self._probe_outstanding = False
                self.counters.inc("server.breaker_half_open")
            else:
                return False
        # Half-open: admit exactly one probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def retry_after(self, now: float) -> float:
        """Cooldown remainder (the retry hint for open-state rejections)."""
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown_seconds - now)

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self.counters.inc("server.breaker_closed")
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probe_outstanding = False

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        should_open = (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open:
            self.state = OPEN
            self.opened_at = now
            self.trips += 1
            self._probe_outstanding = False
            self.counters.inc("server.breaker_open")

    def to_dict(self) -> dict:
        doc = {
            "class": self.klass,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }
        if self.opened_at is not None:
            doc["opened_at"] = round(self.opened_at, 6)
        return doc


class BreakerBoard:
    """Lazily materialized breaker per session class."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 60.0,
        counters=NULL_COUNTERS,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.counters = counters
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_class(self, klass: str) -> CircuitBreaker:
        breaker = self._breakers.get(klass)
        if breaker is None:
            breaker = CircuitBreaker(
                klass,
                failure_threshold=self.failure_threshold,
                cooldown_seconds=self.cooldown_seconds,
                counters=self.counters,
            )
            self._breakers[klass] = breaker
        return breaker

    def observe(self, klass: str, status: str, now: float) -> None:
        """Feed a terminal evaluation status into the class's breaker."""
        breaker = self.for_class(klass)
        if status == "ok":
            breaker.record_success()
        elif status in BACKEND_FAILURE_STATUSES:
            breaker.record_failure(now)
        # Client-scoped outcomes (deadline/cancelled/guard) are neutral:
        # a half-open probe that ends client-scoped neither closes nor
        # re-opens, it just gives the slot back.
        elif breaker.state == HALF_OPEN:
            breaker._probe_outstanding = False

    def to_dict(self) -> dict:
        return {
            klass: breaker.to_dict()
            for klass, breaker in sorted(self._breakers.items())
        }

"""Serve-chaos smoke: N concurrent mixed queries under fault injection.

The CI gate for the serving layer. It submits a mixed workload
(TC / SG / AA — transitive closure, same-generation, Andersen) to a
small :class:`~repro.server.service.QueryService`, typically with
``REPRO_CHAOS_SEED`` arming deterministic fault injection, and asserts
the serving invariants:

* every accepted session reaches a terminal state, and every non-DONE
  terminal carries a structured failure document (no raw tracebacks);
* every rejection is a structured Overloaded response with a positive
  retry-after hint;
* every DONE session's fixpoint is byte-identical to a solo run of the
  same query under the same engine config.

Run it locally with::

    PYTHONPATH=src REPRO_CHAOS_SEED=20260806 python -m repro.server.smoke

Exits non-zero (with a JSON report on stdout either way) if any
invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import RecStep, RecStepConfig
from repro.programs import get_program
from repro.server import QueryRequest, QueryService, ServerConfig


def _edb(kind: str, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    if kind in ("TC", "SG"):
        return {"arc": rng.integers(0, 80, size=(240, 2)).astype(np.int64)}
    # Andersen points-to: four small relations.
    def rel(count: int) -> np.ndarray:
        return np.unique(rng.integers(0, 25, size=(count, 2)), axis=0)

    return {
        "addressOf": rel(18),
        "assign": rel(16),
        "load": rel(7),
        "store": rel(7),
    }


#: Quota for the spill-heavy TC entries: tight enough that the cycle
#: fixpoint (90000 rows) only completes by evicting cold prefixes.
SPILL_QUOTA = 550_000
SPILL_CYCLE_NODES = 300


def _cycle(n: int) -> np.ndarray:
    src = np.arange(n, dtype=np.int64)
    return np.stack([src, (src + 1) % n], axis=1)


def build_workload(
    queries: int, memory_quota: int = int(128e6), spill_heavy: bool = False
) -> list[QueryRequest]:
    programs = ("TC", "SG", "AA")
    workload = []
    for index in range(queries):
        name = programs[index % len(programs)]
        edb = _edb(name, seed=1000 + index)
        quota = memory_quota
        if spill_heavy and name == "TC":
            # Base-dominated workload under a quota it cannot fit in
            # resident: OOM without a spill tier, done with one.
            edb = {"arc": _cycle(SPILL_CYCLE_NODES)}
            quota = SPILL_QUOTA
        workload.append(
            QueryRequest(
                program=get_program(name),
                edb_data=edb,
                dataset=f"smoke-{index}",
                # Modest explicit quotas: enough for these graphs, small
                # enough that the bounded queue (not just the memory
                # watermark) shapes the burst.
                memory_quota=quota,
            )
        )
    return workload


def run_smoke(
    queries: int = 9,
    queue_limit: int = 4,
    verbose: bool = True,
    spill_root: str | None = None,
    memory_quota: int | None = None,
) -> dict:
    """Run the smoke workload; returns the report with a ``violations`` list.

    With ``spill_root`` the service hands every session a per-session
    spill directory (pair it with a tight ``memory_quota`` so the spill
    rung actually engages); solo reruns get their own spill directory so
    the fixpoint-identity check compares like with like.
    """
    engine_config = RecStepConfig()  # fault_seed defaults from REPRO_CHAOS_SEED
    service = QueryService(
        ServerConfig(
            max_concurrent=2, queue_limit=queue_limit, spill_root=spill_root
        ),
        engine_config=engine_config,
    )
    workload = build_workload(
        queries,
        memory_quota=memory_quota if memory_quota is not None else int(128e6),
        spill_heavy=spill_root is not None,
    )
    violations: list[str] = []
    accepted: list[tuple[str, QueryRequest]] = []
    rejected = 0

    for index, request in enumerate(workload):
        response = service.submit(request)
        if response["accepted"]:
            accepted.append((response["session_id"], request))
        else:
            rejected += 1
            if not response.get("overloaded"):
                violations.append(f"rejection without overloaded flag: {response}")
            if response.get("retry_after_seconds", 0) <= 0:
                violations.append(f"rejection without retry hint: {response}")
        # Bursty arrivals: several submissions land at the same service
        # instant (so the bounded queue actually fills and sheds load),
        # then the loop catches up — the way a real front door sees
        # traffic spikes between scheduler ticks.
        if (index + 1) % 5 == 0:
            service.pump()
    report = service.drain()
    if rejected == 0:
        violations.append("burst never tripped admission control")

    for session_id, request in accepted:
        doc = service.status(session_id)
        state = doc["state"]
        if state not in ("done", "failed", "cancelled", "shed"):
            violations.append(f"{session_id}: non-terminal state {state!r}")
            continue
        if state != "done":
            failure = doc.get("failure")
            if not isinstance(failure, dict) or "error" not in failure:
                violations.append(
                    f"{session_id}: terminal state {state!r} without a "
                    f"structured failure document: {failure!r}"
                )
            continue
        overrides: dict = {"memory_budget": doc["reserved_bytes"]}
        if spill_root is not None:
            overrides["spill_dir"] = str(Path(spill_root) / f"solo-{session_id}")
            overrides["degradation"] = True
        solo = RecStep(replace(engine_config, **overrides)).evaluate(
            request.program, request.edb_data, dataset=request.dataset
        )
        session = service.sessions.get(session_id)
        if solo.status != "ok":
            violations.append(
                f"{session_id}: solo rerun unexpectedly {solo.status}"
            )
        elif session.result.tuples != solo.tuples:
            violations.append(
                f"{session_id}: fixpoint diverges from the solo run"
            )

    spilled_sessions = sum(
        1 for s in service.sessions.all() if s.spilled_bytes > 0
    )
    report["smoke"] = {
        "queries": queries,
        "accepted": len(accepted),
        "rejected": rejected,
        "violations": violations,
        "fault_seed": engine_config.fault_seed,
        "spill_root": spill_root,
        "spilled_sessions": spilled_sessions,
    }
    if verbose:
        print(json.dumps(report["smoke"], indent=2))
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.server.smoke",
        description="serve-chaos smoke: concurrent mixed queries, structured "
        "terminal states, solo-run-identical fixpoints",
    )
    parser.add_argument("--queries", type=int, default=9)
    parser.add_argument("--queue-limit", type=int, default=4)
    parser.add_argument(
        "--spill-root",
        default=None,
        metavar="DIR",
        help="give every session a per-session spill directory under DIR",
    )
    parser.add_argument(
        "--memory-quota",
        type=int,
        default=None,
        metavar="BYTES",
        help="explicit per-query quota (tighten it so the spill rung engages)",
    )
    args = parser.parse_args(argv)
    report = run_smoke(
        queries=args.queries,
        queue_limit=args.queue_limit,
        spill_root=args.spill_root,
        memory_quota=args.memory_quota,
    )
    return 1 if report["smoke"]["violations"] else 0


if __name__ == "__main__":
    sys.exit(main())

"""The concurrent query service (``repro.server``).

A multi-query front door over the RecStep engine, on the simulated
clock: session lifecycle management with isolated failure domains,
admission control with bounded queueing and memory-reservation
backpressure, per-class circuit breakers, a stuck-fixpoint watchdog,
and graceful drain with crash-safe checkpoints. See DESIGN.md,
"Concurrent query service".

Quickstart::

    from repro.server import QueryService, QueryRequest, ServerConfig

    service = QueryService(ServerConfig(max_concurrent=2, queue_limit=4))
    response = service.submit(QueryRequest(get_program("TC"), {"arc": edges}))
    service.pump()
    print(service.status(response["session_id"]))
    print(service.drain(checkpoint_dir="/tmp/drain"))
"""

from repro.server.admission import (
    AdmissionController,
    Overloaded,
    QueryRequest,
)
from repro.server.breaker import BreakerBoard, CircuitBreaker
from repro.server.service import QueryService, ServerConfig
from repro.server.session import (
    Session,
    SessionError,
    SessionManager,
    SessionState,
)
from repro.server.watchdog import WatchdogToken

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "Overloaded",
    "QueryRequest",
    "QueryService",
    "ServerConfig",
    "Session",
    "SessionError",
    "SessionManager",
    "SessionState",
    "WatchdogToken",
]

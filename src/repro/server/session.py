"""Query sessions: ids, structured lifecycle, isolated failure domains.

Every query the service accepts becomes a :class:`Session` with a
monotonically assigned id and a state machine::

    QUEUED --> ADMITTED --> RUNNING --> DONE
       |           |            |-----> FAILED
       |           |            |-----> CANCELLED
       |           '----------------- > SHED
       '------------------------------> SHED

``DONE`` is a clean fixpoint; ``FAILED`` is a structured backend failure
(OOM, timeout, exhausted retries, divergence guard); ``CANCELLED`` is a
cooperative stop (client deadline, watchdog, drain grace) that may leave
a resumable checkpoint behind; ``SHED`` is load shedding — the session
was accepted but dropped before its evaluation ran (drain without a
checkpoint directory, or a circuit breaker opening while it queued).

Sessions are isolated failure domains: each runs on its own
:class:`~repro.engine.database.Database` with its own memory quota, and
whatever its evaluation raises is captured into ``session.failure`` as a
``RecStepError.to_dict()``-shaped document — one query's crash can never
corrupt a neighbor's fixpoint or take the service down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ReproError


class SessionError(ReproError):
    """An illegal session lookup or lifecycle transition."""


class SessionState(enum.Enum):
    """Lifecycle states of a query session."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    SHED = "shed"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {
    SessionState.DONE,
    SessionState.FAILED,
    SessionState.CANCELLED,
    SessionState.SHED,
}

#: Allowed lifecycle transitions (anything else is a bug in the service).
_TRANSITIONS: dict[SessionState, set[SessionState]] = {
    SessionState.QUEUED: {SessionState.ADMITTED, SessionState.SHED},
    SessionState.ADMITTED: {SessionState.RUNNING, SessionState.SHED},
    SessionState.RUNNING: {
        SessionState.DONE,
        SessionState.FAILED,
        SessionState.CANCELLED,
    },
    SessionState.DONE: set(),
    SessionState.FAILED: set(),
    SessionState.CANCELLED: set(),
    SessionState.SHED: set(),
}


@dataclass
class Session:
    """One query's journey through the service."""

    id: str
    request: object  # QueryRequest (typed loosely to avoid an import cycle)
    state: SessionState = SessionState.QUEUED
    #: Simulated service-clock timestamps of the lifecycle edges.
    submitted_at: float = 0.0
    admitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    #: Memory reserved against the service budget while active (bytes).
    reserved_bytes: int = 0
    #: Whether ``reserved_bytes`` is currently counted in the admission
    #: controller's *pending* pool (queued, priced quota). Cleared when
    #: the quota moves to the reserved pool at admit time or is returned
    #: on cancel/shed.
    pending_reservation: bool = False
    #: Peak modeled bytes this session's evaluation held on the spill
    #: tier (0 when the spill rung never engaged).
    spilled_bytes: int = 0
    #: Reservation headroom returned to admission early because the
    #: session degraded part of its footprint to disk.
    spill_released_bytes: int = 0
    #: The evaluation outcome (an EvaluationResult), set on completion.
    result: object | None = None
    #: Structured failure document for FAILED/CANCELLED/SHED sessions.
    failure: dict | None = None
    #: Watchdog-observed progress: heartbeats seen, last heartbeat time
    #: (on the session's own evaluation clock), last loop position.
    heartbeats: int = 0
    last_heartbeat: float | None = None
    last_position: dict = field(default_factory=dict)
    #: Where drain checkpointed this session's partial state, if it did.
    checkpoint_dir: str | None = None
    #: Durable-view bookkeeping: the WAL seqno assigned to this update
    #: batch (``kind="update"`` against a durable view), and whether the
    #: session was rebuilt by crash recovery rather than submitted.
    wal_seqno: int | None = None
    recovered: bool = False

    @property
    def klass(self) -> str:
        return getattr(self.request, "klass", "default")

    def to_dict(self) -> dict:
        """Machine-readable recap (shutdown reports, ``--serve-trace``)."""
        doc: dict = {
            "id": self.id,
            "class": self.klass,
            "state": self.state.value,
            "submitted_at": round(self.submitted_at, 6),
            "reserved_bytes": self.reserved_bytes,
        }
        for key in ("admitted_at", "started_at", "finished_at"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = round(value, 6)
        if self.spilled_bytes:
            doc["spilled_bytes"] = self.spilled_bytes
            doc["spill_released_bytes"] = self.spill_released_bytes
        if self.result is not None:
            doc["status"] = self.result.status
            doc["iterations"] = self.result.iterations
            doc["sim_seconds"] = round(self.result.sim_seconds, 6)
            doc["sizes"] = self.result.sizes()
        if self.failure is not None:
            doc["failure"] = dict(self.failure)
        if self.heartbeats:
            doc["heartbeats"] = self.heartbeats
            doc["last_position"] = dict(self.last_position)
        if self.checkpoint_dir is not None:
            doc["checkpoint_dir"] = self.checkpoint_dir
        if self.wal_seqno is not None:
            doc["wal_seqno"] = self.wal_seqno
        if self.recovered:
            doc["recovered"] = True
        return doc


class SessionManager:
    """Creates sessions, enforces the lifecycle, and answers lookups."""

    def __init__(self) -> None:
        self._sessions: dict[str, Session] = {}
        self._next_id = 0

    def create(self, request, now: float) -> Session:
        self._next_id += 1
        session = Session(
            id=f"q-{self._next_id:05d}", request=request, submitted_at=now
        )
        self._sessions[session.id] = session
        return session

    def get(self, session_id: str) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def transition(self, session: Session, state: SessionState) -> None:
        """Move ``session`` to ``state``, enforcing the lifecycle graph."""
        if state not in _TRANSITIONS[session.state]:
            raise SessionError(
                f"illegal transition {session.state.value} -> {state.value} "
                f"for session {session.id}"
            )
        session.state = state

    def all(self) -> list[Session]:
        return list(self._sessions.values())

    def in_state(self, *states: SessionState) -> list[Session]:
        return [s for s in self._sessions.values() if s.state in states]

    def counts(self) -> dict[str, int]:
        """Sessions per state (for reports)."""
        counts: dict[str, int] = {}
        for session in self._sessions.values():
            counts[session.state.value] = counts.get(session.state.value, 0) + 1
        return counts

"""The concurrent query service: many Datalog programs, one stable engine.

:class:`QueryService` is the multi-query front door the ROADMAP's
"serves heavy traffic" north star asks for, built as a discrete-event
simulation on the service's own :class:`~repro.common.timing.SimClock`
(the same substitution the engines use for parallelism). Concurrency is
modeled with executor slots: an admitted query occupies a slot for the
interval ``[started_at, started_at + sim_seconds)`` of its isolated
evaluation, queued queries wait for slot *and* memory-reservation
availability, and the service clock advances from completion event to
completion event.

The stability disciplines, in the order a submission meets them:

1. **drain gate** — a draining service admits nothing new.
2. **admission control** — bounded queue + memory reservations against
   the high watermark; violations get a structured
   :class:`~repro.server.admission.Overloaded` rejection with a
   retry-after hint instead of unbounded buffering.
3. **circuit breaker** — a class with repeated backend failures is
   rejected at the door until a cooldown passes and a half-open probe
   succeeds.
4. **isolated execution** — each query runs on its own Database with
   its reservation as a *hard* memory budget, wrapped so any failure
   becomes a structured document on the session, never an exception to
   a neighbor.
5. **watchdog** — iteration heartbeats feed a stall detector that
   cancels stuck fixpoints cooperatively.
6. **graceful drain** — stop admitting, finish or checkpoint in-flight
   work, emit a machine-readable shutdown report.
"""

from __future__ import annotations

import shutil
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path

from repro.common.timing import SimClock
from repro.core.config import RecStepConfig
from repro.core.recstep import MaterializedFixpoint, RecStep
from repro.engine.metrics import CRITICAL_WATERMARK, DEFAULT_MEMORY_BUDGET
from repro.obs.counters import CounterRegistry
from repro.obs.histogram import NULL_HISTOGRAMS, HistogramSet
from repro.obs.timeline import NULL_TIMELINE, ResourceTimeline
from repro.server.admission import (
    DEFAULT_RETRY_AFTER,
    AdmissionController,
    Overloaded,
    QueryRequest,
)
from repro.server.breaker import BreakerBoard
from repro.server.session import (
    Session,
    SessionError,
    SessionManager,
    SessionState,
)
from repro.server.watchdog import WatchdogToken

#: result.status -> terminal session state.
_STATUS_TO_STATE = {
    "ok": SessionState.DONE,
    "deadline": SessionState.CANCELLED,
    "cancelled": SessionState.CANCELLED,
    "oom": SessionState.FAILED,
    "timeout": SessionState.FAILED,
    "fault": SessionState.FAILED,
    "guard": SessionState.FAILED,
    "storage": SessionState.FAILED,
}


@dataclass(frozen=True)
class ServerConfig:
    """Service-level knobs (the engine's live in :class:`RecStepConfig`)."""

    max_concurrent: int = 4          # executor slots
    queue_limit: int = 8             # bounded admission queue
    memory_budget: int = DEFAULT_MEMORY_BUDGET  # service memory (bytes)
    high_watermark: float = CRITICAL_WATERMARK  # reservation ceiling
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 60.0
    watchdog_stall_timeout: float | None = None  # None: watchdog off
    drain_grace_seconds: float = 5.0  # per-query budget during drain
    telemetry: bool = True           # latency histograms + queue timeline
    #: Root of the spill-to-disk tier; each session spills into its own
    #: ``<spill_root>/<session-id>`` directory (None: spilling off).
    spill_root: str | None = None


class QueryService:
    """Admits, schedules, and survives many concurrent Datalog queries."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        engine_config: RecStepConfig | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.engine_config = engine_config or RecStepConfig()
        self.clock = SimClock()
        self.counters = CounterRegistry()
        self.sessions = SessionManager()
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            memory_budget=self.config.memory_budget,
            max_concurrent=self.config.max_concurrent,
            high_watermark=self.config.high_watermark,
        )
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            counters=self.counters,
        )
        self._queue: deque[Session] = deque()
        #: (finish_time, session, result_status) for sessions whose
        #: evaluation interval is still occupying a slot.
        self._active: list[tuple[float, Session, str]] = []
        #: session id -> live MaterializedFixpoint. A view session's
        #: memory reservation outlives its evaluation interval: the warm
        #: fixpoint stays resident so ``kind="update"`` requests can
        #: maintain it instead of recomputing.
        self._views: dict[str, MaterializedFixpoint] = {}
        #: session id -> simulated time its view is serving until; update
        #: requests against the same view queue head-of-line behind it.
        self._view_busy_until: dict[str, float] = {}
        self.draining = False
        self._drain_checkpoint_dir: str | None = None
        # Per-query-class latency/queue-wait/rows distributions and the
        # admission-queue timeline; null objects when telemetry is off so
        # every observation site is one attribute test.
        if self.config.telemetry:
            self.histograms = HistogramSet()
            self.queue_timeline = ResourceTimeline()
        else:
            self.histograms = NULL_HISTOGRAMS
            self.queue_timeline = NULL_TIMELINE

    # -- submission --------------------------------------------------------------

    def submit(self, request: QueryRequest) -> dict:
        """Queue one query; returns an acceptance or a structured rejection.

        Acceptance: ``{"accepted": True, "session_id": ...}``. Rejection:
        ``{"accepted": False, "overloaded": True, "reason": ...,
        "retry_after_seconds": ...}`` — the backpressure contract.
        """
        self.counters.inc("server.submitted")
        now = self.clock.now()
        if self.draining:
            return self._reject(
                Overloaded(
                    reason="draining",
                    retry_after_seconds=self._retry_hint(now),
                )
            )
        if request.kind == "update":
            if not self._update_target_valid(request):
                return self._reject(
                    Overloaded(
                        reason="no-such-view",
                        retry_after_seconds=DEFAULT_RETRY_AFTER,
                        detail={"target_session": request.target_session},
                    )
                )
            # Admission-price the delta: maintenance scratch lives inside
            # the target view's reservation, so a batch the view's budget
            # cannot absorb bounces with backpressure instead of queuing.
            target = self.sessions.get(request.target_session)
            quota = self.admission.quota_for(request)
            if quota > target.reserved_bytes:
                return self._reject(
                    Overloaded(
                        reason="memory-pressure",
                        retry_after_seconds=self._retry_hint(now),
                        detail={
                            "requested_bytes": quota,
                            "view_reserved_bytes": target.reserved_bytes,
                            "target_session": request.target_session,
                        },
                    )
                )
        overload = self.admission.check_submit(
            request, queue_depth=len(self._queue), retry_hint=self._retry_hint(now)
        )
        if overload is not None:
            return self._reject(overload)
        breaker = self.breakers.for_class(request.klass)
        if not breaker.allow(now):
            return self._reject(
                Overloaded(
                    reason="breaker-open",
                    retry_after_seconds=max(
                        breaker.retry_after(now), DEFAULT_RETRY_AFTER
                    ),
                    detail={"class": request.klass, "breaker": breaker.to_dict()},
                )
            )
        session = self.sessions.create(request, now)
        session.reserved_bytes = self.admission.quota_for(request)
        if request.priced:
            # Priced quotas count against the watermark from submission
            # on, so a burst of queued sessions cannot over-commit it.
            self.admission.note_pending(session.reserved_bytes)
            session.pending_reservation = True
        self._queue.append(session)
        self._sample_queue()
        return {"accepted": True, "session_id": session.id, "state": "queued"}

    def _update_target_valid(self, request: QueryRequest) -> bool:
        """A live view, or a materialize session still on its way to one."""
        target = request.target_session
        if target is None:
            return False
        if target in self._views:
            return True
        try:
            session = self.sessions.get(target)
        except SessionError:
            return False
        return bool(
            getattr(session.request, "materialize", False)
            and session.state
            in (SessionState.QUEUED, SessionState.ADMITTED, SessionState.RUNNING)
        )

    _REJECT_COUNTERS = {
        "queue-full": "server.rejected_queue_full",
        "memory-pressure": "server.rejected_memory",
        "draining": "server.rejected_draining",
        "breaker-open": "server.rejected_breaker",
        "no-such-view": "server.rejected_no_view",
    }

    def _reject(self, overload: Overloaded) -> dict:
        self.counters.inc("server.rejected")
        self.counters.inc(self._REJECT_COUNTERS[overload.reason])
        return {"accepted": False, **overload.to_dict()}

    def _retry_hint(self, now: float) -> float:
        """When capacity plausibly frees up: the earliest active finish."""
        if self._active:
            earliest = min(finish for finish, _, _ in self._active)
            return max(earliest - now, DEFAULT_RETRY_AFTER / 10.0)
        return DEFAULT_RETRY_AFTER

    # -- the event loop ----------------------------------------------------------

    def pump(self) -> None:
        """Process queued work until the queue is empty.

        Advances the service clock across completion events whenever the
        queue is blocked on a slot or a memory reservation. Completed
        sessions whose finish time is still in the future keep holding
        their slot until the clock passes it (``drain``/``flush`` push
        the clock to the end).
        """
        while True:
            self._release_due()
            self._admit_ready()
            if not self._queue:
                return
            if not self._active:
                # Queue blocked with nothing running: impossible to make
                # progress by waiting (can only happen if a quota exceeds
                # the watermark ceiling outright, which check_submit
                # rejects) — bail rather than spin.
                return
            earliest = min(finish for finish, _, _ in self._active)
            self.clock.advance(max(0.0, earliest - self.clock.now()))

    def flush(self) -> None:
        """Advance the clock past every active evaluation (idle barrier)."""
        self.pump()
        while self._active:
            earliest = min(finish for finish, _, _ in self._active)
            self.clock.advance(max(0.0, earliest - self.clock.now()))
            self._release_due()
            self._admit_ready()

    def _admit_ready(self) -> None:
        while self._queue and len(self._active) < self.config.max_concurrent:
            session = self._queue[0]
            if getattr(session.request, "kind", "query") == "update":
                # Rides the target view's standing reservation; nothing
                # to take from the global pool.
                pass
            elif not self.admission.try_reserve(
                session.reserved_bytes, was_pending=session.pending_reservation
            ):
                return
            session.pending_reservation = False
            self._queue.popleft()
            self.sessions.transition(session, SessionState.ADMITTED)
            session.admitted_at = self.clock.now()
            self.counters.inc("server.admitted")
            self._execute(session)
            self._sample_queue()

    def _release_due(self) -> None:
        now = self.clock.now()
        still_active = []
        released = False
        for finish, session, status in self._active:
            if finish <= now:
                holds_no_pool_bytes = (
                    session.id in self._views  # warm fixpoint stays resident
                    or getattr(session.request, "kind", "query") == "update"
                )
                if not holds_no_pool_bytes:
                    # The spilled slice (if any) was already released early.
                    self.admission.release(
                        session.reserved_bytes - session.spill_released_bytes
                    )
                self._finalize(session, status, finish)
                released = True
            else:
                still_active.append((finish, session, status))
        self._active = still_active
        if released:
            self._sample_queue()

    def _finalize(self, session: Session, status: str, finish: float) -> None:
        """Apply the terminal state and breaker observation at finish time."""
        session.finished_at = finish
        self.sessions.transition(session, _STATUS_TO_STATE[status])
        self.breakers.observe(session.klass, status, finish)
        self._observe_session(session, finish)
        failure = session.failure or {}
        if failure.get("kind") == "watchdog":
            self.counters.inc("server.watchdog_cancels")
        if (
            session.checkpoint_dir is not None
            and session.result is not None
            and session.result.resilience is not None
            and session.result.resilience.get("checkpoints_written", 0) > 0
        ):
            self.counters.inc("server.checkpointed_on_drain")
        self._cleanup_spill_dir(session)

    def _cleanup_spill_dir(self, session: Session) -> None:
        """Remove a finished session's spill directory, if one remains.

        The evaluation's own ``release_spill`` already deletes live
        segments; what can survive it are quarantined torn files and the
        directory itself — service-level state that must not outlive the
        session.
        """
        if self.config.spill_root is None:
            return
        path = Path(self.config.spill_root) / session.id
        if path.exists():
            shutil.rmtree(path, ignore_errors=True)
            self.counters.inc("server.spill_dirs_cleaned")

    # -- telemetry ---------------------------------------------------------------

    def _sample_queue(self) -> None:
        """One admission-timeline sample at the current service time.

        Taken at every event that changes the admission picture (accepted
        submit, admit, slot release), which in a discrete-event service
        is exactly the set of instants where the series can change.
        """
        if not self.queue_timeline.enabled:
            return
        self.queue_timeline.sample(
            self.clock.now(),
            queue_depth=len(self._queue),
            active=len(self._active),
            reserved_bytes=self.admission.reserved_bytes,
            spilled_bytes=sum(s.spilled_bytes for _, s, _ in self._active),
        )

    def _observe_session(self, session: Session, finish: float) -> None:
        """Latency/queue-wait/rows distributions, per class and overall."""
        if not self.histograms.enabled:
            return
        latency = max(0.0, finish - session.submitted_at)
        started = session.started_at
        queue_wait = max(0.0, started - session.submitted_at) if started is not None else 0.0
        rows = 0
        if session.result is not None:
            rows = sum(session.result.sizes().values())
        # Updates get their own latency family: their distribution (delta
        # maintenance against a warm fixpoint) is the headline the churn
        # benchmarks gate on, and folding it into full-evaluation latency
        # would blur both.
        prefix = (
            "update.latency"
            if getattr(session.request, "kind", "query") == "update"
            else "latency"
        )
        for klass in (session.klass, "all"):
            self.histograms.observe(f"{prefix}.{klass}", latency)
            self.histograms.observe(f"queue_wait.{klass}", queue_wait)
            self.histograms.observe(f"rows_served.{klass}", float(rows))
            if session.spilled_bytes:
                self.histograms.observe(
                    f"spill_bytes.{klass}", float(session.spilled_bytes)
                )

    #: Version stamp of the ``metrics_snapshot`` document; the golden
    #: schema test pins the key set, bump on any shape change.
    METRICS_SCHEMA_VERSION = 3

    def metrics_snapshot(self) -> dict:
        """Machine-readable telemetry export (histograms + timeline).

        Deterministic on the service's simulated clock: two runs with the
        same submission history produce byte-identical snapshots.
        """
        return {
            "schema_version": self.METRICS_SCHEMA_VERSION,
            "now": round(self.clock.now(), 6),
            "telemetry": self.config.telemetry,
            "histograms": self.histograms.snapshot(),
            "queue_timeline": {
                "samples": len(self.queue_timeline),
                "max_queue_depth": self.queue_timeline.peak("queue_depth"),
                "max_active": self.queue_timeline.peak("active"),
                "max_reserved_bytes": self.queue_timeline.peak("reserved_bytes"),
                "max_spilled_bytes": self.queue_timeline.peak("spilled_bytes"),
                "series": self.queue_timeline.to_records(),
            },
            "counters": self.counters.snapshot(),
            "session_counts": self.sessions.counts(),
            "admission": self.admission.to_dict(),
        }

    # -- isolated execution ------------------------------------------------------

    def _execute(self, session: Session) -> None:
        """Run one session's evaluation in its own failure domain."""
        request: QueryRequest = session.request
        session.started_at = self.clock.now()
        self.sessions.transition(session, SessionState.RUNNING)
        if request.kind == "update":
            self._execute_update(session)
            return
        config = self._session_config(session)
        engine = RecStep(config, token_factory=self._token_factory(session))
        view = None
        try:
            if request.materialize:
                view = engine.materialize(
                    request.program, request.edb_data, dataset=request.dataset
                )
                result = view.result
            else:
                result = engine.evaluate(
                    request.program, request.edb_data, dataset=request.dataset
                )
            status = result.status
            session.result = result
            session.failure = result.failure
            duration = result.sim_seconds
        except Exception as error:  # the isolation boundary: never propagate
            status = "fault"
            session.failure = self._wrap_failure(error)
            duration = (
                engine.last_database.sim_seconds
                if engine.last_database is not None
                else 0.0
            )
        self._note_spill(session)
        finish = session.started_at + duration
        if view is not None:
            if view.status == "ready":
                self._views[session.id] = view
                self._view_busy_until[session.id] = finish
                self.counters.inc("server.views_materialized")
            else:
                # A poisoned view still holds a kept-alive database;
                # free it — only healthy fixpoints stay resident.
                view.release()
        self._active.append((finish, session, status))

    def _execute_update(self, session: Session) -> None:
        """Maintain a materialized fixpoint from one EDB delta batch.

        The update serves head-of-line against its view: it cannot start
        before the view's materialization (or the previous update against
        it) has finished, so its effective interval is
        ``[max(now, view_busy_until), ... + maintain's sim_seconds)``.
        """
        request: QueryRequest = session.request
        target = request.target_session
        view = self._views.get(target) if target is not None else None
        if view is None or view.status != "ready":
            # Validated at submit time, but the view can fail to
            # materialize, be poisoned, or be released while the update
            # waited in the queue.
            status = "fault"
            session.failure = {
                "error": "NoSuchView",
                "message": f"no live materialized view for session {target!r}",
                "kind": "no-such-view",
            }
            self._active.append((session.started_at, session, status))
            return
        start_effective = max(session.started_at, self._view_busy_until[target])
        result = view.maintain(request.inserts, request.deletes)
        session.result = result
        session.failure = result.failure
        finish = start_effective + result.sim_seconds
        self._view_busy_until[target] = finish
        if result.status == "ok":
            self.counters.inc("server.updates_applied")
        self._active.append((finish, session, result.status))

    def _note_spill(self, session: Session) -> None:
        """Account a finished evaluation's spill tier against admission.

        Bytes the evaluation degraded to disk were never resident at
        peak: that slice of the session's reservation is returned to the
        admission pool immediately (the slot itself stays occupied until
        the finish time), so spilling frees headroom for queued work
        instead of holding phantom memory.
        """
        result = session.result
        recap = getattr(result, "resilience", None) or {}
        spilled = int((recap.get("spill") or {}).get("peak_spilled_bytes", 0))
        if spilled <= 0:
            return
        session.spilled_bytes = spilled
        released = min(session.reserved_bytes, spilled)
        if released:
            session.spill_released_bytes = released
            self.admission.release(released)
            self.counters.inc("server.spill_released_bytes", released)

    def _session_config(self, session: Session) -> RecStepConfig:
        request: QueryRequest = session.request
        overrides: dict = {"memory_budget": session.reserved_bytes}
        for knob in ("deadline", "max_iterations", "max_total_rows"):
            value = getattr(request, knob)
            if value is not None:
                overrides[knob] = value
        if self.config.spill_root is not None:
            # Per-session spill directory: spilled segments are part of
            # the session's failure domain, cleaned with the session.
            overrides["spill_dir"] = str(
                Path(self.config.spill_root) / session.id
            )
            # The spill rung lives on the degradation ladder.
            overrides["degradation"] = True
        if self.draining and self._drain_checkpoint_dir is not None:
            # Drain contract: bound the remaining work and leave a
            # resumable snapshot if the bound fires first.
            directory = str(Path(self._drain_checkpoint_dir) / session.id)
            overrides["checkpoint_dir"] = directory
            overrides["checkpoint_every"] = 1
            grace = self.config.drain_grace_seconds
            current = overrides.get("deadline")
            overrides["deadline"] = grace if current is None else min(current, grace)
            session.checkpoint_dir = directory
        return replace(self.engine_config, **overrides)

    def _token_factory(self, session: Session):
        stall = self.config.watchdog_stall_timeout

        def factory(clock):
            def heartbeat(now: float, context: dict) -> None:
                session.heartbeats += 1
                session.last_heartbeat = now
                session.last_position = {
                    key: context[key]
                    for key in ("stratum", "iteration")
                    if key in context
                }

            if stall is None:
                # No watchdog: still mirror progress via a passive token.
                token = _ProgressToken(heartbeat)
            else:
                token = WatchdogToken(clock, stall, on_heartbeat=heartbeat)
            return token

        return factory

    @staticmethod
    def _wrap_failure(error: Exception) -> dict:
        to_dict = getattr(error, "to_dict", None)
        if callable(to_dict):
            doc = to_dict()
        else:
            doc = {"error": type(error).__name__, "message": str(error)}
        doc.setdefault("kind", "internal")
        return doc

    # -- drain and reporting -----------------------------------------------------

    def drain(self, checkpoint_dir: str | None = None) -> dict:
        """Stop admitting, settle in-flight work, return a shutdown report.

        With ``checkpoint_dir``, queued sessions still run — each under
        the drain grace deadline with per-session checkpointing into
        ``checkpoint_dir/<session-id>`` — so long-running work leaves a
        resumable snapshot (state CANCELLED) while short work finishes
        (DONE). Without it, queued sessions are shed immediately;
        running ones are always allowed to finish.
        """
        self.draining = True
        self._drain_checkpoint_dir = checkpoint_dir
        if checkpoint_dir is None:
            while self._queue:
                session = self._queue.popleft()
                self._shed(session, "drain")
        self.flush()
        # No view survives a drain: release every warm fixpoint (and its
        # standing memory reservation) once in-flight work has settled.
        for session_id in list(self._views):
            self.release_view(session_id)
        self._sweep_spill_root()
        report = self.report()
        report["drained"] = True
        report["drain_checkpoint_dir"] = checkpoint_dir
        return report

    def _sweep_spill_root(self) -> None:
        """Drain-time backstop: no spill state survives the shutdown."""
        root = self.config.spill_root
        if root is None or not Path(root).exists():
            return
        for child in Path(root).iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
                self.counters.inc("server.spill_dirs_cleaned")

    def _shed(self, session: Session, reason: str) -> None:
        if session.pending_reservation:
            # Still queued with a priced quota: give the promised bytes
            # back immediately so they stop pricing out real work.
            self.admission.release_pending(session.reserved_bytes)
            session.pending_reservation = False
        self.sessions.transition(session, SessionState.SHED)
        session.finished_at = self.clock.now()
        session.failure = {
            "error": "SessionShed",
            "message": f"session shed: {reason}",
            "kind": "shed",
            "reason": reason,
        }
        self.counters.inc("server.shed")
        # A shed probe must give its half-open slot back.
        self.breakers.observe(session.klass, "shed", self.clock.now())

    def cancel(self, session_id: str) -> dict:
        """Cancel a queued session (running ones settle at their boundary)."""
        session = self.sessions.get(session_id)
        if session.state is SessionState.QUEUED:
            self._queue.remove(session)
            self._shed(session, "cancelled-by-client")
            self._sample_queue()
        return session.to_dict()

    def release_view(self, session_id: str) -> dict:
        """Release a materialized fixpoint and its standing reservation."""
        view = self._views.pop(session_id, None)
        if view is None:
            raise SessionError(f"no materialized view for session {session_id!r}")
        self._view_busy_until.pop(session_id, None)
        session = self.sessions.get(session_id)
        view.release()
        if not any(s is session for _, s, _ in self._active):
            # Still-active view sessions keep their slot until the clock
            # passes their finish; _release_due no longer sees the view
            # and releases the reservation then.
            self.admission.release(
                session.reserved_bytes - session.spill_released_bytes
            )
        self.counters.inc("server.views_released")
        self._sample_queue()
        return session.to_dict()

    def status(self, session_id: str) -> dict:
        return self.sessions.get(session_id).to_dict()

    def report(self) -> dict:
        """Machine-readable service snapshot (also the shutdown report)."""
        return {
            "now": round(self.clock.now(), 6),
            "draining": self.draining,
            "session_counts": self.sessions.counts(),
            "spilled_bytes_total": sum(
                s.spilled_bytes for s in self.sessions.all()
            ),
            "sessions": [s.to_dict() for s in self.sessions.all()],
            "queue_depth": len(self._queue),
            "active": len(self._active),
            "admission": self.admission.to_dict(),
            "breakers": self.breakers.to_dict(),
            "counters": self.counters.snapshot(),
            "metrics": self.metrics_snapshot(),
        }


class _ProgressToken:
    """A passive token: mirrors heartbeats, never cancels."""

    cancelled = False

    def __init__(self, on_heartbeat) -> None:
        self._on_heartbeat = on_heartbeat

    def check(self, **context) -> None:
        self._on_heartbeat(None, context)

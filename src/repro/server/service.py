"""The concurrent query service: many Datalog programs, one stable engine.

:class:`QueryService` is the multi-query front door the ROADMAP's
"serves heavy traffic" north star asks for, built as a discrete-event
simulation on the service's own :class:`~repro.common.timing.SimClock`
(the same substitution the engines use for parallelism). Concurrency is
modeled with executor slots: an admitted query occupies a slot for the
interval ``[started_at, started_at + sim_seconds)`` of its isolated
evaluation, queued queries wait for slot *and* memory-reservation
availability, and the service clock advances from completion event to
completion event.

The stability disciplines, in the order a submission meets them:

1. **drain gate** — a draining service admits nothing new.
2. **admission control** — bounded queue + memory reservations against
   the high watermark; violations get a structured
   :class:`~repro.server.admission.Overloaded` rejection with a
   retry-after hint instead of unbounded buffering.
3. **circuit breaker** — a class with repeated backend failures is
   rejected at the door until a cooldown passes and a half-open probe
   succeeds.
4. **isolated execution** — each query runs on its own Database with
   its reservation as a *hard* memory budget, wrapped so any failure
   becomes a structured document on the session, never an exception to
   a neighbor.
5. **watchdog** — iteration heartbeats feed a stall detector that
   cancels stuck fixpoints cooperatively.
6. **graceful drain** — stop admitting, finish or checkpoint in-flight
   work, emit a machine-readable shutdown report.
"""

from __future__ import annotations

import shutil
import zlib
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.common.errors import (
    DatalogError,
    DivergenceGuardTripped,
    EvaluationCancelled,
    EvaluationTimeout,
    FaultRetriesExhausted,
    OutOfMemoryError,
    SpillError,
)
from repro.common.records import EvaluationResult
from repro.common.rng import derive_seed
from repro.common.timing import SimClock
from repro.core.config import RecStepConfig
from repro.core.recstep import (
    MaintenanceResult,
    MaterializedFixpoint,
    RecStep,
    _resolve_program,
)
from repro.datalog import ast as dast
from repro.datalog.magic import filter_answers, magic_rewrite
from repro.datalog.parser import parse_goal
from repro.engine.metrics import CRITICAL_WATERMARK, DEFAULT_MEMORY_BUDGET
from repro.obs.counters import CounterRegistry
from repro.obs.histogram import NULL_HISTOGRAMS, HistogramSet
from repro.obs.timeline import NULL_TIMELINE, ResourceTimeline
from repro.programs.library import ProgramSpec
from repro.resilience import FaultInjector, RetryPolicy
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointManager,
    edb_fingerprint,
)
from repro.resilience.wal import (
    BASE_DIR_NAME,
    WAL_NAME,
    ViewDurability,
    WalError,
    WriteAheadLog,
)
from repro.server.admission import (
    DEFAULT_RETRY_AFTER,
    MIN_SESSION_QUOTA,
    AdmissionController,
    Overloaded,
    QueryRequest,
)
from repro.server.breaker import BreakerBoard
from repro.server.session import (
    Session,
    SessionError,
    SessionManager,
    SessionState,
)
from repro.server.watchdog import WatchdogToken

#: result.status -> terminal session state.
_STATUS_TO_STATE = {
    "ok": SessionState.DONE,
    "deadline": SessionState.CANCELLED,
    "cancelled": SessionState.CANCELLED,
    "oom": SessionState.FAILED,
    "timeout": SessionState.FAILED,
    "fault": SessionState.FAILED,
    "guard": SessionState.FAILED,
    "storage": SessionState.FAILED,
}


@dataclass(frozen=True)
class ServerConfig:
    """Service-level knobs (the engine's live in :class:`RecStepConfig`)."""

    max_concurrent: int = 4          # executor slots
    queue_limit: int = 8             # bounded admission queue
    memory_budget: int = DEFAULT_MEMORY_BUDGET  # service memory (bytes)
    high_watermark: float = CRITICAL_WATERMARK  # reservation ceiling
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 60.0
    watchdog_stall_timeout: float | None = None  # None: watchdog off
    drain_grace_seconds: float = 5.0  # per-query budget during drain
    telemetry: bool = True           # latency histograms + queue timeline
    #: Root of the spill-to-disk tier; each session spills into its own
    #: ``<spill_root>/<session-id>`` directory (None: spilling off).
    spill_root: str | None = None
    #: Root of the durable-view tier; each materialized view persists a
    #: base checkpoint + write-ahead log under ``<wal_root>/<session-id>``
    #: and :meth:`QueryService.recover` rebuilds views from it after a
    #: crash (None: views are memory-only, the pre-durability behavior).
    wal_root: str | None = None
    #: Compaction bounds: once this many applied records (or this many
    #: log bytes) accumulate, the view rolls a fresh base checkpoint and
    #: truncates its log.
    wal_compact_records: int = 64
    wal_compact_bytes: int = 1 << 20


class QueryService:
    """Admits, schedules, and survives many concurrent Datalog queries."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        engine_config: RecStepConfig | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.engine_config = engine_config or RecStepConfig()
        self.clock = SimClock()
        self.counters = CounterRegistry()
        self.sessions = SessionManager()
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            memory_budget=self.config.memory_budget,
            max_concurrent=self.config.max_concurrent,
            high_watermark=self.config.high_watermark,
        )
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            counters=self.counters,
        )
        self._queue: deque[Session] = deque()
        #: (finish_time, session, result_status) for sessions whose
        #: evaluation interval is still occupying a slot.
        self._active: list[tuple[float, Session, str]] = []
        #: session id -> live MaterializedFixpoint. A view session's
        #: memory reservation outlives its evaluation interval: the warm
        #: fixpoint stays resident so ``kind="update"`` requests can
        #: maintain it instead of recomputing.
        self._views: dict[str, MaterializedFixpoint] = {}
        #: session id -> simulated time its view is serving until; update
        #: requests against the same view queue head-of-line behind it.
        self._view_busy_until: dict[str, float] = {}
        #: session id -> ViewDurability for views persisted under
        #: ``wal_root`` (empty when durability is off).
        self._durability: dict[str, ViewDurability] = {}
        #: Demand cache for point queries: (program, EDB fingerprint,
        #: goal predicate, adornment, bound constants) -> the
        #: demand-restricted answer relation (filtered by the bound
        #: constants only). Repeated and paginated lookups with the same
        #: bindings re-filter the warm answers instead of re-running the
        #: fixpoint.
        self._demand_cache: dict[tuple, dict] = {}
        # WAL appends share the engine's deterministic fault discipline:
        # a chaos seed arms the wal_* sites on an independent stream.
        self._wal_injector = (
            FaultInjector(
                derive_seed(self.engine_config.fault_seed, "wal"),
                rate=self.engine_config.fault_rate,
            )
            if self.engine_config.fault_seed is not None
            else None
        )
        self._wal_retry = RetryPolicy(
            max_attempts=self.engine_config.retries,
            backoff_base=self.engine_config.retry_backoff,
        )
        self.draining = False
        self._drain_checkpoint_dir: str | None = None
        # Per-query-class latency/queue-wait/rows distributions and the
        # admission-queue timeline; null objects when telemetry is off so
        # every observation site is one attribute test.
        if self.config.telemetry:
            self.histograms = HistogramSet()
            self.queue_timeline = ResourceTimeline()
        else:
            self.histograms = NULL_HISTOGRAMS
            self.queue_timeline = NULL_TIMELINE

    # -- submission --------------------------------------------------------------

    def submit(self, request: QueryRequest) -> dict:
        """Queue one query; returns an acceptance or a structured rejection.

        Acceptance: ``{"accepted": True, "session_id": ...}``. Rejection:
        ``{"accepted": False, "overloaded": True, "reason": ...,
        "retry_after_seconds": ...}`` — the backpressure contract.
        """
        self.counters.inc("server.submitted")
        now = self.clock.now()
        if self.draining:
            return self._reject(
                Overloaded(
                    reason="draining",
                    retry_after_seconds=self._retry_hint(now),
                )
            )
        if request.kind == "update":
            if not self._update_target_valid(request):
                return self._reject(
                    Overloaded(
                        reason="no-such-view",
                        retry_after_seconds=DEFAULT_RETRY_AFTER,
                        detail={"target_session": request.target_session},
                    )
                )
            # Admission-price the delta: maintenance scratch lives inside
            # the target view's reservation, so a batch the view's budget
            # cannot absorb bounces with backpressure instead of queuing.
            target = self.sessions.get(request.target_session)
            quota = self.admission.quota_for(request)
            if quota > target.reserved_bytes:
                return self._reject(
                    Overloaded(
                        reason="memory-pressure",
                        retry_after_seconds=self._retry_hint(now),
                        detail={
                            "requested_bytes": quota,
                            "view_reserved_bytes": target.reserved_bytes,
                            "target_session": request.target_session,
                        },
                    )
                )
        if request.kind == "point":
            overload = self._plan_point(request)
            if overload is not None:
                return self._reject(overload)
        overload = self.admission.check_submit(
            request, queue_depth=len(self._queue), retry_hint=self._retry_hint(now)
        )
        if overload is not None:
            return self._reject(overload)
        breaker = self.breakers.for_class(request.klass)
        if not breaker.allow(now):
            return self._reject(
                Overloaded(
                    reason="breaker-open",
                    retry_after_seconds=max(
                        breaker.retry_after(now), DEFAULT_RETRY_AFTER
                    ),
                    detail={"class": request.klass, "breaker": breaker.to_dict()},
                )
            )
        session = self.sessions.create(request, now)
        session.reserved_bytes = self.admission.quota_for(request)
        if request.priced:
            # Priced quotas count against the watermark from submission
            # on, so a burst of queued sessions cannot over-commit it.
            self.admission.note_pending(session.reserved_bytes)
            session.pending_reservation = True
        self._queue.append(session)
        self._sample_queue()
        return {"accepted": True, "session_id": session.id, "state": "queued"}

    def _update_target_valid(self, request: QueryRequest) -> bool:
        """A live view, or a materialize session still on its way to one."""
        target = request.target_session
        if target is None:
            return False
        if target in self._views:
            return True
        try:
            session = self.sessions.get(target)
        except SessionError:
            return False
        return bool(
            getattr(session.request, "materialize", False)
            and session.state
            in (SessionState.QUEUED, SessionState.ADMITTED, SessionState.RUNNING)
        )

    def _plan_point(self, request: QueryRequest) -> Overloaded | None:
        """Plan a point goal at submit time: parse, rewrite, price.

        A malformed goal (parse error, unknown predicate, arity or term
        violations) is a client error, bounced as a structured
        ``bad-goal`` rejection before a session exists. A well-formed
        goal is magic-rewritten once here; the plan (goal atom, canonical
        constants-only goal, rewrite, demand-cache key) rides on the
        request for :meth:`_execute_point`, and — unless the client set
        an explicit quota — the request is priced by the rewrite's cone
        estimate instead of a full default slot, so cheap bound lookups
        admit under memory pressure that would bounce full evaluations.
        """
        try:
            analyzed, program_name, _ = _resolve_program(request.program)
            goal = (
                parse_goal(request.goal)
                if isinstance(request.goal, str)
                else request.goal
            )
            # Canonical goal: bound constants kept, every free position a
            # distinct fresh variable. The rewrite (and the cached answer
            # relation) depend only on the bindings, so goals differing
            # in wildcards or repeated variables share one cache entry
            # and re-filter it per lookup.
            canonical = dast.Atom(
                goal.predicate,
                tuple(
                    term
                    if isinstance(term, dast.Constant)
                    else dast.Variable(f"_pt{index}")
                    for index, term in enumerate(goal.terms)
                ),
            )
            rewrite = magic_rewrite(analyzed, canonical)
        except DatalogError as error:
            return Overloaded(
                reason="bad-goal",
                retry_after_seconds=DEFAULT_RETRY_AFTER,
                detail={"message": str(error), "goal": str(request.goal)},
            )
        if request.memory_quota is None:
            request.memory_quota = max(
                MIN_SESSION_QUOTA,
                int(
                    self.admission.default_quota
                    * rewrite.cone_fraction(analyzed)
                ),
            )
        bound = tuple(
            term.value
            for term in canonical.terms
            if isinstance(term, dast.Constant)
        )
        fingerprint = edb_fingerprint(
            {
                name: np.asarray(
                    request.edb_data[name], dtype=np.int64
                ).reshape(-1, analyzed.arities[name])
                for name in sorted(analyzed.edb)
                if name in request.edb_data
            }
        )
        request.point_plan = {
            "goal": goal,
            "canonical": canonical,
            "rewrite": rewrite,
            "program_name": program_name,
            "cache_key": (
                # Program identity by content, not name: two programs
                # both named "program" must not share demand entries.
                zlib.crc32(str(analyzed.program).encode("utf-8")),
                fingerprint,
                goal.predicate,
                rewrite.adornment,
                bound,
            ),
        }
        return None

    _REJECT_COUNTERS = {
        "queue-full": "server.rejected_queue_full",
        "memory-pressure": "server.rejected_memory",
        "draining": "server.rejected_draining",
        "breaker-open": "server.rejected_breaker",
        "no-such-view": "server.rejected_no_view",
        "bad-goal": "server.rejected_bad_goal",
    }

    def _reject(self, overload: Overloaded) -> dict:
        self.counters.inc("server.rejected")
        self.counters.inc(self._REJECT_COUNTERS[overload.reason])
        return {"accepted": False, **overload.to_dict()}

    def _retry_hint(self, now: float) -> float:
        """When capacity plausibly frees up: the earliest active finish."""
        if self._active:
            earliest = min(finish for finish, _, _ in self._active)
            return max(earliest - now, DEFAULT_RETRY_AFTER / 10.0)
        return DEFAULT_RETRY_AFTER

    # -- the event loop ----------------------------------------------------------

    def pump(self) -> None:
        """Process queued work until the queue is empty.

        Advances the service clock across completion events whenever the
        queue is blocked on a slot or a memory reservation. Completed
        sessions whose finish time is still in the future keep holding
        their slot until the clock passes it (``drain``/``flush`` push
        the clock to the end).
        """
        while True:
            self._release_due()
            self._admit_ready()
            if not self._queue:
                return
            if not self._active:
                # Queue blocked with nothing running: impossible to make
                # progress by waiting (can only happen if a quota exceeds
                # the watermark ceiling outright, which check_submit
                # rejects) — bail rather than spin.
                return
            earliest = min(finish for finish, _, _ in self._active)
            self.clock.advance(max(0.0, earliest - self.clock.now()))

    def flush(self) -> None:
        """Advance the clock past every active evaluation (idle barrier)."""
        self.pump()
        while self._active:
            earliest = min(finish for finish, _, _ in self._active)
            self.clock.advance(max(0.0, earliest - self.clock.now()))
            self._release_due()
            self._admit_ready()

    def _admit_ready(self) -> None:
        while self._queue and len(self._active) < self.config.max_concurrent:
            session = self._queue[0]
            if getattr(session.request, "kind", "query") == "update":
                # Rides the target view's standing reservation; nothing
                # to take from the global pool.
                pass
            elif not self.admission.try_reserve(
                session.reserved_bytes, was_pending=session.pending_reservation
            ):
                return
            session.pending_reservation = False
            self._queue.popleft()
            self.sessions.transition(session, SessionState.ADMITTED)
            session.admitted_at = self.clock.now()
            self.counters.inc("server.admitted")
            self._execute(session)
            self._sample_queue()

    def _release_due(self) -> None:
        now = self.clock.now()
        still_active = []
        released = False
        for finish, session, status in self._active:
            if finish <= now:
                holds_no_pool_bytes = (
                    session.id in self._views  # warm fixpoint stays resident
                    or getattr(session.request, "kind", "query") == "update"
                )
                if not holds_no_pool_bytes:
                    # The spilled slice (if any) was already released early.
                    self.admission.release(
                        session.reserved_bytes - session.spill_released_bytes
                    )
                self._finalize(session, status, finish)
                released = True
            else:
                still_active.append((finish, session, status))
        self._active = still_active
        if released:
            self._sample_queue()

    def _finalize(self, session: Session, status: str, finish: float) -> None:
        """Apply the terminal state and breaker observation at finish time."""
        session.finished_at = finish
        self.sessions.transition(session, _STATUS_TO_STATE[status])
        self.breakers.observe(session.klass, status, finish)
        self._observe_session(session, finish)
        failure = session.failure or {}
        if failure.get("kind") == "watchdog":
            self.counters.inc("server.watchdog_cancels")
        if (
            session.checkpoint_dir is not None
            and session.result is not None
            and session.result.resilience is not None
            and session.result.resilience.get("checkpoints_written", 0) > 0
        ):
            self.counters.inc("server.checkpointed_on_drain")
        self._cleanup_spill_dir(session)

    def _cleanup_spill_dir(self, session: Session) -> None:
        """Remove a finished session's spill directory, if one remains.

        The evaluation's own ``release_spill`` already deletes live
        segments; what can survive it are quarantined torn files and the
        directory itself — service-level state that must not outlive the
        session.
        """
        if self.config.spill_root is None:
            return
        path = Path(self.config.spill_root) / session.id
        if path.exists():
            shutil.rmtree(path, ignore_errors=True)
            self.counters.inc("server.spill_dirs_cleaned")

    # -- telemetry ---------------------------------------------------------------

    def _sample_queue(self) -> None:
        """One admission-timeline sample at the current service time.

        Taken at every event that changes the admission picture (accepted
        submit, admit, slot release), which in a discrete-event service
        is exactly the set of instants where the series can change.
        """
        if not self.queue_timeline.enabled:
            return
        self.queue_timeline.sample(
            self.clock.now(),
            queue_depth=len(self._queue),
            active=len(self._active),
            reserved_bytes=self.admission.reserved_bytes,
            spilled_bytes=sum(s.spilled_bytes for _, s, _ in self._active),
        )

    def _observe_session(self, session: Session, finish: float) -> None:
        """Latency/queue-wait/rows distributions, per class and overall."""
        if not self.histograms.enabled:
            return
        latency = max(0.0, finish - session.submitted_at)
        started = session.started_at
        queue_wait = max(0.0, started - session.submitted_at) if started is not None else 0.0
        rows = 0
        if session.result is not None:
            rows = sum(session.result.sizes().values())
        # Updates and point queries get their own latency families: their
        # distributions (delta maintenance against a warm fixpoint; a
        # demand-restricted cone, often a cache hit) are the headlines
        # their benchmarks gate on, and folding either into
        # full-evaluation latency would blur all three.
        prefix = {
            "update": "update.latency",
            "point": "point.latency",
        }.get(getattr(session.request, "kind", "query"), "latency")
        for klass in (session.klass, "all"):
            self.histograms.observe(f"{prefix}.{klass}", latency)
            self.histograms.observe(f"queue_wait.{klass}", queue_wait)
            self.histograms.observe(f"rows_served.{klass}", float(rows))
            if session.spilled_bytes:
                self.histograms.observe(
                    f"spill_bytes.{klass}", float(session.spilled_bytes)
                )

    #: Version stamp of the ``metrics_snapshot`` document; the golden
    #: schema test pins the key set, bump on any shape change. Version 4
    #: added the ``wal`` durability section.
    METRICS_SCHEMA_VERSION = 4

    def metrics_snapshot(self) -> dict:
        """Machine-readable telemetry export (histograms + timeline).

        Deterministic on the service's simulated clock: two runs with the
        same submission history produce byte-identical snapshots.
        """
        return {
            "schema_version": self.METRICS_SCHEMA_VERSION,
            "now": round(self.clock.now(), 6),
            "telemetry": self.config.telemetry,
            "histograms": self.histograms.snapshot(),
            "queue_timeline": {
                "samples": len(self.queue_timeline),
                "max_queue_depth": self.queue_timeline.peak("queue_depth"),
                "max_active": self.queue_timeline.peak("active"),
                "max_reserved_bytes": self.queue_timeline.peak("reserved_bytes"),
                "max_spilled_bytes": self.queue_timeline.peak("spilled_bytes"),
                "series": self.queue_timeline.to_records(),
            },
            "counters": self.counters.snapshot(),
            "session_counts": self.sessions.counts(),
            "admission": self.admission.to_dict(),
            "wal": {
                "durable_views": len(self._durability),
                "records": sum(
                    d.wal.record_count for d in self._durability.values()
                ),
                "bytes": sum(
                    d.wal.size_bytes for d in self._durability.values()
                ),
                "last_seqno": max(
                    (d.wal.last_seqno for d in self._durability.values()),
                    default=0,
                ),
            },
        }

    # -- isolated execution ------------------------------------------------------

    def _execute(self, session: Session) -> None:
        """Run one session's evaluation in its own failure domain."""
        request: QueryRequest = session.request
        session.started_at = self.clock.now()
        self.sessions.transition(session, SessionState.RUNNING)
        if request.kind == "update":
            self._execute_update(session)
            return
        if request.kind == "point":
            self._execute_point(session)
            return
        config = self._session_config(session)
        engine = RecStep(config, token_factory=self._token_factory(session))
        view = None
        try:
            if request.materialize:
                view = engine.materialize(
                    request.program, request.edb_data, dataset=request.dataset
                )
                result = view.result
            else:
                result = engine.evaluate(
                    request.program, request.edb_data, dataset=request.dataset
                )
            status = result.status
            session.result = result
            session.failure = result.failure
            duration = result.sim_seconds
        except Exception as error:  # the isolation boundary: never propagate
            status, session.failure = self._classify_failure(error)
            duration = (
                engine.last_database.sim_seconds
                if engine.last_database is not None
                else 0.0
            )
        self._note_spill(session)
        finish = session.started_at + duration
        if view is not None:
            if view.status == "ready":
                self._views[session.id] = view
                self._view_busy_until[session.id] = finish
                self.counters.inc("server.views_materialized")
                self._persist_view(session, view)
            else:
                # A poisoned view still holds a kept-alive database;
                # free it — only healthy fixpoints stay resident.
                view.release()
        self._active.append((finish, session, status))

    def _persist_view(self, session: Session, view: MaterializedFixpoint) -> None:
        """Write a just-materialized view's durable state under wal_root.

        Base checkpoint + empty log + manifest (the manifest last — its
        presence is the commit point). Persistence failures degrade the
        view to memory-only rather than failing the session: the query
        result is already correct, only the crash story is weaker.
        """
        if self.config.wal_root is None:
            return
        source = getattr(session.request.program, "source", None)
        if source is None and isinstance(session.request.program, str):
            source = session.request.program
        if source is None:
            # An AnalyzedProgram carries no re-parseable source; there is
            # nothing recovery could rebuild the view from.
            self.counters.inc("wal.persist_failures")
            return
        schemas = getattr(session.request.program, "edb_schemas", {}) or {}
        manifest = {
            "session_id": session.id,
            "program": view.program,
            "source": source,
            "edb_schemas": {name: list(cols) for name, cols in schemas.items()},
            "dataset": view.dataset,
            "klass": session.klass,
            "reserved_bytes": session.reserved_bytes,
        }
        try:
            self._durability[session.id] = ViewDurability.create(
                Path(self.config.wal_root) / session.id,
                view,
                manifest,
                counters=self.counters,
                injector=self._wal_injector,
                retry=self._wal_retry,
            )
        except (OSError, WalError, CheckpointError):
            self.counters.inc("wal.persist_failures")

    @staticmethod
    def _validate_update_batch(
        view: MaterializedFixpoint, request: QueryRequest
    ) -> dict | None:
        """Reject malformed batches *before* anything is logged.

        The WAL must only ever hold batches the view can apply: an
        unknown relation or ragged rows would fault during replay too,
        so they are bounced here with a structured failure and no log
        entry.
        """
        for side, batch in (("inserts", request.inserts), ("deletes", request.deletes)):
            for name, rows in (batch or {}).items():
                if name not in view.analyzed.edb:
                    return {
                        "error": "BadBatch",
                        "kind": "bad-batch",
                        "message": f"{side} target {name!r} is not an EDB "
                        f"relation of program {view.program!r}",
                        "relation": name,
                    }
                try:
                    np.asarray(rows, dtype=np.int64).reshape(
                        -1, view.analyzed.arities[name]
                    )
                except (TypeError, ValueError) as error:
                    return {
                        "error": "BadBatch",
                        "kind": "bad-batch",
                        "message": f"{side} rows for {name!r} do not fit "
                        f"arity {view.analyzed.arities[name]}: {error}",
                        "relation": name,
                    }
        return None

    def _execute_update(self, session: Session) -> None:
        """Maintain a materialized fixpoint from one EDB delta batch.

        The update serves head-of-line against its view: it cannot start
        before the view's materialization (or the previous update against
        it) has finished, so its effective interval is
        ``[max(now, view_busy_until), ... + maintain's sim_seconds)``.

        Against a durable view the batch is appended to the write-ahead
        log *before* the view mutates; a batch whose ``batch_id`` was
        already acknowledged is acked again without re-applying
        (exactly-once for client retries).
        """
        request: QueryRequest = session.request
        target = request.target_session
        view = self._views.get(target) if target is not None else None
        if view is None or view.status != "ready":
            # Validated at submit time, but the view can fail to
            # materialize, be poisoned, or be released while the update
            # waited in the queue.
            status = "fault"
            session.failure = {
                "error": "NoSuchView",
                "message": f"no live materialized view for session {target!r}",
                "kind": "no-such-view",
            }
            self._active.append((session.started_at, session, status))
            return
        start_effective = max(session.started_at, self._view_busy_until[target])
        durability = self._durability.get(target)
        batch_id = getattr(request, "batch_id", None)
        if durability is not None and durability.is_duplicate(batch_id):
            # Already acknowledged under this id (live or replayed):
            # re-ack at zero cost, mutate nothing, log nothing.
            self.counters.inc("wal.duplicate_batches")
            result = MaintenanceResult(
                engine=view.engine_name,
                program=view.program,
                dataset=request.dataset,
                idb_sizes=view.sizes(),
            )
            session.result = result
            self._active.append((start_effective, session, "ok"))
            return
        bad = self._validate_update_batch(view, request)
        if bad is not None:
            session.failure = bad
            self._active.append((start_effective, session, "fault"))
            return
        seqno = None
        if durability is not None:
            try:
                seqno = durability.log_update(
                    request.inserts, request.deletes, batch_id
                )
                session.wal_seqno = seqno
            except (FaultRetriesExhausted, WalError, OSError) as error:
                # Write-ahead means exactly that: if the batch cannot be
                # made durable it must not be applied. The view itself is
                # untouched and keeps serving.
                session.failure = self._wrap_failure(error)
                session.failure["kind"] = "wal-append"
                self._active.append((start_effective, session, "fault"))
                return
        token = self._token_factory(session)(view.database.metrics.clock)
        result = view.maintain(request.inserts, request.deletes, token=token)
        session.result = result
        session.failure = result.failure
        finish = start_effective + result.sim_seconds
        self._view_busy_until[target] = finish
        if result.status == "ok":
            self.counters.inc("server.updates_applied")
            if durability is not None and seqno is not None:
                durability.note_applied(seqno)
                if durability.should_compact(
                    self.config.wal_compact_records,
                    self.config.wal_compact_bytes,
                ):
                    durability.compact(view)
        self._active.append((finish, session, result.status))

    def _execute_point(self, session: Session) -> None:
        """Answer one point goal, serving repeats from the demand cache.

        The cache is keyed by (program content, EDB fingerprint, goal
        predicate, adornment, bound constants) and holds the
        demand-restricted answer relation filtered by the bound constants
        only, so repeated lookups with the same bindings but different
        free-term patterns (wildcards, repeated variables) re-filter the
        warm answers at zero evaluation cost instead of re-running the
        fixpoint. Any EDB churn changes the fingerprint and misses.
        """
        request: QueryRequest = session.request
        plan = getattr(request, "point_plan", None)
        if plan is None:
            # Defensive: submission always plans; a request reaching here
            # without a plan (hand-built session in tests) plans now.
            overload = self._plan_point(request)
            if overload is not None:
                session.failure = {
                    "error": "DatalogError",
                    "kind": "bad-goal",
                    **overload.detail,
                }
                self._active.append((session.started_at, session, "fault"))
                return
            plan = request.point_plan
        goal: dast.Atom = plan["goal"]
        self.counters.inc("server.point_queries")
        cached = self._demand_cache.get(plan["cache_key"])
        if cached is not None:
            self.counters.inc("server.point_cache_hits")
            result = EvaluationResult(
                engine=RecStep.name,
                program=plan["program_name"],
                dataset=request.dataset,
            )
            result.tuples = {
                goal.predicate: filter_answers(cached["answers"], goal)
            }
            result.detail.update(cached["detail"])
            result.detail["answer_rows"] = float(
                len(result.tuples[goal.predicate])
            )
            result.detail["point_cache_hit"] = 1.0
            session.result = result
            # A hit costs no evaluation: the session settles at its start
            # instant.
            self._active.append((session.started_at, session, "ok"))
            return
        self.counters.inc("server.point_cache_misses")
        config = self._session_config(session)
        engine = RecStep(config, token_factory=self._token_factory(session))
        try:
            result = engine.answer(
                request.program,
                plan["canonical"],
                request.edb_data,
                dataset=request.dataset,
                rewrite=plan["rewrite"],
            )
            status = result.status
            session.result = result
            session.failure = result.failure
            duration = result.sim_seconds
            if status == "ok":
                canonical_answers = result.tuples[goal.predicate]
                self._demand_cache[plan["cache_key"]] = {
                    "answers": canonical_answers,
                    "detail": {
                        key: value
                        for key, value in result.detail.items()
                        if key.startswith("magic_")
                    },
                }
                result.tuples = {
                    goal.predicate: filter_answers(canonical_answers, goal)
                }
                result.detail["answer_rows"] = float(
                    len(result.tuples[goal.predicate])
                )
                result.detail["point_cache_hit"] = 0.0
        except Exception as error:  # the isolation boundary: never propagate
            status, session.failure = self._classify_failure(error)
            duration = (
                engine.last_database.sim_seconds
                if engine.last_database is not None
                else 0.0
            )
        self._note_spill(session)
        self._active.append((session.started_at + duration, session, status))

    def _note_spill(self, session: Session) -> None:
        """Account a finished evaluation's spill tier against admission.

        Bytes the evaluation degraded to disk were never resident at
        peak: that slice of the session's reservation is returned to the
        admission pool immediately (the slot itself stays occupied until
        the finish time), so spilling frees headroom for queued work
        instead of holding phantom memory.
        """
        result = session.result
        recap = getattr(result, "resilience", None) or {}
        spilled = int((recap.get("spill") or {}).get("peak_spilled_bytes", 0))
        if spilled <= 0:
            return
        session.spilled_bytes = spilled
        released = min(session.reserved_bytes, spilled)
        if released:
            session.spill_released_bytes = released
            self.admission.release(released)
            self.counters.inc("server.spill_released_bytes", released)

    def _session_config(self, session: Session) -> RecStepConfig:
        request: QueryRequest = session.request
        overrides: dict = {"memory_budget": session.reserved_bytes}
        for knob in ("deadline", "max_iterations", "max_total_rows"):
            value = getattr(request, knob)
            if value is not None:
                overrides[knob] = value
        if self.config.spill_root is not None:
            # Per-session spill directory: spilled segments are part of
            # the session's failure domain, cleaned with the session.
            overrides["spill_dir"] = str(
                Path(self.config.spill_root) / session.id
            )
            # The spill rung lives on the degradation ladder.
            overrides["degradation"] = True
        if self.draining and self._drain_checkpoint_dir is not None:
            # Drain contract: bound the remaining work and leave a
            # resumable snapshot if the bound fires first.
            directory = str(Path(self._drain_checkpoint_dir) / session.id)
            overrides["checkpoint_dir"] = directory
            overrides["checkpoint_every"] = 1
            grace = self.config.drain_grace_seconds
            current = overrides.get("deadline")
            overrides["deadline"] = grace if current is None else min(current, grace)
            session.checkpoint_dir = directory
        return replace(self.engine_config, **overrides)

    def _token_factory(self, session: Session):
        stall = self.config.watchdog_stall_timeout

        def factory(clock):
            def heartbeat(now: float, context: dict) -> None:
                session.heartbeats += 1
                session.last_heartbeat = now
                session.last_position = {
                    key: context[key]
                    for key in ("stratum", "iteration")
                    if key in context
                }

            if stall is None:
                # No watchdog: still mirror progress via a passive token.
                token = _ProgressToken(heartbeat)
            else:
                token = WatchdogToken(clock, stall, on_heartbeat=heartbeat)
            return token

        return factory

    @staticmethod
    def _wrap_failure(error: Exception) -> dict:
        to_dict = getattr(error, "to_dict", None)
        if callable(to_dict):
            doc = to_dict()
        else:
            doc = {"error": type(error).__name__, "message": str(error)}
        doc.setdefault("kind", "internal")
        return doc

    #: Evaluation-control exceptions the isolation boundaries must map to
    #: their structured statuses instead of collapsing into generic
    #: ``fault``/``kind="internal"`` — the same taxonomy RecStep.evaluate
    #: applies inside the interpreter.
    _CONTROL_STATUSES = (
        (OutOfMemoryError, "oom"),
        (EvaluationTimeout, "timeout"),
        (DivergenceGuardTripped, "guard"),
        (FaultRetriesExhausted, "fault"),
        (SpillError, "storage"),
    )

    @classmethod
    def _classify_failure(cls, error: Exception) -> tuple[str, dict]:
        """Map an escaped exception to ``(status, failure_doc)``.

        Cancellation (client deadline, watchdog, drain grace), divergence
        guards, OOM, and the other evaluation-control classes normally
        surface as result *statuses*; if one escapes the interpreter
        (raised outside the guarded fixpoint loop) the isolation boundary
        must still classify it — a watchdog cancel is ``CANCELLED`` with
        ``kind="watchdog"``, a tripped guard is ``guard``, never a
        generic ``FAILED``/``internal``.
        """
        if isinstance(error, EvaluationCancelled):
            reason = error.context.get("reason", "cancelled")
            status = "deadline" if reason == "deadline" else "cancelled"
            doc = error.to_dict()
            doc.setdefault("kind", reason)
            return status, doc
        for klass, status in cls._CONTROL_STATUSES:
            if isinstance(error, klass):
                doc = error.to_dict()
                doc.setdefault("kind", doc.get("reason", status))
                return status, doc
        return "fault", cls._wrap_failure(error)

    # -- drain and reporting -----------------------------------------------------

    def drain(self, checkpoint_dir: str | None = None) -> dict:
        """Stop admitting, settle in-flight work, return a shutdown report.

        With ``checkpoint_dir``, queued sessions still run — each under
        the drain grace deadline with per-session checkpointing into
        ``checkpoint_dir/<session-id>`` — so long-running work leaves a
        resumable snapshot (state CANCELLED) while short work finishes
        (DONE). Without it, queued sessions are shed immediately;
        running ones are always allowed to finish.
        """
        self.draining = True
        self._drain_checkpoint_dir = checkpoint_dir
        if checkpoint_dir is None:
            while self._queue:
                session = self._queue.popleft()
                self._shed(session, "drain")
        self.flush()
        # No view survives a drain: release every warm fixpoint (and its
        # standing memory reservation) once in-flight work has settled.
        for session_id in list(self._views):
            self.release_view(session_id)
        self._sweep_spill_root()
        report = self.report()
        report["drained"] = True
        report["drain_checkpoint_dir"] = checkpoint_dir
        return report

    def _sweep_spill_root(self) -> None:
        """Drain-time backstop: no spill state survives the shutdown."""
        root = self.config.spill_root
        if root is None or not Path(root).exists():
            return
        for child in Path(root).iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
                self.counters.inc("server.spill_dirs_cleaned")

    def _shed(self, session: Session, reason: str) -> None:
        if session.pending_reservation:
            # Still queued with a priced quota: give the promised bytes
            # back immediately so they stop pricing out real work.
            self.admission.release_pending(session.reserved_bytes)
            session.pending_reservation = False
        self.sessions.transition(session, SessionState.SHED)
        session.finished_at = self.clock.now()
        session.failure = {
            "error": "SessionShed",
            "message": f"session shed: {reason}",
            "kind": "shed",
            "reason": reason,
        }
        self.counters.inc("server.shed")
        # A shed probe must give its half-open slot back.
        self.breakers.observe(session.klass, "shed", self.clock.now())

    def cancel(self, session_id: str) -> dict:
        """Cancel a queued session (running ones settle at their boundary)."""
        session = self.sessions.get(session_id)
        if session.state is SessionState.QUEUED:
            self._queue.remove(session)
            self._shed(session, "cancelled-by-client")
            self._sample_queue()
        return session.to_dict()

    def release_view(self, session_id: str) -> dict:
        """Release a materialized fixpoint and its standing reservation.

        The view's *disk* state (base checkpoint + log under wal_root)
        deliberately survives: releasing frees memory, it does not forget
        acknowledged updates — a later :meth:`recover` can still rebuild
        the view. Only the in-memory durability handle is dropped.
        """
        view = self._views.pop(session_id, None)
        if view is None:
            raise SessionError(f"no materialized view for session {session_id!r}")
        self._view_busy_until.pop(session_id, None)
        self._durability.pop(session_id, None)
        session = self.sessions.get(session_id)
        view.release()
        if not any(s is session for _, s, _ in self._active):
            # Still-active view sessions keep their slot until the clock
            # passes their finish; _release_due no longer sees the view
            # and releases the reservation then.
            self.admission.release(
                session.reserved_bytes - session.spill_released_bytes
            )
        self.counters.inc("server.views_released")
        self._sample_queue()
        return session.to_dict()

    # -- crash recovery ----------------------------------------------------------

    def recover(self, root: str | None = None) -> dict:
        """Rebuild durable views from ``root`` (default: the wal_root).

        For every committed view directory: load the latest valid base
        checkpoint, re-materialize from it (the checkpoint carries the
        EDB, so recovery is self-contained), and replay the write-ahead
        log's unfolded tail through ``maintain()``. Views whose state is
        unrecoverable — unreadable manifest, no valid base, a log with no
        header, replay poisoning the view — are *quarantined* (directory
        renamed aside, structured ``view-unrecoverable`` failure in the
        report) so one corrupt view never blocks its healthy siblings.
        Recovery that fails for capacity reasons (the reservation no
        longer fits) leaves the directory intact for a later attempt.

        Returns ``{"root", "recovered": {dir: ...}, "failed": {dir:
        ...}}``; recovered views serve updates under their *new* session
        ids exactly like freshly materialized ones.
        """
        root = root if root is not None else self.config.wal_root
        if root is None:
            raise ValueError("recover() needs a wal root (config or argument)")
        root_path = Path(root)
        report: dict = {"root": str(root_path), "recovered": {}, "failed": {}}
        if not root_path.is_dir():
            return report
        for child in sorted(root_path.iterdir()):
            if not child.is_dir() or ".quarantine" in child.name:
                continue
            outcome = self._recover_view(child)
            bucket = "recovered" if outcome.pop("ok") else "failed"
            report[bucket][child.name] = outcome
        return report

    def _recover_view(self, directory: Path) -> dict:
        """Recover one durable view directory; never raises."""
        from repro.resilience.wal import MANIFEST_NAME

        if not (directory / MANIFEST_NAME).exists():
            # Crash mid-create: the manifest is written last, so this
            # directory was never durably committed — nothing was ever
            # acknowledged from it, and there is nothing to recover.
            return {"ok": False, "kind": "incomplete-creation"}
        try:
            manifest = ViewDurability.read_manifest(directory)
        except WalError as error:
            return self._quarantine_view(directory, "manifest-unreadable", error)
        base_dir = directory / BASE_DIR_NAME
        try:
            state = CheckpointManager.load(base_dir, counters=self.counters)
        except CheckpointError as error:
            return self._quarantine_view(directory, "base-unreadable", error)
        try:
            wal = WriteAheadLog.open(
                directory / WAL_NAME,
                counters=self.counters,
                injector=self._wal_injector,
                retry=self._wal_retry,
            )
        except WalError as error:
            return self._quarantine_view(directory, "wal-unreadable", error)
        edb = {
            key.partition(":")[2]: rows
            for key, rows in state.tables.items()
            if key.startswith("edb:")
        }
        if not edb:
            return self._quarantine_view(
                directory,
                "base-missing-edb",
                WalError(
                    f"base checkpoint under {base_dir} carries no EDB tables",
                    path=str(base_dir),
                ),
            )
        spec = ProgramSpec(
            name=str(manifest["program"]),
            title=str(manifest["program"]),
            domain="recovered",
            source=str(manifest["source"]),
            edb_schemas={
                name: tuple(cols)
                for name, cols in (manifest.get("edb_schemas") or {}).items()
            },
        )
        quota = int(manifest.get("reserved_bytes") or 0) or self.admission.default_quota
        if not self.admission.try_reserve(quota):
            # Capacity, not corruption: the directory stays for a later
            # recover() on a roomier service.
            return {
                "ok": False,
                "kind": "memory-pressure",
                "requested_bytes": quota,
                "reserved_bytes": self.admission.reserved_bytes,
            }
        now = self.clock.now()
        request = QueryRequest(
            program=spec,
            edb_data=edb,
            dataset=str(manifest.get("dataset", "recovered")),
            klass=str(manifest.get("klass", "")) or spec.name,
            memory_quota=quota,
            materialize=True,
        )
        session = self.sessions.create(request, now)
        session.reserved_bytes = quota
        session.recovered = True
        self.sessions.transition(session, SessionState.ADMITTED)
        session.admitted_at = now
        self.sessions.transition(session, SessionState.RUNNING)
        session.started_at = now
        config = replace(self._session_config(session), resume_from=str(base_dir))
        engine = RecStep(config, token_factory=self._token_factory(session))
        view = None
        rebuild_status = "fault"
        try:
            view = engine.materialize(spec, edb, dataset=request.dataset)
        except Exception as error:  # isolation boundary, as in _execute
            rebuild_status, session.failure = self._classify_failure(error)
        if view is None or view.status != "ready":
            if view is not None:
                rebuild_status = view.result.status
                session.failure = view.result.failure or session.failure
                view.release()
            self.admission.release(quota)
            session.finished_at = now
            terminal = _STATUS_TO_STATE.get(rebuild_status, SessionState.FAILED)
            self.sessions.transition(session, terminal)
            if terminal is SessionState.CANCELLED:
                # A cancelled rebuild (watchdog stall, deadline) is
                # transient, not corruption: quarantining would discard
                # durable state a later, calmer recover() could rebuild —
                # leave the directory in place.
                return {
                    "ok": False,
                    "kind": (session.failure or {}).get("kind", "cancelled"),
                    "transient": True,
                }
            return self._quarantine_view(
                directory,
                "rebuild-failed",
                session.failure or {"error": "RebuildFailed"},
            )
        rebuild_sim = max(0.0, view.result.sim_seconds - state.sim_seconds)
        replayed = skipped = 0
        replay_sim = 0.0
        last_applied = state.wal_seqno
        for record in wal.records:
            if record.seqno <= state.wal_seqno:
                # Already folded into the base this view resumed from
                # (a compaction raced the crash).
                skipped += 1
                self.counters.inc("recovery.batches_skipped")
                continue
            token = self._token_factory(session)(view.database.metrics.clock)
            result = view.maintain(record.inserts, record.deletes, token=token)
            if result.status == "ok":
                replayed += 1
                replay_sim += result.sim_seconds
                last_applied = record.seqno
                self.counters.inc("recovery.batches_replayed")
            elif view.status == "ready":
                # Validation-class failure: the view is still exact, the
                # record simply cannot apply (it shouldn't have been
                # logged; tolerate rather than lose the healthy view).
                continue
            else:
                view.release()
                self.admission.release(quota)
                session.failure = result.failure
                session.finished_at = now
                self.sessions.transition(session, SessionState.FAILED)
                return self._quarantine_view(
                    directory, "replay-poisoned", result.failure or {}
                )
        latency = rebuild_sim + replay_sim
        finish = now + latency
        session.result = view.result
        session.wal_seqno = last_applied
        session.finished_at = finish
        self.sessions.transition(session, SessionState.DONE)
        self._views[session.id] = view
        self._view_busy_until[session.id] = finish
        self._durability[session.id] = ViewDurability(
            directory,
            wal,
            CheckpointManager(base_dir),
            last_applied,
            counters=self.counters,
        )
        self.counters.inc("recovery.views_recovered")
        for klass in (session.klass, "all"):
            self.histograms.observe(f"recovery.latency.{klass}", latency)
        self._sample_queue()
        return {
            "ok": True,
            "session_id": session.id,
            "program": view.program,
            "records_replayed": replayed,
            "records_skipped": skipped,
            "latency_seconds": round(latency, 6),
        }

    def _quarantine_view(self, directory: Path, reason: str, error) -> dict:
        """Move an unrecoverable view directory aside, structured-ly."""
        target = directory.with_name(directory.name + ".quarantine")
        suffix = 0
        while target.exists():
            suffix += 1
            target = directory.with_name(
                f"{directory.name}.quarantine-{suffix}"
            )
        try:
            directory.rename(target)
        except OSError:
            target = directory  # rename failed; leave in place, still report
        self.counters.inc("recovery.views_quarantined")
        detail = (
            error
            if isinstance(error, dict)
            else {"error": type(error).__name__, "message": str(error)}
        )
        return {
            "ok": False,
            "error": "ViewUnrecoverable",
            "kind": "view-unrecoverable",
            "reason": reason,
            "quarantined_to": str(target),
            "detail": detail,
        }

    def status(self, session_id: str) -> dict:
        return self.sessions.get(session_id).to_dict()

    def report(self) -> dict:
        """Machine-readable service snapshot (also the shutdown report)."""
        return {
            "now": round(self.clock.now(), 6),
            "draining": self.draining,
            "session_counts": self.sessions.counts(),
            "spilled_bytes_total": sum(
                s.spilled_bytes for s in self.sessions.all()
            ),
            "sessions": [s.to_dict() for s in self.sessions.all()],
            "queue_depth": len(self._queue),
            "active": len(self._active),
            "admission": self.admission.to_dict(),
            "breakers": self.breakers.to_dict(),
            "counters": self.counters.snapshot(),
            "metrics": self.metrics_snapshot(),
        }


class _ProgressToken:
    """A passive token: mirrors heartbeats, never cancels."""

    cancelled = False

    def __init__(self, on_heartbeat) -> None:
        self._on_heartbeat = on_heartbeat

    def check(self, **context) -> None:
        self._on_heartbeat(None, context)

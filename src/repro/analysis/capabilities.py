"""Table 1: qualitative comparison of the engines.

Rather than hard-coding the paper's table, the matrix is *probed*: each
capability row is established by running a tiny witness program on each
engine and observing whether it succeeds — so the table stays truthful
to what the implementations in this repository actually do.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.harness import make_engine
from repro.programs import get_program

#: Tiny witness inputs reused by all probes.
_EDGES = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)

#: capability -> (program name, edb builder).
_PROBES = {
    "Mutual Recursion": ("CSPA", lambda: {"assign": _EDGES, "dereference": _EDGES}),
    "Non-Recursive Aggregation": ("GTC", lambda: {"arc": _EDGES}),
    "Recursive Aggregation": ("CC", lambda: {"arc": _EDGES}),
    "Stratified Negation": ("NTC", lambda: {"arc": _EDGES}),
}

#: Static facts (from the papers, not probe-able in-process).
_STATIC_ROWS = {
    "Scale-Up": {
        "RecStep": "yes", "Souffle": "yes", "BigDatalog": "yes",
        "Graspan": "yes", "bddbddb": "no",
    },
    "Scale-Out": {
        "RecStep": "no", "Souffle": "no", "BigDatalog": "yes",
        "Graspan": "no", "bddbddb": "no",
    },
    "Hyperparameter Tuning Required": {
        "RecStep": "no", "Souffle": "no", "BigDatalog": "yes (moderate)",
        "Graspan": "yes (lightweight)", "bddbddb": "yes (complex)",
    },
}

ENGINES = ["RecStep", "Souffle", "BigDatalog", "Graspan", "bddbddb"]


def capability_matrix() -> dict[str, dict[str, str]]:
    """Probe every engine for every capability; returns row -> engine -> cell."""
    matrix: dict[str, dict[str, str]] = {}
    for capability, (program_name, edb_builder) in _PROBES.items():
        row: dict[str, str] = {}
        for engine_name in ENGINES:
            engine = make_engine(engine_name, enforce_budgets=False)
            result = engine.evaluate(
                get_program(program_name), edb_builder(), dataset="probe"
            )
            row[engine_name] = "yes" if result.status == "ok" else "no"
        matrix[capability] = row
    matrix.update(_STATIC_ROWS)
    return matrix


def format_capability_table(matrix: dict[str, dict[str, str]]) -> str:
    header = f"{'capability':<32}" + "".join(f"{e:>18}" for e in ENGINES)
    lines = [header, "-" * len(header)]
    for capability, row in matrix.items():
        cells = "".join(f"{row.get(e, '-'):>18}" for e in ENGINES)
        lines.append(f"{capability:<32}{cells}")
    return "\n".join(lines)

"""Shared experiment harness.

Every bench goes through ``run_workload(engine, program, dataset)``:
the harness generates the dataset, adapts the EDB to the program's
schema (source vertices for REACH/SSSP, weights for SSSP), instantiates
the engine with the experiment's budgets, and returns the
EvaluationResult. Failures surface as result statuses ("oom",
"timeout", "unsupported"), never exceptions — matching how the paper
reports them (missing bars, "Out of Memory" labels).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.baselines import (
    BddbddbLike,
    BigDatalogLike,
    GraspanLike,
    NaiveEngine,
    SouffleLike,
)
from repro.common.records import EvaluationResult
from repro.common.rng import derive_seed, make_rng
from repro.core import RecStep, RecStepConfig
from repro.datasets import load_dataset
from repro.datasets.graphs import with_weights
from repro.engine.metrics import DEFAULT_MEMORY_BUDGET, DEFAULT_TIME_BUDGET
from repro.programs import ProgramSpec, get_program

#: The scale-up engines of Figure 10/12/13/15 plus the oracle.
ENGINE_FACTORIES: dict[str, Callable[..., object]] = {
    "RecStep": lambda **kw: RecStep(RecStepConfig(**kw)),
    "Souffle": lambda **kw: SouffleLike(**kw),
    "BigDatalog": lambda **kw: BigDatalogLike(**kw),
    "Distributed-BigDatalog": lambda **kw: BigDatalogLike(distributed=True, **kw),
    "Graspan": lambda **kw: GraspanLike(**kw),
    "bddbddb": lambda **kw: BddbddbLike(**kw),
    "Naive": lambda **kw: NaiveEngine(**kw),
}


def make_engine(
    name: str,
    threads: int = 20,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    time_budget: float = DEFAULT_TIME_BUDGET,
    enforce_budgets: bool = True,
    **extra,
):
    """Instantiate an engine by its paper name."""
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {sorted(ENGINE_FACTORIES)}"
        ) from None
    return factory(
        threads=threads,
        memory_budget=memory_budget,
        time_budget=time_budget,
        enforce_budgets=enforce_budgets,
        **extra,
    )


def pick_sources(edges: np.ndarray, count: int, seed: int) -> np.ndarray:
    """Random source vertices with outgoing edges (REACH/SSSP, Section 6.3)."""
    rng = make_rng(derive_seed(seed, "sources"))
    candidates = np.unique(edges[:, 0])
    if candidates.size == 0:
        return np.zeros((1, 1), dtype=np.int64)
    chosen = rng.choice(candidates, size=min(count, candidates.size), replace=False)
    return chosen.reshape(-1, 1).astype(np.int64)


def prepare_edb(
    program: ProgramSpec,
    dataset: str,
    seed: int = 0,
    source: int | None = None,
) -> dict[str, np.ndarray]:
    """Generate ``dataset`` and adapt it to ``program``'s EDB schema."""
    edb = dict(load_dataset(dataset, seed=seed))
    if program.name == "SSSP" and "arc" in edb and edb["arc"].shape[1] == 2:
        edb["arc"] = with_weights(edb["arc"], make_rng(derive_seed(seed, "weights")))
    if "id" in program.edb_schemas and "id" not in edb:
        if source is not None:
            edb["id"] = np.asarray([[source]], dtype=np.int64)
        else:
            edb["id"] = pick_sources(edb["arc"], count=1, seed=seed)[:1]
    return edb


def run_workload(
    engine_name: str,
    program_name: str,
    dataset: str,
    threads: int = 20,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    time_budget: float = DEFAULT_TIME_BUDGET,
    seed: int = 0,
    source: int | None = None,
    enforce_budgets: bool = True,
    **engine_extra,
) -> EvaluationResult:
    """Run one (engine, program, dataset) cell of a paper figure."""
    program = get_program(program_name)
    edb = prepare_edb(program, dataset, seed=seed, source=source)
    engine = make_engine(
        engine_name,
        threads=threads,
        memory_budget=memory_budget,
        time_budget=time_budget,
        enforce_budgets=enforce_budgets,
        **engine_extra,
    )
    return engine.evaluate(program, edb, dataset=dataset)


def format_status(result: EvaluationResult) -> str:
    """Paper-style cell text: a time, 'Out of Memory', or '>budget'."""
    if result.status == "ok":
        return f"{result.sim_seconds:.1f}s"
    if result.status == "oom":
        return "Out of Memory"
    if result.status == "timeout":
        return "Timeout"
    return "n/a (unsupported)"


def format_comparison_table(
    title: str,
    rows: list[tuple[str, dict[str, EvaluationResult]]],
    engines: list[str],
) -> str:
    """Render a dataset x engine grid the way the paper's figures label bars."""
    widths = [max(12, *(len(dataset) for dataset, _ in rows))]
    header = f"{'dataset':<{widths[0]}}" + "".join(f"{e:>24}" for e in engines)
    lines = [title, header, "-" * len(header)]
    for dataset, results in rows:
        cells = "".join(
            f"{format_status(results[e]) if e in results else '-':>24}" for e in engines
        )
        lines.append(f"{dataset:<{widths[0]}}{cells}")
    return "\n".join(lines)

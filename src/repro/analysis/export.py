"""Export evaluation results and traces to CSV for external plotting.

The bench harness renders paper-style text tables; this module gives
downstream users machine-readable output (one row per run; one row per
trace sample) without pulling in a plotting dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.common.records import EvaluationResult

RESULT_FIELDS = [
    "engine",
    "program",
    "dataset",
    "status",
    "sim_seconds",
    "iterations",
    "peak_memory_bytes",
]


def results_to_csv(results: list[EvaluationResult]) -> str:
    """One CSV row per evaluation run."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RESULT_FIELDS)
    writer.writeheader()
    for result in results:
        writer.writerow(
            {
                "engine": result.engine,
                "program": result.program,
                "dataset": result.dataset,
                "status": result.status,
                "sim_seconds": f"{result.sim_seconds:.6f}",
                "iterations": result.iterations,
                "peak_memory_bytes": result.peak_memory_bytes,
            }
        )
    return buffer.getvalue()


def trace_to_csv(result: EvaluationResult, which: str = "memory") -> str:
    """A (time, value) CSV of one run's memory or CPU trace."""
    trace = result.memory_trace if which == "memory" else result.cpu_trace
    if trace is None:
        raise ValueError(f"result has no {which} trace")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["sim_seconds", which])
    for sample in trace.samples:
        writer.writerow([f"{sample.time:.6f}", f"{sample.value:.6f}"])
    return buffer.getvalue()


def write_results_csv(results: list[EvaluationResult], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(results_to_csv(results))
    return path

"""CPU efficiency (Appendix B / Table 4).

``ce = 1 / (t * n)`` where ``t`` is the runtime of system ``s`` on
workload ``w`` and ``n`` the number of CPU cores it was given: a system
that needs many cores to go fast scores lower than one achieving the
same time on fewer.
"""

from __future__ import annotations

from repro.common.records import EvaluationResult

#: Cores each system uses in the paper's Table 4 runs.
CORES_USED = {
    "RecStep": 20,
    "Souffle": 20,
    "BigDatalog": 20,
    "Distributed-BigDatalog": 120,
    "Graspan": 20,
    "bddbddb": 1,
    "Naive": 20,
}


def cpu_efficiency(result: EvaluationResult, cores: int | None = None) -> float | None:
    """Appendix B's metric; ``None`` for failed or unsupported runs."""
    if result.status != "ok" or result.sim_seconds <= 0:
        return None
    n = cores if cores is not None else CORES_USED.get(result.engine, 20)
    return 1.0 / (result.sim_seconds * n)


def format_efficiency(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.2e}"

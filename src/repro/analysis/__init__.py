"""Experiment harness and paper-metric utilities."""

from repro.analysis.capabilities import capability_matrix, format_capability_table
from repro.analysis.cpu_efficiency import cpu_efficiency
from repro.analysis.harness import (
    ENGINE_FACTORIES,
    make_engine,
    prepare_edb,
    run_workload,
)

__all__ = [
    "capability_matrix",
    "format_capability_table",
    "cpu_efficiency",
    "ENGINE_FACTORIES",
    "make_engine",
    "prepare_edb",
    "run_workload",
]

"""Setuptools entry point.

A classic setup.py (rather than PEP 517 metadata) so editable installs
work in fully offline environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RecStep reproduction: scaling-up in-memory Datalog processing on a "
        "parallel relational backend (VLDB 2019)"
    ),
    author="repro authors",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)

"""Unit tests for the physical query pipeline (planner decisions, frames)."""

import numpy as np
import pytest

from repro.common.errors import OutOfMemoryError, PlanError
from repro.engine.database import Database
from repro.engine.expressions import Frame, evaluate, resolve_column
from repro.engine.optimizer import (
    BuildSideDecision,
    choose_build_side,
    join_cost_estimate,
    order_tables_by_estimate,
)
from repro.sql import ast


class TestOptimizer:
    def test_build_on_smaller_side(self):
        assert choose_build_side(10, 100).build_left
        assert not choose_build_side(100, 10).build_left

    def test_tie_prefers_left(self):
        assert choose_build_side(10, 10).build_left

    def test_join_cost_monotone_in_build(self):
        assert join_cost_estimate(100, 10) > join_cost_estimate(10, 100)

    def test_order_by_estimate_stable(self):
        order = order_tables_by_estimate({"b": 5, "a": 5, "c": 1})
        assert order == ["c", "a", "b"]


class TestFrame:
    def test_from_table(self):
        data = np.array([[1, 2], [3, 4]], dtype=np.int64)
        frame = Frame.from_table("t", data, ("x", "y"))
        assert len(frame) == 2
        assert frame.column("t", "y").tolist() == [2, 4]

    def test_select_mask(self):
        data = np.array([[1, 2], [3, 4]], dtype=np.int64)
        frame = Frame.from_table("t", data, ("x", "y"))
        filtered = frame.select(np.array([False, True]))
        assert filtered.column("t", "x").tolist() == [3]

    def test_unknown_alias_rejected(self):
        frame = Frame.from_table("t", np.zeros((1, 1), np.int64), ("x",))
        with pytest.raises(PlanError):
            frame.column("nope", "x")

    def test_unknown_column_rejected(self):
        frame = Frame.from_table("t", np.zeros((1, 1), np.int64), ("x",))
        with pytest.raises(PlanError):
            frame.column("t", "nope")

    def test_resolve_unqualified(self):
        frame = Frame.from_table("t", np.zeros((1, 2), np.int64), ("x", "y"))
        assert resolve_column(ast.ColumnRef(None, "y"), frame) == ("t", "y")

    def test_evaluate_arithmetic(self):
        data = np.array([[2, 3]], dtype=np.int64)
        frame = Frame.from_table("t", data, ("x", "y"))
        expr = ast.BinaryOp("+", ast.ColumnRef("t", "x"),
                            ast.BinaryOp("*", ast.ColumnRef("t", "y"), ast.Literal(10)))
        assert evaluate(expr, frame).tolist() == [32]


class TestPlannerBehaviour:
    """The OOF-relevant behaviour: decisions follow statistics."""

    def test_stale_statistics_change_costs(self):
        """A join planned with stale (small) stats after *appends* builds
        on the wrong side, charging more simulated time. Appends bump the
        table version but not its epoch, so the estimate legitimately
        stays stale until the next ANALYZE — the OOF failure mode."""
        def run(analyze_after_growth: bool) -> float:
            db = Database(enforce_budgets=False, join_cache=False)
            big = np.arange(40_000, dtype=np.int64).reshape(-1, 2)
            db.load_table("arc", ("x", "y"), big)
            db.load_table("delta", ("x", "y"), np.array([[0, 1]], dtype=np.int64))
            db.analyze("arc")
            db.analyze("delta")
            # The delta grows dramatically without re-analysis: the planner
            # still believes it holds one row and builds the hash on it.
            db.append_rows("delta", big)
            if analyze_after_growth:
                db.analyze("delta")
            before = db.sim_seconds
            db.execute(
                "SELECT d.x AS x, a.y AS y FROM delta d, arc a WHERE d.y = a.x"
            )
            return db.sim_seconds - before

        fresh = run(analyze_after_growth=True)
        stale = run(analyze_after_growth=False)
        assert stale != fresh

    def test_rewrite_invalidates_estimates(self):
        """Rewrites (replace_contents) bump the table epoch: the planner
        falls back to live row counts instead of trusting statistics
        recorded against the pre-rewrite contents, so the shrunken delta
        is planned identically with or without a fresh ANALYZE."""
        def run(analyze_after_shrink: bool) -> float:
            db = Database(enforce_budgets=False, join_cache=False)
            big = np.arange(40_000, dtype=np.int64).reshape(-1, 2)
            db.load_table("arc", ("x", "y"), big)
            db.load_table("delta", ("x", "y"), big)
            db.analyze("arc")
            db.analyze("delta")
            # The delta shrinks dramatically (late-iteration behaviour).
            db.replace_rows("delta", np.array([[0, 1]], dtype=np.int64))
            if analyze_after_shrink:
                db.analyze("delta")
            before = db.sim_seconds
            db.execute(
                "SELECT d.x AS x, a.y AS y FROM delta d, arc a WHERE d.y = a.x"
            )
            return db.sim_seconds - before

        fresh = run(analyze_after_shrink=True)
        stale = run(analyze_after_shrink=False)
        assert stale == pytest.approx(fresh)

    def test_join_order_starts_from_estimated_smallest(self):
        db = Database(enforce_budgets=False)
        db.load_table("small", ("x",), np.array([[1]], dtype=np.int64))
        db.load_table("large", ("x", "y"), np.arange(2000).reshape(-1, 2))
        db.analyze("small")
        db.analyze("large")
        out = db.execute(
            "SELECT s.x AS x, l.y AS y FROM large l, small s WHERE s.x = l.x"
        )
        assert out.shape[0] >= 0  # plan executes; order covered by explain tests

    def test_oversized_join_rejected_before_materialization(self):
        db = Database(enforce_budgets=False)
        db.metrics.enforce_budgets = True
        db.metrics.memory_budget = 10_000_000
        hot = np.zeros((30_000, 2), dtype=np.int64)  # all-equal keys
        db.load_table("a", ("x", "y"), hot)
        db.load_table("b", ("x", "y"), hot)
        db.analyze("a")
        db.analyze("b")
        with pytest.raises(OutOfMemoryError):
            # 30k x 30k = 900M matches: must die in the reservation, fast.
            db.execute("SELECT a.y AS y, b.y AS z FROM a, b WHERE a.x = b.x")


class TestQueryEdgeCases:
    @pytest.fixture
    def db(self):
        database = Database(enforce_budgets=False)
        database.execute("CREATE TABLE e (x INT, y INT)")
        database.execute("INSERT INTO e VALUES (1,2),(2,3)")
        return database

    def test_constant_only_projection(self, db):
        out = db.execute("SELECT 7 AS c FROM e")
        assert out.tolist() == [[7], [7]]

    def test_three_way_self_join(self, db):
        out = db.execute(
            "SELECT a.x AS x, c.y AS y FROM e a, e b, e c "
            "WHERE a.y = b.x AND b.y = c.x"
        )
        assert out.shape[0] == 0  # no path of length 3 in a 2-edge chain

    def test_join_on_expression(self, db):
        out = db.execute(
            "SELECT a.x AS x, b.y AS y FROM e a, e b WHERE a.y + 1 = b.x + 1"
        )
        # Same as a.y = b.x.
        assert sorted(map(tuple, out)) == [(1, 3)]

    def test_aggregate_without_group_on_empty(self, db):
        db.execute("DELETE FROM e")
        out = db.execute("SELECT COUNT(x) AS c FROM e GROUP BY x")
        assert out.shape[0] == 0

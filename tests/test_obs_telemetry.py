"""Histograms, resource timelines, and the service telemetry surface.

The contracts the trajectory harness and the regression gate stand on:

* log2-bucket histogram merges are exact and associative;
* percentiles are deterministic — same observations, same p50/p95/p99,
  regardless of insertion order, including under an armed chaos seed;
* the interpreter samples the resource timeline exactly once per
  semi-naive iteration boundary;
* ``QueryService.metrics_snapshot()`` has a pinned (golden) schema;
* disabled observability is a true null path: zero modeled overhead,
  identical fixpoints, empty snapshots.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.harness import prepare_edb, run_workload
from repro.core.config import RecStepConfig
from repro.core.recstep import RecStep
from repro.obs.export import timeline_counter_events, to_chrome_trace
from repro.obs.histogram import (
    MAX_EXPONENT,
    MIN_EXPONENT,
    NULL_HISTOGRAMS,
    UNDERFLOW,
    HistogramSet,
    LogHistogram,
    bucket_bounds,
    bucket_exponent,
)
from repro.obs.timeline import NULL_TIMELINE, ResourceTimeline
from repro.programs import get_program
from repro.server import QueryRequest, QueryService, ServerConfig


# ---------------------------------------------------------------------------
# LogHistogram: buckets, merges, percentiles
# ---------------------------------------------------------------------------


def test_bucket_exponent_exact_at_boundaries():
    assert bucket_exponent(1.0) == 0
    assert bucket_exponent(2.0) == 1
    assert bucket_exponent(1.999999) == 0
    assert bucket_exponent(0.5) == -1
    assert bucket_exponent(0.0) == UNDERFLOW
    assert bucket_exponent(-3.0) == UNDERFLOW
    assert bucket_exponent(2.0**MIN_EXPONENT / 4) == UNDERFLOW
    assert bucket_exponent(2.0 ** (MAX_EXPONENT + 5)) == MAX_EXPONENT


def test_bucket_bounds_cover_value():
    for value in (1e-6, 0.037, 1.0, 17.5, 4096.0):
        lower, upper = bucket_bounds(bucket_exponent(value))
        assert lower <= value < upper


def test_merge_is_exact_and_associative():
    # Integer-valued observations so even the float sum is exact.
    rng = random.Random(7)
    samples = [[float(rng.randrange(1, 1 << 20)) for _ in range(200)] for _ in range(3)]
    parts = []
    for chunk in samples:
        h = LogHistogram()
        for v in chunk:
            h.observe(v)
        parts.append(h)
    a, b, c = parts
    left = a.merged(b).merged(c)
    right = a.merged(b.merged(c))
    direct = LogHistogram()
    for chunk in samples:
        for v in chunk:
            direct.observe(v)
    for merged in (left, right):
        assert merged.to_dict() == direct.to_dict()


def test_percentiles_deterministic_under_shuffle():
    values = [float(v) for v in range(1, 501)]
    ordered = LogHistogram()
    for v in values:
        ordered.observe(v)
    shuffled = LogHistogram()
    rng = random.Random(99)
    mixed = list(values)
    rng.shuffle(mixed)
    for v in mixed:
        shuffled.observe(v)
    assert ordered.to_dict() == shuffled.to_dict()


def test_percentile_extremes_and_clamping():
    h = LogHistogram()
    for v in (3.0, 5.0, 7.0):
        h.observe(v)
    assert h.percentile(0.0) == 3.0
    assert h.percentile(1.0) == 7.0
    assert 3.0 <= h.percentile(0.5) <= 7.0
    empty = LogHistogram()
    assert empty.percentile(0.5) == 0.0
    assert empty.to_dict()["count"] == 0


def test_histogram_set_snapshot_sorted_and_mergeable():
    a = HistogramSet()
    a.observe("x", 1.0)
    a.observe("y", 2.0)
    b = HistogramSet()
    b.observe("x", 4.0)
    a.merge_from(b)
    snap = a.snapshot()
    assert list(snap) == ["x", "y"]
    assert snap["x"]["count"] == 2
    assert NULL_HISTOGRAMS.snapshot() == {}
    NULL_HISTOGRAMS.observe("x", 1.0)  # discarded
    assert NULL_HISTOGRAMS.snapshot() == {}


# ---------------------------------------------------------------------------
# ResourceTimeline
# ---------------------------------------------------------------------------


def test_timeline_series_and_peak():
    t = ResourceTimeline()
    t.sample(0.0, bytes=10, depth=1)
    t.sample(1.5, bytes=30)
    t.sample(2.0, bytes=20, depth=3)
    assert len(t) == 3
    assert t.series("bytes") == [(0.0, 10), (1.5, 30), (2.0, 20)]
    assert t.series("depth") == [(0.0, 1), (2.0, 3)]
    assert t.peak("bytes") == 30
    assert t.peak("missing") == 0.0
    records = t.to_records()
    assert records[0] == {"time": 0.0, "bytes": 10, "depth": 1}
    NULL_TIMELINE.sample(0.0, bytes=1)
    assert len(NULL_TIMELINE) == 0


def test_timeline_counter_events_tracks():
    records = [
        {"time": 1.0, "resident_bytes": 100, "transient_bytes": 20, "queue_depth": 3},
        {"time": 2.0, "degradation_level": 1},
    ]
    events = timeline_counter_events(records)
    assert all(e["ph"] == "C" for e in events)
    memory = [e for e in events if e["name"] == "memory"]
    assert memory[0]["args"] == {"resident_bytes": 100, "transient_bytes": 20}
    assert memory[0]["ts"] == 1.0e6
    names = {e["name"] for e in events}
    assert {"memory", "queue_depth", "degradation_level"} <= names


# ---------------------------------------------------------------------------
# Engine wiring: iteration-boundary sampling, zero-overhead null path
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def profiled_run():
    return run_workload("RecStep", "AA", "andersen-2", profile=True)


def test_timeline_samples_once_per_iteration(profiled_run):
    report = profiled_run.profile
    # One sample per semi-naive iteration boundary, each stamped with
    # its (stratum, iteration) coordinates and the memory vector.
    assert len(report.timeline) == profiled_run.iterations
    iteration_marks = [(r["stratum"], r["iteration"]) for r in report.timeline]
    assert len(set(iteration_marks)) == len(iteration_marks)
    for record in report.timeline:
        assert {"time", "resident_bytes", "transient_bytes", "degradation_level"} <= set(
            record
        )
    hist = report.histograms["iteration.seconds"]
    assert hist["count"] == profiled_run.iterations


def test_statement_latency_histograms_populated(profiled_run):
    report = profiled_run.profile
    latency_names = [n for n in report.histograms if n.startswith("statement.latency.")]
    assert latency_names
    for name in latency_names:
        h = report.histograms[name]
        assert h["count"] > 0
        assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"]


def test_pbme_path_reports_telemetry():
    result = run_workload("RecStep", "TC", "G500", profile=True)
    report = result.profile
    assert report.histograms["pbme.seconds"]["count"] >= 1
    assert report.timeline, "PBME stratum must leave a timeline sample"


def test_chrome_trace_includes_counter_tracks(profiled_run):
    trace = to_chrome_trace(profiled_run.profile)
    counter_events = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counter_events
    assert trace["otherData"]["histograms"] == profiled_run.profile.histograms


def test_profiling_off_is_null_path_with_identical_fixpoint(profiled_run):
    plain = run_workload("RecStep", "AA", "andersen-2", profile=False)
    engine = RecStep(RecStepConfig())
    # Same modeled outcome with observability off...
    assert plain.sim_seconds == profiled_run.sim_seconds
    assert plain.sizes() == profiled_run.sizes()
    assert plain.peak_memory_bytes == profiled_run.peak_memory_bytes
    assert plain.peak_transient_bytes == profiled_run.peak_transient_bytes
    # ...and a genuinely inert instrumentation surface.
    assert plain.profile is None
    program = get_program("AA")
    edb = prepare_edb(program, "andersen-2", seed=0)
    engine.evaluate(program, edb, dataset="andersen-2")
    db = engine.last_database
    assert not db.profiler.enabled
    assert db.profiler.histograms is NULL_HISTOGRAMS
    assert db.profiler.timeline is NULL_TIMELINE
    db.sample_timeline()
    db.note_iteration(0, 0, 10, 0.1)
    assert len(db.profiler.timeline) == 0
    assert db.profiler.histograms.snapshot() == {}


def test_chaos_seed_percentiles_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_SEED", "1234")
    runs = []
    for _ in range(2):
        result = run_workload("RecStep", "AA", "andersen-2", profile=True)
        snap = result.profile.histograms
        runs.append(
            {
                name: (snap[name]["count"], snap[name]["p50"], snap[name]["p95"], snap[name]["p99"])
                for name in snap
            }
        )
    assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Service telemetry: golden snapshot schema, determinism, off switch
# ---------------------------------------------------------------------------

#: The pinned metrics_snapshot() shape. Growing it is fine (add the key
#: here and bump METRICS_SCHEMA_VERSION); silently changing it is not.
GOLDEN_SNAPSHOT_KEYS = {
    "schema_version",
    "now",
    "telemetry",
    "histograms",
    "queue_timeline",
    "counters",
    "session_counts",
    "admission",
    "wal",
}

GOLDEN_QUEUE_TIMELINE_KEYS = {
    "samples",
    "max_queue_depth",
    "max_active",
    "max_reserved_bytes",
    "max_spilled_bytes",
    "series",
}

GOLDEN_HISTOGRAM_KEYS = {
    "count",
    "sum",
    "mean",
    "min",
    "max",
    "p50",
    "p95",
    "p99",
    "buckets",
}


def _small_service_run(telemetry: bool = True) -> QueryService:
    service = QueryService(
        ServerConfig(max_concurrent=2, queue_limit=8, telemetry=telemetry)
    )
    program = get_program("TC")
    for i in range(3):
        edb = prepare_edb(program, "G500", seed=i)
        response = service.submit(
            QueryRequest(program=program, edb_data=edb, dataset="G500")
        )
        assert response["accepted"]
    service.flush()
    return service


def test_metrics_snapshot_golden_schema():
    service = _small_service_run()
    snapshot = service.metrics_snapshot()
    assert set(snapshot) == GOLDEN_SNAPSHOT_KEYS
    assert snapshot["schema_version"] == QueryService.METRICS_SCHEMA_VERSION
    assert set(snapshot["queue_timeline"]) == GOLDEN_QUEUE_TIMELINE_KEYS
    for name, record in snapshot["histograms"].items():
        assert set(record) == GOLDEN_HISTOGRAM_KEYS, name
    # Per-class + the "all" rollup for each of the three families.
    assert {"latency.all", "queue_wait.all", "rows_served.all"} <= set(
        snapshot["histograms"]
    )
    assert snapshot["histograms"]["latency.all"]["count"] == 3
    # The shutdown report embeds the same export.
    assert service.report()["metrics"]["histograms"] == snapshot["histograms"]


def test_metrics_snapshot_deterministic():
    a = _small_service_run().metrics_snapshot()
    b = _small_service_run().metrics_snapshot()
    assert a == b


def test_telemetry_off_null_path():
    service = _small_service_run(telemetry=False)
    snapshot = service.metrics_snapshot()
    assert snapshot["telemetry"] is False
    assert snapshot["histograms"] == {}
    assert snapshot["queue_timeline"]["samples"] == 0
    assert snapshot["queue_timeline"]["series"] == []
    # Telemetry must not perturb the service simulation itself.
    with_telemetry = _small_service_run(telemetry=True)
    assert service.metrics_snapshot()["now"] == with_telemetry.metrics_snapshot()["now"]
    assert service.counters.snapshot() == with_telemetry.counters.snapshot()

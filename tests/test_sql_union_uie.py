"""UIE at the SQL layer: UNION ALL queries vs per-arm statements."""

import numpy as np
import pytest

from repro.engine.database import Database


def make_db() -> Database:
    db = Database(enforce_budgets=False)
    db.load_table("e", ["x", "y"], np.array([[1, 2], [2, 3], [3, 4]]))
    db.create_table("out", ["x", "y"])
    return db

ARMS = [
    "SELECT a.x AS x, a.y AS y FROM e a",
    "SELECT a.y AS x, a.x AS y FROM e a",
    "SELECT a.x AS x, b.y AS y FROM e a, e b WHERE a.y = b.x",
]


class TestUnionAllSemantics:
    def test_union_equals_sum_of_arms(self):
        db = make_db()
        union_rows = db.execute(" UNION ALL ".join(ARMS))
        arm_rows = [db.execute(arm) for arm in ARMS]
        assert union_rows.shape[0] == sum(a.shape[0] for a in arm_rows)
        union_bag = sorted(map(tuple, union_rows))
        arms_bag = sorted(tuple(r) for rows in arm_rows for r in rows)
        assert union_bag == arms_bag

    def test_single_union_query_cheaper_than_three(self):
        """The UIE effect at the engine level: one dispatch, not three."""
        db_union = make_db()
        before = db_union.sim_seconds
        db_union.execute("INSERT INTO out " + " UNION ALL ".join(ARMS))
        union_cost = db_union.sim_seconds - before

        db_split = make_db()
        before = db_split.sim_seconds
        for arm in ARMS:
            db_split.execute(f"INSERT INTO out {arm}")
        split_cost = db_split.sim_seconds - before

        assert union_cost < split_cost
        assert db_union.table_size("out") == db_split.table_size("out")

    def test_union_arms_can_have_different_shapes(self):
        db = make_db()
        rows = db.execute(
            "SELECT a.x AS x, 0 AS y FROM e a UNION ALL "
            "SELECT a.x AS x, COUNT(a.y) AS y FROM e a GROUP BY a.x"
        )
        assert rows.shape[1] == 2
        assert rows.shape[0] == 6  # 3 plain + 3 groups

"""Tests for the .datalog CLI frontend and the EXPLAIN facility."""

import numpy as np
import pytest

from repro.cli import main, parse_datalog_file, run_datalog_file
from repro.common.errors import DatalogError
from repro.datasets.io import load_relation, save_relation
from repro.engine.database import Database
from repro.engine.explain import explain_sql


@pytest.fixture
def datalog_project(tmp_path):
    """A .datalog file with its input relation on disk."""
    edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
    save_relation(tmp_path / "arc.tsv", edges)
    program = tmp_path / "tc.datalog"
    program.write_text(
        """
.input arc arc.tsv
.output tc tc_out.tsv

tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
"""
    )
    return program


class TestDatalogFile:
    def test_parse_directives(self, datalog_project):
        parsed = parse_datalog_file(datalog_project)
        assert set(parsed.inputs) == {"arc"}
        assert set(parsed.outputs) == {"tc"}
        assert "tc(x, y)" in parsed.source

    def test_malformed_directive(self, tmp_path):
        bad = tmp_path / "bad.datalog"
        bad.write_text(".input arc\np(x) :- arc(x, y).\n")
        with pytest.raises(DatalogError):
            parse_datalog_file(bad)

    def test_run_writes_outputs(self, datalog_project):
        result = run_datalog_file(datalog_project)
        assert result.status == "ok"
        rows = load_relation(datalog_project.parent / "tc_out.tsv", arity=2)
        assert {tuple(r) for r in rows.tolist()} == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        }

    def test_missing_input_rejected(self, tmp_path):
        program = tmp_path / "p.datalog"
        program.write_text("p(x) :- q(x).\n")
        with pytest.raises(DatalogError):
            run_datalog_file(program)

    def test_unknown_output_rejected(self, tmp_path):
        save_relation(tmp_path / "q.tsv", np.array([[1]]))
        program = tmp_path / "p.datalog"
        program.write_text(".input q q.tsv\n.output nope out.tsv\np(x) :- q(x).\n")
        with pytest.raises(DatalogError):
            run_datalog_file(program)

    def test_alternate_engine(self, datalog_project):
        result = run_datalog_file(datalog_project, engine_name="Souffle")
        assert result.status == "ok"
        assert result.engine == "Souffle"

    def test_main_entry_point(self, datalog_project, capsys):
        code = main([str(datalog_project)])
        assert code == 0
        output = capsys.readouterr().out
        assert "status:       ok" in output
        assert "|tc| = 6" in output


class TestExplain:
    @pytest.fixture
    def db(self):
        database = Database(enforce_budgets=False)
        database.execute("CREATE TABLE arc (x INT, y INT)")
        database.execute("INSERT INTO arc VALUES (1,2),(2,3)")
        database.execute("CREATE TABLE tc_delta (x INT, y INT)")
        database.execute("INSERT INTO tc_delta VALUES (1,2)")
        database.analyze("arc")
        database.analyze("tc_delta")
        return database

    def test_explain_scan_and_join(self, db):
        plan = explain_sql(
            "SELECT d.x AS x, a.y AS y FROM tc_delta d, arc a WHERE d.y = a.x",
            db.catalog,
        )
        assert "scan tc_delta AS d (est. 1 rows)" in plan
        assert "hash join arc AS a" in plan
        assert "[build:" in plan
        assert "project" in plan

    def test_explain_reflects_statistics(self, db):
        # The smaller table (by stats) is scanned first and built on.
        plan = explain_sql(
            "SELECT d.x AS x FROM tc_delta d, arc a WHERE d.y = a.x", db.catalog
        )
        assert plan.splitlines()[0].startswith("scan tc_delta")
        db.execute("DELETE FROM arc")
        db.analyze("arc")
        plan = explain_sql(
            "SELECT d.x AS x FROM tc_delta d, arc a WHERE d.y = a.x", db.catalog
        )
        assert plan.splitlines()[0].startswith("scan arc")

    def test_explain_aggregation_and_filter(self, db):
        plan = explain_sql(
            "SELECT a.x AS x, COUNT(a.y) AS c FROM arc a WHERE a.y > 1 GROUP BY a.x",
            db.catalog,
        )
        assert "filter" in plan
        assert "aggregate GROUP BY a.x" in plan

    def test_explain_not_exists(self, db):
        plan = explain_sql(
            "SELECT a.x AS x FROM arc a WHERE NOT EXISTS "
            "(SELECT 1 FROM tc_delta WHERE tc_delta.x = a.x)",
            db.catalog,
        )
        assert "anti join (NOT EXISTS over tc_delta)" in plan

    def test_explain_union_all(self, db):
        plan = explain_sql(
            "SELECT a.x AS v FROM arc a UNION ALL SELECT a.y AS v FROM arc a",
            db.catalog,
        )
        assert "UNION ALL arm 0:" in plan
        assert "UNION ALL arm 1:" in plan

    def test_explain_insert_select(self, db):
        plan = explain_sql(
            "INSERT INTO tc_delta SELECT a.x AS x, a.y AS y FROM arc a", db.catalog
        )
        assert plan.startswith("INSERT INTO tc_delta")

    def test_explain_non_query_rejected(self, db):
        with pytest.raises(ValueError):
            explain_sql("DROP TABLE arc", db.catalog)


class TestExplainAnalyze:
    @pytest.fixture
    def db(self):
        database = Database(enforce_budgets=False)
        database.execute("CREATE TABLE arc (x INT, y INT)")
        database.execute("INSERT INTO arc VALUES (1,2),(2,3),(3,4)")
        database.execute("CREATE TABLE tc_delta (x INT, y INT)")
        database.execute("INSERT INTO tc_delta VALUES (1,2),(2,3)")
        database.execute("CREATE TABLE tc_mdelta (x INT, y INT)")
        database.analyze("arc")
        database.analyze("tc_delta")
        return database

    def test_select_reports_actual_rows(self, db):
        text = db.explain_analyze(
            "SELECT d.x AS x, a.y AS y FROM tc_delta d, arc a WHERE d.y = a.x"
        )
        # Scan and join lines carry the executed row counts.
        assert "scan tc_delta AS d (est. 2 rows)  (actual: 2 rows" in text
        assert "hash join arc AS a" in text and "(actual: 2 rows" in text
        assert text.splitlines()[-1].startswith("actual: 2 rows in ")
        assert "simulated seconds" in text

    def test_union_all_uie_golden(self, db):
        """Golden test: the UIE-shaped INSERT .. UNION ALL statement."""
        text = db.explain_analyze(
            "INSERT INTO tc_mdelta "
            "SELECT d.x AS x, a.y AS y FROM tc_delta d, arc a WHERE d.y = a.x "
            "UNION ALL SELECT a.x AS x, a.y AS y FROM arc a"
        )
        lines = [line.strip() for line in text.splitlines()]
        assert lines[0] == "INSERT INTO tc_mdelta"
        arm_headers = [line for line in lines if line.startswith("UNION ALL arm")]
        assert len(arm_headers) == 2
        # Arm 0: the delta join produces 2 rows; arm 1: the full scan, 3.
        assert arm_headers[0].startswith("UNION ALL arm 0:  (actual: 2 rows")
        assert arm_headers[1].startswith("UNION ALL arm 1:  (actual: 3 rows")
        assert any(
            line.startswith("scan tc_delta AS d") and "(actual: 2 rows" in line
            for line in lines
        )
        assert any(
            line.startswith("scan arc AS a") and "(actual: 3 rows" in line
            for line in lines
        )
        # Footer reports the 5 rows actually inserted...
        assert lines[-1].startswith("actual: 5 rows in ")
        # ...matching the executed result in the table.
        assert db.table_size("tc_mdelta") == 5

    def test_profiler_restored_after_analyze(self, db):
        assert not db.profiler.enabled
        db.explain_analyze("SELECT a.x AS x FROM arc a")
        assert not db.profiler.enabled
        # A second call starts from a clean trace (no stale spans).
        text = db.explain_analyze("SELECT a.x AS x FROM arc a")
        assert text.splitlines()[-1].startswith("actual: 3 rows")

    def test_unmatched_lines_marked_not_executed(self, db):
        # An impossible filter empties the frame before the join runs:
        # whichever operators still execute report actuals; the plan
        # renders regardless.
        text = db.explain_analyze(
            "SELECT a.x AS x FROM arc a WHERE a.x > 100"
        )
        assert "filter" in text
        assert text.splitlines()[-1].startswith("actual: 0 rows")


class TestCliProfiling:
    def test_profile_flag_prints_hotspots(self, datalog_project, capsys):
        code = main([str(datalog_project), "--profile"])
        assert code == 0
        output = capsys.readouterr().out
        assert "% attributed to spans" in output
        assert "counters:" in output

    def test_trace_out_writes_valid_chrome_trace(self, datalog_project, capsys):
        import json

        trace_path = datalog_project.parent / "trace.json"
        code = main([str(datalog_project), "--trace-out", str(trace_path)])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert any(e.get("cat") == "program" for e in payload["traceEvents"])

    def test_profile_rejected_for_baselines(self, datalog_project):
        with pytest.raises(DatalogError):
            run_datalog_file(datalog_project, engine_name="Souffle", profile=True)


class TestExplainProgram:
    def test_explain_program_covers_all_strata(self):
        from repro.core.recstep import explain_program
        from repro.programs import get_program

        text = explain_program(get_program("CC"))
        assert "3 strata" in text
        assert "stratum 0 (recursive)" in text
        assert "cc3_delta" in text  # semi-naive delta table appears

    def test_explain_program_from_source(self):
        from repro.core.recstep import explain_program

        text = explain_program("p(x) :- e(x, y).")
        assert "non-recursive" in text
        assert "INSERT INTO p_mdelta" in text

    def test_database_explain_method(self):
        import numpy as np
        from repro.engine.database import Database

        db = Database(enforce_budgets=False)
        db.load_table("e", ["a", "b"], np.array([[1, 2]]))
        db.analyze("e")
        plan = db.explain("SELECT e.a AS a FROM e")
        assert "scan e" in plan


class TestPointQueryCli:
    def test_query_flag_prints_answers_and_writes_outputs(
        self, datalog_project, capsys
    ):
        code = main([str(datalog_project), "--query", "tc(0, x)"])
        assert code == 0
        output = capsys.readouterr().out
        assert "|tc| = 3" in output
        assert "  tc(0, 1)" in output
        rows = load_relation(datalog_project.parent / "tc_out.tsv", arity=2)
        assert {tuple(r) for r in rows.tolist()} == {(0, 1), (0, 2), (0, 3)}

    def test_file_level_query_directive(self, tmp_path, capsys):
        save_relation(tmp_path / "arc.tsv", np.array([[0, 1], [1, 2]]))
        program = tmp_path / "q.datalog"
        program.write_text(
            ".input arc arc.tsv\n"
            "tc(x, y) :- arc(x, y).\n"
            "tc(x, y) :- tc(x, z), arc(z, y).\n"
            "?- tc(1, x).\n"
        )
        code = main([str(program)])
        assert code == 0
        assert "tc(1, 2)" in capsys.readouterr().out

    def test_query_requires_recstep(self, datalog_project):
        with pytest.raises(DatalogError, match="RecStep"):
            run_datalog_file(datalog_project, engine_name="Souffle", query="tc(0, x)")

    def test_query_incompatible_with_serving(self, datalog_project, tmp_path):
        with pytest.raises(DatalogError, match="serve"):
            run_datalog_file(
                datalog_project,
                query="tc(0, x)",
                serve_trace=str(tmp_path / "trace.json"),
            )


class TestExitCodes:
    """The documented contract: 0 ok, 1 hard failure, 2 usage, 3 degraded.

    Degraded-but-served runs (divergence guard, cooperative deadline)
    produced a usable partial report, so scripts can distinguish them
    from hard failures (OOM, timeout, fault) without parsing output.
    """

    def test_ok_exits_zero(self, datalog_project):
        assert main([str(datalog_project)]) == 0

    def test_hard_failure_exits_one(self, datalog_project, capsys):
        code = main([str(datalog_project), "--memory-budget", "50"])
        assert code == 1
        assert "status:       oom" in capsys.readouterr().out

    def test_usage_error_exits_two(self, datalog_project, capsys):
        with pytest.raises(SystemExit) as info:
            main([str(datalog_project), "--no-such-flag"])
        assert info.value.code == 2
        capsys.readouterr()

    def test_guard_trip_exits_three(self, datalog_project, capsys):
        code = main([str(datalog_project), "--max-iterations", "1"])
        assert code == 3
        assert "status:       guard" in capsys.readouterr().out

    def test_deadline_exits_three(self, datalog_project, capsys):
        code = main([str(datalog_project), "--deadline", "1e-9"])
        assert code == 3
        assert "status:       deadline" in capsys.readouterr().out

    def test_exit_code_for_mapping(self):
        from repro.cli import exit_code_for

        assert exit_code_for("ok") == 0
        assert exit_code_for("guard") == 3
        assert exit_code_for("deadline") == 3
        for hard in ("oom", "timeout", "fault", "storage", "cancelled"):
            assert exit_code_for(hard) == 1

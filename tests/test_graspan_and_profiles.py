"""Cost-profile behaviour: widths, caps, and engine-specific shapes."""

import numpy as np
import pytest

from repro.baselines import BigDatalogLike, GraspanLike, NaiveEngine, SouffleLike
from repro.baselines.base import CostProfile
from repro.baselines.ruleeval import WorkCounters
from repro.programs import get_program


class TestCostProfile:
    def test_width_cap_per_idb(self):
        profile = CostProfile(name="x", threads=20, parallel_efficiency=1.0,
                              width_cap_per_idb=6.0)
        assert profile.effective_width(num_predicates=1) == 6.0
        assert profile.effective_width(num_predicates=3) == 18.0
        assert profile.effective_width(num_predicates=10) == 20.0  # thread bound

    def test_no_cap_uses_efficiency(self):
        profile = CostProfile(name="x", threads=20, parallel_efficiency=0.5)
        assert profile.effective_width() == 10.0

    def test_iteration_seconds_scales_with_work(self):
        profile = CostProfile(name="x")
        light = WorkCounters(tuples_probed=1000)
        heavy = WorkCounters(tuples_probed=1_000_000)
        assert profile.iteration_seconds(heavy, 0) > profile.iteration_seconds(light, 0)

    def test_width_floor_is_one(self):
        profile = CostProfile(name="x", threads=1, parallel_efficiency=0.01)
        assert profile.effective_width() == 1.0


class TestEngineShapes:
    def test_souffle_single_idb_underutilizes(self):
        souffle = SouffleLike(enforce_budgets=False)
        single = souffle.profile.effective_width(num_predicates=1)
        triple = souffle.profile.effective_width(num_predicates=3)
        assert single < triple  # REACH/AA vs CSPA widths (Figure 16)

    def test_graspan_low_parallelism(self):
        graspan = GraspanLike(enforce_budgets=False)
        naive = NaiveEngine(enforce_budgets=False)
        assert (
            graspan.profile.effective_width() < naive.profile.effective_width()
        )

    def test_bigdatalog_startup_dominates_small_inputs(self):
        edges = np.array([[0, 1]], dtype=np.int64)
        result = BigDatalogLike(enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        # A trivial program still pays multi-second cluster startup.
        assert result.sim_seconds > 3.0

    def test_distributed_slower_on_trivial_input(self):
        edges = np.array([[0, 1]], dtype=np.int64)
        local = BigDatalogLike(enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        distributed = BigDatalogLike(distributed=True, enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        assert distributed.sim_seconds > local.sim_seconds

    def test_row_cap_produces_oom_not_crash(self):
        # An all-equal-keys self-join explodes quadratically: the engine
        # must surface a modeled OOM rather than materializing it.
        hot = np.zeros((40_000, 2), dtype=np.int64)
        hot[:, 1] = np.arange(40_000)
        engine = SouffleLike(memory_budget=10_000_000, enforce_budgets=True)
        result = engine.evaluate(get_program("SG"), {"arc": hot}, "t")
        assert result.status == "oom"

    def test_iterations_match_across_engines(self, random_graph):
        """Semi-naive engines agree on the iteration count for TC."""
        reference = None
        for engine in (SouffleLike(enforce_budgets=False), BigDatalogLike(enforce_budgets=False)):
            result = engine.evaluate(get_program("TC"), {"arc": random_graph}, "t")
            if reference is None:
                reference = result.iterations
            assert result.iterations == reference

"""Tests for the Datalog lexer, parser, and rule analyzer."""

import pytest

from repro.common.errors import DatalogError, StratificationError
from repro.datalog import (
    AggTerm,
    Atom,
    Comparison,
    Constant,
    Variable,
    Wildcard,
    analyze_program,
    parse_program,
    parse_rule,
)


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule("tc(x, y) :- arc(x, y).")
        assert rule.head.predicate == "tc"
        assert rule.head.terms == (Variable("x"), Variable("y"))
        assert rule.body_atoms()[0].predicate == "arc"

    def test_fact(self):
        rule = parse_rule("edge(1, 2).")
        assert rule.is_fact
        assert rule.head.terms == (Constant(1), Constant(2))

    def test_negated_atom_bang(self):
        rule = parse_rule("p(x) :- q(x), !r(x).")
        assert rule.negative_atoms()[0].predicate == "r"

    def test_negated_atom_not_keyword(self):
        rule = parse_rule("p(x) :- q(x), not r(x).")
        assert rule.negative_atoms()[0].predicate == "r"

    def test_comparison_literal(self):
        rule = parse_rule("sg(x, y) :- arc(p, x), arc(p, y), x != y.")
        comparison = rule.comparisons()[0]
        assert comparison.op == "!="

    def test_wildcard(self):
        rule = parse_rule("cc(x) :- cc2(_, x).")
        assert isinstance(rule.body_atoms()[0].terms[0], Wildcard)

    def test_wildcard_in_head_rejected(self):
        with pytest.raises(DatalogError):
            parse_rule("p(_) :- q(x).")

    def test_aggregation_head(self):
        rule = parse_rule("gtc(x, COUNT(y)) :- tc(x, y).")
        term = rule.head.terms[1]
        assert isinstance(term, AggTerm)
        assert term.func == "COUNT"

    def test_aggregation_with_arithmetic(self):
        rule = parse_rule("sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).")
        assert rule.head.terms[1].func == "MIN"

    def test_aggregation_in_body_rejected(self):
        with pytest.raises(DatalogError):
            parse_rule("p(x) :- q(MIN(x)).")

    def test_negated_head_rejected(self):
        with pytest.raises(DatalogError):
            parse_rule("!p(x) :- q(x).")

    def test_constants_in_body(self):
        rule = parse_rule("p(x) :- q(x, 5).")
        assert rule.body_atoms()[0].terms[1] == Constant(5)

    def test_negative_constant(self):
        rule = parse_rule("p(x) :- q(x, -5).")
        assert rule.body_atoms()[0].terms[1] == Constant(-5)

    def test_comments(self):
        program = parse_program("% comment\n tc(x,y) :- arc(x,y). // tail\n")
        assert len(program.rules) == 1

    def test_missing_period_rejected(self):
        with pytest.raises(DatalogError):
            parse_rule("p(x) :- q(x)")

    def test_program_str_roundtrip(self):
        source = "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y)."
        program = parse_program(source)
        reparsed = parse_program(str(program))
        assert str(reparsed) == str(program)


class TestAnalyzer:
    def test_edb_idb_split(self):
        analyzed = analyze_program(parse_program("tc(x,y) :- arc(x,y)."))
        assert analyzed.edb == {"arc"}
        assert analyzed.idb == {"tc"}

    def test_arity_conflict_rejected(self):
        with pytest.raises(DatalogError):
            analyze_program(parse_program("p(x) :- q(x). p(x, y) :- q(x), q(y)."))

    def test_unsafe_head_variable(self):
        with pytest.raises(DatalogError):
            analyze_program(parse_program("p(x, y) :- q(x)."))

    def test_unsafe_negation_variable(self):
        with pytest.raises(DatalogError):
            analyze_program(parse_program("p(x) :- q(x), !r(y)."))

    def test_unsafe_comparison_variable(self):
        with pytest.raises(DatalogError):
            analyze_program(parse_program("p(x) :- q(x), y < 3."))

    def test_recursion_detected(self):
        analyzed = analyze_program(
            parse_program("tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).")
        )
        assert analyzed.features.is_recursive
        assert analyzed.features.num_strata == 1
        assert analyzed.strata[0].recursive

    def test_mutual_recursion_single_stratum(self):
        analyzed = analyze_program(
            parse_program("p(x) :- e(x). p(x) :- q(x). q(x) :- p(x), e(x).")
        )
        assert analyzed.features.has_mutual_recursion
        assert analyzed.strata[0].predicates == {"p", "q"}

    def test_nonlinear_recursion_detected(self):
        analyzed = analyze_program(
            parse_program("t(x,y) :- e(x,y). t(x,y) :- t(x,z), t(z,y).")
        )
        assert analyzed.features.has_nonlinear_recursion

    def test_strata_topologically_ordered(self):
        analyzed = analyze_program(
            parse_program(
                "a(x) :- e(x). b(x) :- a(x). c(x) :- b(x), !a(x)."
            )
        )
        order = {next(iter(s.predicates)): s.index for s in analyzed.strata}
        assert order["a"] < order["b"] < order["c"]

    def test_negation_through_recursion_rejected(self):
        with pytest.raises(StratificationError):
            analyze_program(parse_program("p(x) :- e(x), !p(x)."))

    def test_stratified_negation_accepted(self):
        analyzed = analyze_program(
            parse_program(
                "tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y). "
                "n(x) :- arc(x,y). ntc(x,y) :- n(x), n(y), !tc(x,y)."
            )
        )
        assert analyzed.features.has_negation

    def test_negated_edb_always_allowed(self):
        analyzed = analyze_program(parse_program("p(x) :- q(x), !r(x)."))
        assert analyzed.features.has_negation

    def test_recursive_count_rejected(self):
        with pytest.raises(StratificationError):
            analyze_program(
                parse_program("c(x, COUNT(y)) :- c(y, z), e(x, y).")
            )

    def test_recursive_min_allowed(self):
        analyzed = analyze_program(
            parse_program(
                "d(x, MIN(0)) :- s(x). d(y, MIN(v + w)) :- d(x, v), e(x, y, w)."
            )
        )
        assert analyzed.features.has_recursive_aggregation

    def test_mixed_aggregate_heads_rejected(self):
        with pytest.raises(DatalogError):
            analyze_program(
                parse_program("p(x, y) :- e(x, y). p(x, MIN(y)) :- e(x, y).")
            )

    def test_aggregate_not_last_rejected(self):
        with pytest.raises(DatalogError):
            analyze_program(parse_program("p(MIN(x), y) :- e(x, y)."))

    def test_aggregate_func_lookup(self):
        analyzed = analyze_program(parse_program("g(x, COUNT(y)) :- e(x, y)."))
        assert analyzed.aggregate_func("g") == "COUNT"
        assert analyzed.aggregate_func("e") is None

    def test_self_negation_in_lower_stratum_ok(self):
        source = "base(x) :- e(x). top(x) :- e(x), !base(x)."
        analyzed = analyze_program(parse_program(source))
        assert analyzed.features.num_strata == 2

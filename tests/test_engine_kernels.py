"""Unit and property-based tests for the relational kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import kernels

rows_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=0, max_size=60
)
keys_strategy = st.lists(st.integers(-100, 100), min_size=0, max_size=80)


def as_matrix(pairs) -> np.ndarray:
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


class TestPackColumns:
    def test_single_column_identity(self):
        col = np.array([3, 1, 2], dtype=np.int64)
        assert kernels.pack_columns([col]) is col

    def test_pack_two_columns_injective(self):
        a = np.array([0, 1, 0, 1], dtype=np.int64)
        b = np.array([0, 0, 1, 1], dtype=np.int64)
        packed = kernels.pack_columns([a, b])
        assert len(np.unique(packed)) == 4

    def test_pack_handles_negative_offsets(self):
        a = np.array([-5, -4], dtype=np.int64)
        b = np.array([7, 8], dtype=np.int64)
        packed = kernels.pack_columns([a, b])
        assert packed is not None
        assert len(np.unique(packed)) == 2

    def test_pack_too_wide_returns_none(self):
        wide = np.array([0, 1 << 40], dtype=np.int64)
        assert kernels.pack_columns([wide, wide]) is None

    def test_pack_empty_columns(self):
        empty = np.empty(0, dtype=np.int64)
        packed = kernels.pack_columns([empty, empty])
        assert packed is not None and packed.shape == (0,)

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_pack_preserves_row_equality(self, pairs):
        matrix = as_matrix(pairs)
        if matrix.shape[0] == 0:
            return
        packed = kernels.pack_columns([matrix[:, 0], matrix[:, 1]])
        for i in range(matrix.shape[0]):
            for j in range(matrix.shape[0]):
                same_row = bool((matrix[i] == matrix[j]).all())
                assert (packed[i] == packed[j]) == same_row


class TestEquiJoin:
    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        li, ri = kernels.equi_join_indices(empty, np.array([1, 2]))
        assert li.size == ri.size == 0

    def test_all_pairs_on_duplicate_keys(self):
        left = np.array([7, 7], dtype=np.int64)
        right = np.array([7, 7, 7], dtype=np.int64)
        li, ri = kernels.equi_join_indices(left, right)
        assert li.size == 6  # 2 x 3 matches

    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_nested_loop_join(self, left_list, right_list):
        left = np.asarray(left_list, dtype=np.int64)
        right = np.asarray(right_list, dtype=np.int64)
        li, ri = kernels.equi_join_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_list)
            for j, rv in enumerate(right_list)
            if lv == rv
        )
        assert got == expected


class TestSemiAntiJoin:
    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_masks_partition_rows(self, left_list, right_list):
        left = np.asarray(left_list, dtype=np.int64)
        right = np.asarray(right_list, dtype=np.int64)
        semi = kernels.semi_join_mask(left, right)
        anti = kernels.anti_join_mask(left, right)
        assert not np.any(semi & anti)
        if left.size:
            assert np.all(semi | anti)
        right_set = set(right_list)
        for index, value in enumerate(left_list):
            assert bool(semi[index]) == (value in right_set)


class TestUniqueRows:
    def test_empty(self):
        assert kernels.unique_rows(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)

    def test_single_column(self):
        rows = np.array([[3], [1], [3]], dtype=np.int64)
        assert kernels.unique_rows(rows).shape == (2, 1)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set(self, pairs):
        matrix = as_matrix(pairs)
        unique = kernels.unique_rows(matrix)
        assert {tuple(r) for r in unique.tolist()} == set(pairs)
        assert unique.shape[0] == len(set(pairs))

    def test_wide_rows_fall_back_to_lexsort(self):
        rows = np.array([[1 << 40, 1 << 41], [1 << 40, 1 << 41], [0, 1]], dtype=np.int64)
        unique = kernels.unique_rows(rows)
        assert unique.shape[0] == 2


class TestSetOperations:
    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_difference_matches_python_sets(self, new_pairs, old_pairs):
        delta = kernels.rows_difference(as_matrix(new_pairs), as_matrix(old_pairs))
        assert {tuple(r) for r in delta.tolist()} == set(new_pairs) - set(old_pairs)

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_intersection_matches_python_sets(self, left_pairs, right_pairs):
        got = kernels.rows_intersection(as_matrix(left_pairs), as_matrix(right_pairs))
        assert {tuple(r) for r in got.tolist()} == set(left_pairs) & set(right_pairs)


class TestGroupAggregate:
    def test_min_per_group(self):
        keys = np.array([1, 2, 1, 2], dtype=np.int64)
        values = np.array([10, 20, 5, 30], dtype=np.int64)
        group_keys, (mins,) = kernels.group_aggregate([keys], [("MIN", values)])
        result = dict(zip(group_keys[:, 0].tolist(), mins.tolist()))
        assert result == {1: 5, 2: 20}

    def test_count_and_sum(self):
        keys = np.array([1, 1, 2], dtype=np.int64)
        values = np.array([4, 6, 9], dtype=np.int64)
        _, (counts, sums) = kernels.group_aggregate(
            [keys], [("COUNT", values), ("SUM", values)]
        )
        assert counts.tolist() == [2, 1]
        assert sums.tolist() == [10, 9]

    def test_avg_integer_division(self):
        keys = np.array([1, 1], dtype=np.int64)
        values = np.array([3, 4], dtype=np.int64)
        _, (avgs,) = kernels.group_aggregate([keys], [("AVG", values)])
        assert avgs.tolist() == [3]  # floor(7/2)

    def test_global_aggregate_no_groups(self):
        values = np.array([5, 2, 9], dtype=np.int64)
        keys, (minimum,) = kernels.group_aggregate([], [("MIN", values)])
        assert keys.shape == (1, 0)
        assert minimum.tolist() == [2]

    def test_empty_grouped_input(self):
        empty = np.empty(0, dtype=np.int64)
        keys, (mins,) = kernels.group_aggregate([empty], [("MIN", empty)])
        assert keys.shape[0] == 0
        assert mins.shape[0] == 0

    def test_multi_column_group_keys(self):
        a = np.array([1, 1, 2], dtype=np.int64)
        b = np.array([1, 1, 1], dtype=np.int64)
        values = np.array([7, 3, 5], dtype=np.int64)
        keys, (mins,) = kernels.group_aggregate([a, b], [("MIN", values)])
        assert keys.shape == (2, 2)
        assert sorted(mins.tolist()) == [3, 5]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-50, 50)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_min_matches_python(self, pairs):
        keys = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.int64)
        group_keys, (mins,) = kernels.group_aggregate([keys], [("MIN", values)])
        got = dict(zip(group_keys[:, 0].tolist(), mins.tolist()))
        expected: dict[int, int] = {}
        for key, value in pairs:
            expected[key] = min(expected.get(key, value), value)
        assert got == expected

    def test_global_min_of_empty_raises(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            kernels.group_aggregate([], [("MIN", empty)])

"""Unit and property-based tests for the relational kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import KeyPackingError
from repro.engine import kernels
from repro.storage.stats import ColumnDomain

rows_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=0, max_size=60
)
keys_strategy = st.lists(st.integers(-100, 100), min_size=0, max_size=80)


def as_matrix(pairs) -> np.ndarray:
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


class TestPackColumns:
    def test_single_column_identity(self):
        col = np.array([3, 1, 2], dtype=np.int64)
        assert kernels.pack_columns([col]) is col

    def test_pack_two_columns_injective(self):
        a = np.array([0, 1, 0, 1], dtype=np.int64)
        b = np.array([0, 0, 1, 1], dtype=np.int64)
        packed = kernels.pack_columns([a, b])
        assert len(np.unique(packed)) == 4

    def test_pack_handles_negative_offsets(self):
        a = np.array([-5, -4], dtype=np.int64)
        b = np.array([7, 8], dtype=np.int64)
        packed = kernels.pack_columns([a, b])
        assert packed is not None
        assert len(np.unique(packed)) == 2

    def test_pack_too_wide_returns_none(self):
        wide = np.array([0, 1 << 40], dtype=np.int64)
        assert kernels.pack_columns([wide, wide]) is None

    def test_pack_empty_columns(self):
        empty = np.empty(0, dtype=np.int64)
        packed = kernels.pack_columns([empty, empty])
        assert packed is not None and packed.shape == (0,)

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_pack_preserves_row_equality(self, pairs):
        matrix = as_matrix(pairs)
        if matrix.shape[0] == 0:
            return
        packed = kernels.pack_columns([matrix[:, 0], matrix[:, 1]])
        for i in range(matrix.shape[0]):
            for j in range(matrix.shape[0]):
                same_row = bool((matrix[i] == matrix[j]).all())
                assert (packed[i] == packed[j]) == same_row


class TestCrossCallPacking:
    """Root cause of the join-state bug: legacy ``pack_columns`` derives
    offsets from each call's observed min/max, so codes from different
    calls live in unrelated coordinate systems. Reusing them must raise
    instead of silently producing garbage matches."""

    def test_same_tuple_packs_differently_across_calls(self):
        # The buggy premise, demonstrated: (5, 5) gets a different code
        # depending on which other values shared the call.
        first = kernels.pack_columns(
            [np.array([5, 9], dtype=np.int64), np.array([5, 9], dtype=np.int64)]
        )
        second = kernels.pack_columns(
            [np.array([5, 0], dtype=np.int64), np.array([5, 0], dtype=np.int64)]
        )
        assert first[0] != second[0]  # same tuple (5, 5), different codes

    def test_equi_join_rejects_cross_call_keys(self):
        left = kernels.pack_columns(
            [np.array([1, 2], dtype=np.int64), np.array([3, 4], dtype=np.int64)]
        )
        right = kernels.pack_columns(
            [np.array([1, 8], dtype=np.int64), np.array([3, 9], dtype=np.int64)]
        )
        with pytest.raises(KeyPackingError):
            kernels.equi_join_count(left, right)
        with pytest.raises(KeyPackingError):
            kernels.equi_join_indices(left, right)
        with pytest.raises(KeyPackingError):
            kernels.semi_join_mask(left, right)

    def test_token_survives_slicing(self):
        key = kernels.pack_columns(
            [np.array([1, 2, 3], dtype=np.int64), np.array([4, 5, 6], dtype=np.int64)]
        )
        other = kernels.pack_columns(
            [np.array([9, 9], dtype=np.int64), np.array([9, 8], dtype=np.int64)]
        )
        with pytest.raises(KeyPackingError):
            kernels.semi_join_mask(key[1:], other)

    def test_same_call_keys_stay_comparable(self):
        key = kernels.pack_columns(
            [np.array([1, 2, 1], dtype=np.int64), np.array([3, 4, 3], dtype=np.int64)]
        )
        assert kernels.equi_join_count(key[:1], key[1:]) == 1

    def test_make_join_keys_is_the_sanctioned_path(self):
        left = [np.array([1, 2], dtype=np.int64), np.array([3, 4], dtype=np.int64)]
        right = [np.array([1, 8], dtype=np.int64), np.array([3, 9], dtype=np.int64)]
        lk, rk = kernels.make_join_keys(left, right)
        assert kernels.semi_join_mask(lk, rk).tolist() == [True, False]


class TestDomainStablePacking:
    def test_codes_comparable_across_calls(self):
        domains = [ColumnDomain(0, 100), ColumnDomain(0, 100)]
        first = kernels.pack_columns(
            [np.array([5, 9], dtype=np.int64), np.array([5, 9], dtype=np.int64)],
            domains=domains,
        )
        second = kernels.pack_columns(
            [np.array([5, 0], dtype=np.int64), np.array([5, 0], dtype=np.int64)],
            domains=domains,
        )
        assert first[0] == second[0]  # same tuple, same code, any call
        assert kernels.semi_join_mask(first, second).tolist() == [True, False]

    def test_out_of_domain_pack_raises(self):
        codec = kernels.KeyCodec([ColumnDomain(0, 10), ColumnDomain(0, 10)])
        with pytest.raises(KeyPackingError):
            codec.pack([np.array([11], dtype=np.int64), np.array([0], dtype=np.int64)])

    def test_pack_probe_maps_out_of_domain_to_minus_one(self):
        codec = kernels.KeyCodec([ColumnDomain(0, 10), ColumnDomain(0, 10)])
        probes = codec.pack_probe(
            [np.array([5, 11], dtype=np.int64), np.array([5, 5], dtype=np.int64)]
        )
        assert probes[1] == -1
        assert probes[0] >= 0

    def test_exact_63_bit_boundary_packs(self):
        domains = [ColumnDomain(0, (1 << 31) - 1), ColumnDomain(0, (1 << 32) - 1)]
        codec = kernels.KeyCodec(domains)
        assert codec.total_bits == 63
        assert codec.packable
        packed = codec.pack(
            [
                np.array([(1 << 31) - 1], dtype=np.int64),
                np.array([(1 << 32) - 1], dtype=np.int64),
            ]
        )
        assert packed[0] == np.iinfo(np.int64).max

    def test_64_bits_is_unpackable(self):
        domains = [ColumnDomain(0, (1 << 32) - 1), ColumnDomain(0, (1 << 32) - 1)]
        codec = kernels.KeyCodec(domains)
        assert codec.total_bits == 64
        assert not codec.packable
        with pytest.raises(KeyPackingError):
            codec.pack(
                [np.array([1], dtype=np.int64), np.array([1], dtype=np.int64)]
            )
        assert (
            kernels.pack_columns(
                [np.array([0], dtype=np.int64), np.array([0], dtype=np.int64)],
                domains=domains,
            )
            is None
        )

    def test_single_column_codec_is_identity(self):
        codec = kernels.KeyCodec([ColumnDomain(0, 3)])
        col = np.array([7, 1], dtype=np.int64)  # identity: domain not enforced
        assert codec.pack([col]) is col


class TestRowDictionary:
    def test_codes_stable_across_calls(self):
        d = kernels.RowDictionary(2)
        rows = np.array([[1, 2], [3, 4]], dtype=np.int64)
        first = d.encode(rows, extend=True)
        second = d.encode(rows, extend=True)
        assert first.tolist() == second.tolist()
        assert len(d) == 2

    def test_unseen_rows_without_extend_are_transient(self):
        d = kernels.RowDictionary(2)
        d.encode(np.array([[1, 2]], dtype=np.int64), extend=True)
        probe = d.encode(np.array([[9, 9]], dtype=np.int64), extend=False)
        assert probe[0] >= len(d)  # never collides with a stored code
        assert len(d) == 1  # and nothing was persisted

    def test_extend_only_pays_for_new_rows(self):
        d = kernels.RowDictionary(2)
        base = np.array([[i, i + 1] for i in range(50)], dtype=np.int64)
        codes = d.encode(base, extend=True)
        delta = np.array([[100, 101]], dtype=np.int64)
        d.encode(delta, extend=True)
        assert len(d) == 51
        # Old rows keep their original codes after the extension.
        assert d.encode(base, extend=False).tolist() == codes.tolist()

    def test_factorize_rows_with_dictionary_matches_stateless(self):
        left = np.array([[1, 2], [9, 9]], dtype=np.int64)
        right = np.array([[1, 2], [3, 4]], dtype=np.int64)
        stateless_l, stateless_r = kernels.factorize_rows(left, right)
        d = kernels.RowDictionary(2)
        stateful_l, stateful_r = kernels.factorize_rows(left, right, dictionary=d)
        # Same equality structure, possibly different code values.
        assert (stateless_l[0] == stateless_r[0]) and (stateful_l[0] == stateful_r[0])
        assert stateful_l[1] not in set(stateful_r.tolist())

    def test_width_mismatch_rejected(self):
        d = kernels.RowDictionary(2)
        with pytest.raises(ValueError):
            d.encode(np.array([[1, 2, 3]], dtype=np.int64))


class TestSortedIndexKernels:
    @staticmethod
    def _classic(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        return keys[order], order.astype(np.int64)

    def test_empty_delta_extension_is_identity(self):
        keys = np.array([3, 1, 2], dtype=np.int64)
        sorted_keys, positions = self._classic(keys)
        merged_keys, merged_positions = kernels.merge_sorted_index(
            sorted_keys, positions, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert merged_keys is sorted_keys and merged_positions is positions

    def test_single_row_full_table(self):
        sorted_keys = np.array([7], dtype=np.int64)
        positions = np.array([0], dtype=np.int64)
        starts, ends = kernels.sorted_probe_range(
            np.array([7, 8], dtype=np.int64), sorted_keys
        )
        probe_idx, table_pos = kernels.sorted_join_indices(starts, ends, positions)
        assert probe_idx.tolist() == [0] and table_pos.tolist() == [0]
        assert kernels.isin_sorted(
            np.array([7, 8], dtype=np.int64), sorted_keys
        ).tolist() == [True, False]

    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_incremental_merge_equals_full_sort(self, base_list, delta_list):
        base = np.asarray(base_list, dtype=np.int64)
        delta = np.asarray(delta_list, dtype=np.int64)
        sorted_keys, positions = self._classic(base)
        merged_keys, merged_positions = kernels.merge_sorted_index(
            sorted_keys,
            positions,
            delta,
            np.arange(base.size, base.size + delta.size, dtype=np.int64),
        )
        whole = np.concatenate([base, delta])
        expect_keys, expect_positions = self._classic(whole)
        assert merged_keys.tolist() == expect_keys.tolist()
        # Stable within equal keys: extended index == full stable argsort,
        # which is what makes cached join output byte-identical.
        assert merged_positions.tolist() == expect_positions.tolist()

    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sorted_probe_matches_equi_join(self, probe_list, table_list):
        probe = np.asarray(probe_list, dtype=np.int64)
        table = np.asarray(table_list, dtype=np.int64)
        sorted_keys, positions = self._classic(table)
        starts, ends = kernels.sorted_probe_range(probe, sorted_keys)
        got_probe, got_table = kernels.sorted_join_indices(starts, ends, positions)
        li, ri = kernels.equi_join_indices(probe, table)
        assert sorted(zip(got_probe.tolist(), got_table.tolist())) == sorted(
            zip(li.tolist(), ri.tolist())
        )


class TestEquiJoin:
    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        li, ri = kernels.equi_join_indices(empty, np.array([1, 2]))
        assert li.size == ri.size == 0

    def test_all_pairs_on_duplicate_keys(self):
        left = np.array([7, 7], dtype=np.int64)
        right = np.array([7, 7, 7], dtype=np.int64)
        li, ri = kernels.equi_join_indices(left, right)
        assert li.size == 6  # 2 x 3 matches

    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_nested_loop_join(self, left_list, right_list):
        left = np.asarray(left_list, dtype=np.int64)
        right = np.asarray(right_list, dtype=np.int64)
        li, ri = kernels.equi_join_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_list)
            for j, rv in enumerate(right_list)
            if lv == rv
        )
        assert got == expected


class TestSemiAntiJoin:
    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_masks_partition_rows(self, left_list, right_list):
        left = np.asarray(left_list, dtype=np.int64)
        right = np.asarray(right_list, dtype=np.int64)
        semi = kernels.semi_join_mask(left, right)
        anti = kernels.anti_join_mask(left, right)
        assert not np.any(semi & anti)
        if left.size:
            assert np.all(semi | anti)
        right_set = set(right_list)
        for index, value in enumerate(left_list):
            assert bool(semi[index]) == (value in right_set)


class TestUniqueRows:
    def test_empty(self):
        assert kernels.unique_rows(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)

    def test_single_column(self):
        rows = np.array([[3], [1], [3]], dtype=np.int64)
        assert kernels.unique_rows(rows).shape == (2, 1)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_python_set(self, pairs):
        matrix = as_matrix(pairs)
        unique = kernels.unique_rows(matrix)
        assert {tuple(r) for r in unique.tolist()} == set(pairs)
        assert unique.shape[0] == len(set(pairs))

    def test_wide_rows_fall_back_to_lexsort(self):
        rows = np.array([[1 << 40, 1 << 41], [1 << 40, 1 << 41], [0, 1]], dtype=np.int64)
        unique = kernels.unique_rows(rows)
        assert unique.shape[0] == 2


class TestSetOperations:
    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_difference_matches_python_sets(self, new_pairs, old_pairs):
        delta = kernels.rows_difference(as_matrix(new_pairs), as_matrix(old_pairs))
        assert {tuple(r) for r in delta.tolist()} == set(new_pairs) - set(old_pairs)

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_intersection_matches_python_sets(self, left_pairs, right_pairs):
        got = kernels.rows_intersection(as_matrix(left_pairs), as_matrix(right_pairs))
        assert {tuple(r) for r in got.tolist()} == set(left_pairs) & set(right_pairs)


class TestGroupAggregate:
    def test_min_per_group(self):
        keys = np.array([1, 2, 1, 2], dtype=np.int64)
        values = np.array([10, 20, 5, 30], dtype=np.int64)
        group_keys, (mins,) = kernels.group_aggregate([keys], [("MIN", values)])
        result = dict(zip(group_keys[:, 0].tolist(), mins.tolist()))
        assert result == {1: 5, 2: 20}

    def test_count_and_sum(self):
        keys = np.array([1, 1, 2], dtype=np.int64)
        values = np.array([4, 6, 9], dtype=np.int64)
        _, (counts, sums) = kernels.group_aggregate(
            [keys], [("COUNT", values), ("SUM", values)]
        )
        assert counts.tolist() == [2, 1]
        assert sums.tolist() == [10, 9]

    def test_avg_integer_division(self):
        keys = np.array([1, 1], dtype=np.int64)
        values = np.array([3, 4], dtype=np.int64)
        _, (avgs,) = kernels.group_aggregate([keys], [("AVG", values)])
        assert avgs.tolist() == [3]  # floor(7/2)

    def test_global_aggregate_no_groups(self):
        values = np.array([5, 2, 9], dtype=np.int64)
        keys, (minimum,) = kernels.group_aggregate([], [("MIN", values)])
        assert keys.shape == (1, 0)
        assert minimum.tolist() == [2]

    def test_empty_grouped_input(self):
        empty = np.empty(0, dtype=np.int64)
        keys, (mins,) = kernels.group_aggregate([empty], [("MIN", empty)])
        assert keys.shape[0] == 0
        assert mins.shape[0] == 0

    def test_multi_column_group_keys(self):
        a = np.array([1, 1, 2], dtype=np.int64)
        b = np.array([1, 1, 1], dtype=np.int64)
        values = np.array([7, 3, 5], dtype=np.int64)
        keys, (mins,) = kernels.group_aggregate([a, b], [("MIN", values)])
        assert keys.shape == (2, 2)
        assert sorted(mins.tolist()) == [3, 5]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-50, 50)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_min_matches_python(self, pairs):
        keys = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.int64)
        group_keys, (mins,) = kernels.group_aggregate([keys], [("MIN", values)])
        got = dict(zip(group_keys[:, 0].tolist(), mins.tolist()))
        expected: dict[int, int] = {}
        for key, value in pairs:
            expected[key] = min(expected.get(key, value), value)
        assert got == expected

    def test_global_min_of_empty_raises(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            kernels.group_aggregate([], [("MIN", empty)])

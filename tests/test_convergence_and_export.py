"""Tests for the convergence checker and the CSV export utilities."""

import numpy as np
import pytest

from repro.analysis.export import results_to_csv, trace_to_csv, write_results_csv
from repro.analysis.harness import run_workload
from repro.common.records import EvaluationResult, Trace
from repro.datalog.analyzer import analyze_program
from repro.datalog.convergence import check_convergence
from repro.datalog.parser import parse_program
from repro.programs import get_program


def issues_for(source: str):
    return check_convergence(analyze_program(parse_program(source)))


class TestConvergence:
    def test_paper_programs_provably_converge(self):
        for name in ("CC", "SSSP"):
            analyzed = get_program(name).parse()
            assert check_convergence(analyzed) == [], name

    def test_plain_value_propagation_converges(self):
        assert issues_for(
            "m(x, MIN(v)) :- s(x, v). m(y, MIN(v)) :- m(x, v), e(x, y)."
        ) == []

    def test_positive_additive_converges(self):
        assert issues_for(
            "d(x, MIN(0)) :- s(x). d(y, MIN(v + w)) :- d(x, v), e(x, y, w)."
        ) == []

    def test_negative_constant_flagged(self):
        issues = issues_for(
            "d(x, MIN(0)) :- s(x). d(y, MIN(v + -1)) :- d(x, v), e(x, y)."
        )
        assert issues
        assert "negative constant" in issues[0].reason

    def test_subtraction_of_value_flagged(self):
        issues = issues_for(
            "d(x, MIN(0)) :- s(x). d(y, MIN(v - w)) :- d(x, v), e(x, y, w)."
        )
        assert issues
        assert "subtraction" in issues[0].reason

    def test_multiplication_of_value_flagged(self):
        issues = issues_for(
            "d(x, MAX(1)) :- s(x). d(y, MAX(v * w)) :- d(x, v), e(x, y, w)."
        )
        assert issues

    def test_max_with_positive_constant_flagged(self):
        issues = issues_for(
            "d(x, MAX(0)) :- s(x). d(y, MAX(v + 1)) :- d(x, v), e(x, y)."
        )
        assert issues
        assert "positive constant" in issues[0].reason

    def test_max_with_negative_increment_converges(self):
        assert issues_for(
            "d(x, MAX(0)) :- s(x). d(y, MAX(v + -2)) :- d(x, v), e(x, y)."
        ) == []

    def test_base_rules_never_flagged(self):
        # Aggregation only in non-recursive rules: nothing to check.
        assert issues_for("g(x, COUNT(y)) :- e(x, y).") == []


class TestExport:
    def test_results_csv_round_trip(self):
        results = [
            EvaluationResult("RecStep", "TC", "G500", sim_seconds=1.25, iterations=4),
            EvaluationResult("Souffle", "TC", "G500", status="oom"),
        ]
        text = results_to_csv(results)
        lines = text.strip().splitlines()
        assert lines[0].startswith("engine,program,dataset")
        assert "RecStep,TC,G500,ok,1.250000,4" in lines[1]
        assert "Souffle,TC,G500,oom" in lines[2]

    def test_trace_csv(self):
        result = EvaluationResult("E", "P", "D")
        result.memory_trace = Trace("m")
        result.memory_trace.record(0.0, 100.0)
        result.memory_trace.record(1.0, 200.0)
        text = trace_to_csv(result, "memory")
        assert text.splitlines()[0] == "sim_seconds,memory"
        assert len(text.strip().splitlines()) == 3

    def test_trace_missing_raises(self):
        with pytest.raises(ValueError):
            trace_to_csv(EvaluationResult("E", "P", "D"), "memory")

    def test_write_to_file(self, tmp_path):
        result = run_workload("RecStep", "TC", "G500", enforce_budgets=False)
        path = write_results_csv([result], tmp_path / "runs.csv")
        assert path.read_text().count("\n") == 2

    def test_real_run_trace_export(self):
        result = run_workload("RecStep", "TC", "G500", enforce_budgets=False)
        text = trace_to_csv(result, "cpu")
        assert len(text.splitlines()) > 5

"""Unit tests for the mini-SQL lexer and parser."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql import ast, parse_script, parse_statement, tokenize
from repro.sql.tokens import TokenType
from repro.storage.column import ColumnType


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.ttype is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("pointsTo_mDelta")
        assert tokens[0].text == "pointsTo_mDelta"
        assert tokens[0].ttype is TokenType.IDENT

    def test_numbers(self):
        tokens = tokenize("123 45")
        assert [t.text for t in tokens[:-1]] == ["123", "45"]

    def test_two_char_symbols(self):
        tokens = tokenize("a <> b <= c >= d != e")
        symbols = [t.text for t in tokens if t.ttype is TokenType.SYMBOL]
        assert symbols == ["<>", "<=", ">=", "!="]

    def test_line_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_ends_with_end_token(self):
        assert tokenize("")[-1].ttype is TokenType.END


class TestParserStatements:
    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE arc (x INT, y BIGINT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.table == "arc"
        assert stmt.columns == (("x", ColumnType.INT), ("y", ColumnType.BIGINT))

    def test_create_table_default_type(self):
        stmt = parse_statement("CREATE TABLE t (a, b)")
        assert stmt.columns == (("a", ColumnType.INT), ("b", ColumnType.INT))

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t;")
        assert isinstance(stmt, ast.DropTable)

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 2), (-3, 4)")
        assert isinstance(stmt, ast.InsertValues)
        assert stmt.rows == ((1, 2), (-3, 4))

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a.x AS x FROM arc a")
        assert isinstance(stmt, ast.InsertSelect)
        assert isinstance(stmt.query, ast.Select)

    def test_delete_from(self):
        stmt = parse_statement("DELETE FROM t")
        assert isinstance(stmt, ast.DeleteAll)

    def test_analyze(self):
        assert parse_statement("ANALYZE t").full is False
        assert parse_statement("ANALYZE t FULL").full is True

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("DROP TABLE t nonsense")

    def test_script_multiple_statements(self):
        script = parse_script("CREATE TABLE a (x); CREATE TABLE b (y);")
        assert len(script.statements) == 2


class TestParserQueries:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a.x AS x, a.y AS y FROM arc a")
        select = stmt.query
        assert len(select.items) == 2
        assert select.items[0].alias == "x"
        assert select.tables == (ast.TableRef("arc", "a"),)

    def test_join_predicates(self):
        stmt = parse_statement(
            "SELECT t.x AS x FROM tc t, arc a WHERE t.y = a.x AND a.y <> 3"
        )
        select = stmt.query
        assert len(select.where) == 2
        assert select.where[0].op == "="
        assert select.where[1].op == "<>"

    def test_bang_equals_normalized(self):
        stmt = parse_statement("SELECT a.x AS x FROM arc a WHERE a.x != a.y")
        assert stmt.query.where[0].op == "<>"

    def test_union_all(self):
        stmt = parse_statement(
            "SELECT a.x AS x FROM arc a UNION ALL SELECT a.y AS x FROM arc a"
        )
        assert isinstance(stmt.query, ast.UnionAll)
        assert len(stmt.query.selects) == 2

    def test_plain_union_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a.x AS x FROM arc a UNION SELECT a.y AS x FROM arc a")

    def test_group_by_aggregate(self):
        stmt = parse_statement(
            "SELECT t.x AS x, MIN(t.d) AS d FROM t GROUP BY t.x"
        )
        select = stmt.query
        assert isinstance(select.items[1].expr, ast.AggregateCall)
        assert select.items[1].expr.func == "MIN"
        assert len(select.group_by) == 1

    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) AS c FROM t")
        agg = stmt.query.items[0].expr
        assert agg.func == "COUNT"
        assert isinstance(agg.argument, ast.Literal)

    def test_arithmetic_expressions(self):
        stmt = parse_statement("SELECT t.a + t.b * 2 AS s FROM t")
        expr = stmt.query.items[0].expr
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_not_exists(self):
        stmt = parse_statement(
            "SELECT n.x AS x FROM node n WHERE NOT EXISTS "
            "(SELECT 1 FROM tc WHERE tc.x = n.x)"
        )
        predicate = stmt.query.where[0]
        assert isinstance(predicate, ast.NotExists)
        assert predicate.subquery.tables[0].table == "tc"

    def test_table_alias_optional(self):
        stmt = parse_statement("SELECT arc.x AS x FROM arc")
        assert stmt.query.tables[0].alias == "arc"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a.x AS x FROM arc a").query.distinct

    def test_query_roundtrips_through_str(self):
        text = (
            "SELECT t.x AS c0, a.y AS c1 FROM tc t, arc a "
            "WHERE t.y = a.x UNION ALL SELECT a.x AS c0, a.y AS c1 FROM arc a"
        )
        query = parse_statement(text).query
        reparsed = parse_statement(str(query)).query
        assert str(reparsed) == str(query)

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1")

    def test_negative_literal(self):
        stmt = parse_statement("SELECT a.x AS x FROM arc a WHERE a.x > -5")
        comparison = stmt.query.where[0]
        assert comparison.right.value == -5

"""Tests for the DSD cost model (Appendix A)."""

import pytest

from repro.core.setdiff_policy import (
    DsdPolicy,
    calibrate_alpha,
    cost_opsd,
    cost_tpsd,
)


class TestCostFormulas:
    def test_opsd_cost_linear_in_r(self):
        assert cost_opsd(2000, 10, cb=2.0, cp=1.0) > cost_opsd(1000, 10, cb=2.0, cp=1.0)

    def test_tpsd_cost_equation(self):
        # Cb*(min+|r|) + Cp*(max+|Rdelta|), Appendix Eq. 1.
        cost = cost_tpsd(100, 10, 5, cb=2.0, cp=1.0)
        assert cost == pytest.approx(2.0 * (10 + 5) + 1.0 * (100 + 10))

    def test_opsd_wins_when_r_smaller(self):
        # Appendix Eq. 3: |R| <= |Rdelta| implies OPSD strictly cheaper.
        r, delta, intersection = 10, 100, 5
        assert cost_opsd(r, delta, 2.0, 1.0) < cost_tpsd(r, delta, intersection, 2.0, 1.0)


class TestDecisionRegions:
    def test_beta_at_most_one_chooses_opsd(self):
        policy = DsdPolicy(alpha=2.0)
        assert policy.choose(r_size=50, delta_size=100) == "OPSD"
        assert policy.choose(r_size=100, delta_size=100) == "OPSD"

    def test_beta_above_threshold_chooses_tpsd(self):
        policy = DsdPolicy(alpha=2.0)  # threshold = 4
        assert policy.choose(r_size=500, delta_size=100) == "TPSD"

    def test_threshold_formula(self):
        assert DsdPolicy(alpha=2.0).threshold() == pytest.approx(4.0)
        assert DsdPolicy(alpha=3.0).threshold() == pytest.approx(3.0)

    def test_alpha_at_most_one_never_tpsd_by_threshold(self):
        policy = DsdPolicy(alpha=1.0)
        assert policy.threshold() == float("inf")

    def test_grey_zone_uses_previous_mu(self):
        policy = DsdPolicy(alpha=2.0)
        # beta = 3 in (1, 4): discriminant = 3*1 - (2 + 2/mu).
        policy.prev_mu = 1.0  # 3 - 4 < 0 -> OPSD
        assert policy.choose(r_size=300, delta_size=100) == "OPSD"
        policy.prev_mu = 100.0  # 3 - 2.02 > 0 -> TPSD
        assert policy.choose(r_size=300, delta_size=100) == "TPSD"

    def test_disabled_policy_always_opsd(self):
        policy = DsdPolicy(enabled=False)
        assert policy.choose(r_size=10_000, delta_size=1) == "OPSD"

    def test_empty_delta_chooses_opsd(self):
        assert DsdPolicy().choose(r_size=100, delta_size=0) == "OPSD"

    def test_observe_intersection_updates_mu(self):
        policy = DsdPolicy()
        policy.observe_intersection(delta_size=100, intersection_size=4)
        assert policy.prev_mu == pytest.approx(25.0)

    def test_zero_intersection_keeps_mu(self):
        policy = DsdPolicy(prev_mu=7.0)
        policy.observe_intersection(delta_size=100, intersection_size=0)
        assert policy.prev_mu == 7.0

    def test_decisions_logged(self):
        policy = DsdPolicy(alpha=2.0)
        policy.choose(10, 100)
        policy.choose(1000, 10)
        assert policy.decisions == ["OPSD", "TPSD"]


class TestAlphaCalibration:
    def test_calibrated_alpha_positive(self):
        alpha = calibrate_alpha(num_pairs=2, runs_per_pair=1, max_rows=4000)
        assert alpha > 0

    def test_calibration_deterministic_inputs(self):
        # Timing varies, but the procedure must at least be stable in shape:
        # alpha is a build/probe ratio, so order-of-magnitude ~1.
        alpha = calibrate_alpha(num_pairs=2, runs_per_pair=2, max_rows=4000)
        assert 0.05 < alpha < 50

"""The concurrent query service: admission, isolation, breakers, drain.

The serving acceptance set:

* overload produces structured ``Overloaded`` rejections with positive
  retry-after hints — never unbounded buffering, never exceptions;
* a failing query cannot disturb a concurrent neighbor: completed
  fixpoints are byte-identical to solo runs of the same query;
* a class that keeps failing opens its circuit breaker, which half-opens
  after the cooldown and recovers on a successful probe;
* graceful drain checkpoints in-flight work so it resumes to the same
  fixpoint, and sheds queued work with structured failure documents;
* the watchdog cancels a stuck fixpoint cooperatively with
  ``failure["kind"] == "watchdog"``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.common.errors import EvaluationCancelled
from repro.common.timing import SimClock
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.datalog.magic import filter_answers
from repro.datalog.parser import parse_goal
from repro.programs import get_program
from repro.server import (
    AdmissionController,
    CircuitBreaker,
    QueryRequest,
    QueryService,
    ServerConfig,
    SessionError,
    SessionManager,
    SessionState,
    WatchdogToken,
)
from repro.server.admission import DEFAULT_RETRY_AFTER, MIN_SESSION_QUOTA

RELATIONAL = dict(pbme=PbmeMode.OFF)
QUOTA = int(128e6)


def _graph(seed: int, nodes: int, edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, nodes, size=(edges, 2)).astype(np.int64)


def _tc_request(seed: int = 42, **kwargs) -> QueryRequest:
    kwargs.setdefault("memory_quota", QUOTA)
    return QueryRequest(
        program=get_program("TC"),
        edb_data={"arc": _graph(seed, 120, 400)},
        dataset=f"tc-{seed}",
        **kwargs,
    )


def _service(**overrides) -> QueryService:
    # The relational path: iteration-structured evaluation, so memory
    # quotas, heartbeats, and checkpoints all have boundaries to bite at.
    config = dict(max_concurrent=2, queue_limit=3)
    config.update(overrides)
    return QueryService(
        ServerConfig(**config), engine_config=RecStepConfig(**RELATIONAL)
    )


# ---------------------------------------------------------------------------
# Session lifecycle units
# ---------------------------------------------------------------------------


class TestSessionLifecycle:
    def test_ids_are_monotonic(self):
        manager = SessionManager()
        a = manager.create(_tc_request(), now=0.0)
        b = manager.create(_tc_request(), now=0.0)
        assert [a.id, b.id] == ["q-00001", "q-00002"]

    def test_legal_path_to_done(self):
        manager = SessionManager()
        session = manager.create(_tc_request(), now=0.0)
        for state in (SessionState.ADMITTED, SessionState.RUNNING, SessionState.DONE):
            manager.transition(session, state)
        assert session.state.terminal

    def test_illegal_transition_raises(self):
        manager = SessionManager()
        session = manager.create(_tc_request(), now=0.0)
        with pytest.raises(SessionError, match="illegal transition"):
            manager.transition(session, SessionState.DONE)  # queued -> done

    def test_terminal_states_are_final(self):
        manager = SessionManager()
        session = manager.create(_tc_request(), now=0.0)
        manager.transition(session, SessionState.SHED)
        with pytest.raises(SessionError):
            manager.transition(session, SessionState.ADMITTED)

    def test_unknown_session_raises(self):
        with pytest.raises(SessionError, match="unknown session"):
            SessionManager().get("q-99999")


# ---------------------------------------------------------------------------
# Admission control units
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_queue_full_is_structured(self):
        controller = AdmissionController(
            queue_limit=2, memory_budget=1000, max_concurrent=1
        )
        overload = controller.check_submit(_tc_request(), queue_depth=2, retry_hint=0.5)
        assert overload is not None
        doc = overload.to_dict()
        assert doc["overloaded"] is True
        assert doc["reason"] == "queue-full"
        assert doc["retry_after_seconds"] == 0.5

    def test_memory_pressure_is_structured(self):
        controller = AdmissionController(
            queue_limit=8, memory_budget=1000, max_concurrent=1, high_watermark=0.9
        )
        request = _tc_request(memory_quota=2000)  # above the watermark outright
        overload = controller.check_submit(request, queue_depth=0, retry_hint=1.0)
        assert overload.reason == "memory-pressure"
        assert overload.to_dict()["high_watermark_bytes"] == 900

    def test_reserve_and_release_accounting(self):
        controller = AdmissionController(
            queue_limit=8, memory_budget=1000, max_concurrent=2, high_watermark=0.9
        )
        assert controller.try_reserve(500)
        assert controller.try_reserve(400)
        assert not controller.try_reserve(100)  # 1000 > 900 watermark
        controller.release(400)
        assert controller.try_reserve(100)

    def test_default_quota_splits_watermarked_budget(self):
        budget = 400 << 20
        controller = AdmissionController(
            queue_limit=8, memory_budget=budget, max_concurrent=4, high_watermark=0.8
        )
        split = int(budget * 0.8) // 4
        assert controller.default_quota == split
        assert controller.quota_for(_tc_request(memory_quota=None)) == split
        assert controller.quota_for(_tc_request(memory_quota=123)) == 123

    def test_default_quota_floored_on_tiny_budget(self):
        """Regression: the watermarked-budget split must never reach 0.

        A 1000-byte budget over 4 slots used to hand out 200-byte (or,
        smaller still, zero-byte) default quotas — sessions admitted with
        no enforceable reservation. The floor turns that into a
        structured memory-pressure rejection at the front door.
        """
        controller = AdmissionController(
            queue_limit=8, memory_budget=1000, max_concurrent=4, high_watermark=0.8
        )
        assert controller.default_quota == MIN_SESSION_QUOTA
        # Explicit quotas are never floored.
        assert controller.quota_for(_tc_request(memory_quota=123)) == 123
        # The floored default cannot fit the tiny watermark: a structured
        # Overloaded, not an unbudgeted admission.
        overload = controller.check_submit(
            _tc_request(memory_quota=None), queue_depth=0, retry_hint=1.0
        )
        assert overload is not None
        doc = overload.to_dict()
        assert doc["reason"] == "memory-pressure"
        assert doc["requested_bytes"] == MIN_SESSION_QUOTA

    def test_tiny_budget_service_rejects_structurally(self):
        service = _service(memory_budget=1000, queue_limit=8)
        response = service.submit(_tc_request(memory_quota=None))
        assert not response["accepted"]
        assert response["overloaded"] is True
        assert response["reason"] == "memory-pressure"
        assert response["retry_after_seconds"] > 0


# ---------------------------------------------------------------------------
# Overload at the service front door
# ---------------------------------------------------------------------------


class TestServiceOverload:
    def test_burst_past_queue_limit_rejects_with_backpressure(self):
        service = _service(queue_limit=3)
        responses = [service.submit(_tc_request(seed=s)) for s in range(6)]
        accepted = [r for r in responses if r["accepted"]]
        rejected = [r for r in responses if not r["accepted"]]
        assert len(accepted) == 3 and len(rejected) == 3
        for response in rejected:
            assert response["overloaded"] is True
            assert response["reason"] == "queue-full"
            assert response["retry_after_seconds"] > 0
        counters = service.counters.snapshot()
        assert counters["server.rejected"] == 3
        assert counters["server.rejected_queue_full"] == 3
        # The queued work still completes (pump before the drain gate,
        # which would otherwise shed what is still queued).
        service.pump()
        service.drain()
        for response in accepted:
            assert service.status(response["session_id"])["state"] == "done"

    def test_memory_pressure_rejection_at_submit(self):
        service = _service(memory_budget=1000, queue_limit=8)
        response = service.submit(_tc_request(memory_quota=2000))
        assert not response["accepted"]
        assert response["reason"] == "memory-pressure"
        assert response["retry_after_seconds"] > 0

    def test_draining_service_rejects_submissions(self):
        service = _service()
        service.drain()
        response = service.submit(_tc_request())
        assert not response["accepted"]
        assert response["reason"] == "draining"
        assert service.counters.snapshot()["server.rejected_draining"] == 1

    def test_retry_hint_tracks_earliest_finish(self):
        service = _service(max_concurrent=1, queue_limit=1)
        service.submit(_tc_request(seed=1))
        service.pump()  # occupies the slot over its evaluation interval
        assert service._active
        hint = service._retry_hint(service.clock.now())
        earliest = min(f for f, _, _ in service._active)
        assert hint == pytest.approx(
            max(earliest - service.clock.now(), DEFAULT_RETRY_AFTER / 10.0)
        )


# ---------------------------------------------------------------------------
# Isolation: a failing query cannot disturb its neighbors
# ---------------------------------------------------------------------------


class TestIsolation:
    def test_failing_query_does_not_affect_neighbors(self):
        service = _service(max_concurrent=2, queue_limit=8)
        good = [service.submit(_tc_request(seed=s)) for s in (1, 2, 3)]
        # A starved quota OOMs this query inside its own failure domain.
        bad = service.submit(_tc_request(seed=4, memory_quota=200_000))
        assert bad["accepted"]
        service.pump()
        service.drain()

        bad_doc = service.status(bad["session_id"])
        assert bad_doc["state"] == "failed"
        assert bad_doc["failure"]["error"] == "OutOfMemoryError"
        assert bad_doc["failure"]["kind"] == "oom"

        for seed, response in zip((1, 2, 3), good):
            doc = service.status(response["session_id"])
            assert doc["state"] == "done"
            solo = RecStep(
                replace(service.engine_config, memory_budget=doc["reserved_bytes"])
            ).evaluate(
                get_program("TC"),
                {"arc": _graph(seed, 120, 400)},
                dataset=f"tc-{seed}",
            )
            session = service.sessions.get(response["session_id"])
            assert session.result.tuples == solo.tuples

    def test_internal_error_is_captured_not_raised(self):
        service = _service()
        request = _tc_request(seed=5)
        request.edb_data = {"arc": "not an array"}  # poison the evaluation
        response = service.submit(request)
        assert response["accepted"]
        service.pump()
        service.drain()  # must not raise
        doc = service.status(response["session_id"])
        assert doc["state"] == "failed"
        assert doc["failure"]["kind"] == "internal"


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreakerUnit:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker("tc", failure_threshold=3, cooldown_seconds=10.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
            assert breaker.allow(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "open"
        assert not breaker.allow(now=5.0)
        assert breaker.retry_after(5.0) == pytest.approx(5.0)

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker("tc", failure_threshold=1, cooldown_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)  # cooldown passed: the probe
        assert breaker.state == "half-open"
        assert not breaker.allow(now=11.0)  # only one probe at a time

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("tc", failure_threshold=1, cooldown_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(now=11.0)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker("tc", failure_threshold=3, cooldown_seconds=10.0)
        for _ in range(3):
            breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_failure(now=11.0)  # half-open failure: instant re-open
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow(now=12.0)


class TestCircuitBreakerService:
    @staticmethod
    def _failing_request(seed: int) -> QueryRequest:
        return _tc_request(seed=seed, memory_quota=200_000)  # guaranteed OOM

    def test_breaker_opens_and_recovers_via_probe(self):
        service = _service(
            max_concurrent=1,
            queue_limit=8,
            breaker_failure_threshold=3,
            breaker_cooldown_seconds=5.0,
        )
        # Three sequential failures of the "tc" class open the breaker.
        for seed in (1, 2, 3):
            response = service.submit(self._failing_request(seed))
            assert response["accepted"]
            service.flush()
        board = service.breakers.for_class("TC")
        assert board.state == "open"
        assert service.counters.snapshot()["server.breaker_open"] == 1

        blocked = service.submit(_tc_request(seed=9))
        assert not blocked["accepted"]
        assert blocked["reason"] == "breaker-open"
        assert blocked["retry_after_seconds"] > 0
        assert service.counters.snapshot()["server.rejected_breaker"] == 1

        # After the cooldown, a healthy probe closes the breaker again.
        service.clock.advance(5.0)
        probe = service.submit(_tc_request(seed=10))
        assert probe["accepted"]
        assert board.state == "half-open"
        service.flush()
        assert board.state == "closed"
        counters = service.counters.snapshot()
        assert counters["server.breaker_half_open"] == 1
        assert counters["server.breaker_closed"] == 1
        assert service.status(probe["session_id"])["state"] == "done"

    def test_client_scoped_failures_do_not_open_breaker(self):
        service = _service(max_concurrent=1, queue_limit=8, breaker_failure_threshold=2)
        for seed in (1, 2, 3):
            response = service.submit(_tc_request(seed=seed, max_iterations=1))
            assert response["accepted"]
            service.flush()
            doc = service.status(response["session_id"])
            assert doc["state"] == "failed"
            assert doc["failure"]["kind"] == "max_iterations"
        assert service.breakers.for_class("TC").state == "closed"


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_token_trips_on_heartbeat_gap(self):
        clock = SimClock()
        token = WatchdogToken(clock, stall_timeout=1.0)
        token.check(stratum=0, iteration=0)
        clock.advance(0.5)
        token.check(stratum=0, iteration=1)
        clock.advance(5.0)
        with pytest.raises(EvaluationCancelled) as info:
            token.check(stratum=0, iteration=2)
        assert info.value.context["kind"] == "watchdog"
        assert info.value.context["gap_seconds"] == pytest.approx(5.0)
        assert token.cancelled

    def test_service_watchdog_cancels_stuck_fixpoint(self):
        # A stall timeout below any iteration's cost: the first heartbeat
        # gap trips, standing in for a genuinely wedged fixpoint.
        service = QueryService(
            ServerConfig(max_concurrent=1, queue_limit=2, watchdog_stall_timeout=1e-9),
            engine_config=RecStepConfig(**RELATIONAL),
        )
        response = service.submit(_tc_request(seed=6))
        assert response["accepted"]
        service.pump()
        service.drain()
        doc = service.status(response["session_id"])
        assert doc["state"] == "cancelled"
        assert doc["failure"]["kind"] == "watchdog"
        assert doc["failure"]["stall_timeout"] == 1e-9
        assert service.counters.snapshot()["server.watchdog_cancels"] == 1

    def test_poisoned_maintenance_batch_trips_watchdog(self):
        # Maintenance runs under the same deadline/watchdog tokens as
        # queries: a wedged update batch is cancelled cooperatively, not
        # left spinning while it holds the view's write lock.
        service = _service(max_concurrent=1, queue_limit=4)
        response = service.submit(_tc_request(seed=6, materialize=True))
        assert response["accepted"]
        service.pump()
        service.flush()
        view_id = response["session_id"]
        assert service._views[view_id].status == "ready"
        # Arm a stall bound no real batch can meet — the stand-in for a
        # genuinely stuck maintenance fixpoint.
        service.config = replace(service.config, watchdog_stall_timeout=1e-9)
        update = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session=view_id,
                inserts={"arc": np.array([[0, 60]])},
            )
        )
        assert update["accepted"]
        service.pump()
        service.flush()
        doc = service.status(update["session_id"])
        assert doc["state"] == "cancelled"
        assert doc["failure"]["kind"] == "watchdog"
        assert service.counters.snapshot()["server.watchdog_cancels"] == 1
        # The tripped batch poisoned the view; later updates fail fast
        # instead of mutating a half-maintained fixpoint.
        assert service._views[view_id].status == "poisoned"
        late = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session=view_id,
                inserts={"arc": np.array([[1, 61]])},
            )
        )
        assert late["accepted"]
        service.pump()
        service.flush()
        assert service.status(late["session_id"])["failure"]["kind"] == "no-such-view"

    def test_progress_heartbeats_reach_session_record(self):
        service = QueryService(
            ServerConfig(max_concurrent=1, queue_limit=2),
            engine_config=RecStepConfig(**RELATIONAL),
        )
        response = service.submit(_tc_request(seed=7))
        service.pump()
        service.drain()
        doc = service.status(response["session_id"])
        assert doc["state"] == "done"
        assert doc["heartbeats"] > 0
        assert "iteration" in doc["last_position"]


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_sheds_queued_with_structured_failure(self):
        service = _service(max_concurrent=1, queue_limit=4)
        responses = [service.submit(_tc_request(seed=s)) for s in range(4)]
        report = service.drain()  # no checkpoint dir: queued work is shed
        assert report["drained"] is True
        states = {
            r["session_id"]: service.status(r["session_id"])["state"]
            for r in responses
        }
        assert sorted(states.values()).count("shed") >= 1
        for session_id, state in states.items():
            if state == "shed":
                failure = service.status(session_id)["failure"]
                assert failure["kind"] == "shed"
                assert failure["error"] == "SessionShed"
        assert service.counters.snapshot()["server.shed"] >= 1

    def test_drain_checkpoints_in_flight_work(self, tmp_path):
        # A tight drain grace forces the queued query to stop at its
        # deadline mid-fixpoint — but under per-iteration checkpointing,
        # so its partial state survives the shutdown.
        service = QueryService(
            ServerConfig(max_concurrent=1, queue_limit=4, drain_grace_seconds=0.15),
            engine_config=RecStepConfig(**RELATIONAL),
        )
        response = service.submit(_tc_request(seed=42))
        assert response["accepted"]
        report = service.drain(checkpoint_dir=str(tmp_path))
        assert report["drain_checkpoint_dir"] == str(tmp_path)

        doc = service.status(response["session_id"])
        assert doc["state"] == "cancelled"  # deadline at the drain grace
        assert doc["failure"]["kind"] == "deadline"
        checkpoint_dir = doc["checkpoint_dir"]
        assert checkpoint_dir.endswith(response["session_id"])
        assert service.counters.snapshot()["server.checkpointed_on_drain"] == 1

        # The checkpoint resumes to the exact solo fixpoint.
        resumed = RecStep(
            RecStepConfig(
                **RELATIONAL,
                memory_budget=doc["reserved_bytes"],
                resume_from=checkpoint_dir,
            )
        ).evaluate(
            get_program("TC"), {"arc": _graph(42, 120, 400)}, dataset="tc-42"
        )
        solo = RecStep(
            RecStepConfig(**RELATIONAL, memory_budget=doc["reserved_bytes"])
        ).evaluate(
            get_program("TC"), {"arc": _graph(42, 120, 400)}, dataset="tc-42"
        )
        assert resumed.status == solo.status == "ok"
        assert resumed.tuples == solo.tuples

    def test_drain_report_is_machine_readable(self):
        import json

        service = _service()
        service.submit(_tc_request(seed=1))
        report = service.drain()
        # Serializable end to end, and carries the shutdown essentials.
        encoded = json.loads(json.dumps(report, default=str))
        assert encoded["drained"] is True
        assert "session_counts" in encoded
        assert "breakers" in encoded
        assert "counters" in encoded
        assert encoded["queue_depth"] == 0
        assert encoded["active"] == 0

    def test_drain_races_inflight_updates_never_half_applied(self, tmp_path):
        # Drain racing queued view updates: every update either ran to
        # completion (applied AND durably logged) or was shed cleanly —
        # the write-ahead log never holds a batch the view half-applied,
        # and recovery reproduces exactly the acknowledged prefix.
        from repro.resilience.wal import WAL_NAME, WriteAheadLog

        root = tmp_path / "wal"
        service = _service(
            max_concurrent=1, queue_limit=8, wal_root=str(root)
        )
        response = service.submit(_tc_request(seed=11, materialize=True))
        assert response["accepted"]
        service.pump()
        service.flush()
        view_id = response["session_id"]
        updates = []
        for i in range(4):
            ack = service.submit(
                QueryRequest(
                    program=get_program("TC"),
                    edb_data={},
                    kind="update",
                    target_session=view_id,
                    inserts={"arc": np.array([[200 + i, 201 + i]])},
                    batch_id=f"race-{i}",
                )
            )
            assert ack["accepted"]
            updates.append(ack["session_id"])
        # No pump: the updates are still queued when the drain lands.
        service.drain()

        logged = {
            record.batch_id
            for record in WriteAheadLog.open(root / view_id / WAL_NAME).records
        }
        acknowledged = set()
        for index, session_id in enumerate(updates):
            doc = service.status(session_id)
            batch_id = f"race-{index}"
            if doc["state"] == "done":
                # Applied-and-logged: the ack implies durability.
                assert doc["failure"] is None
                assert batch_id in logged
                acknowledged.add(batch_id)
            else:
                # Cleanly rejected: shed with a structured failure and
                # never logged — a retry under the same id is safe.
                assert doc["state"] == "shed"
                assert doc["failure"]["kind"] == "shed"
                assert batch_id not in logged
        assert logged == acknowledged  # nothing half-applied either way

        # Recovery agrees: the rebuilt view equals a from-scratch
        # recompute of the EDB plus exactly the acknowledged batches.
        recovered = _service(wal_root=str(root))
        report = recovered.recover()
        new_id = report["recovered"][view_id]["session_id"]
        edb = _graph(11, 120, 400).tolist()
        for index in range(4):
            if f"race-{index}" in acknowledged:
                edb.append([200 + index, 201 + index])
        solo = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            get_program("TC"), {"arc": np.array(edb, dtype=np.int64)}
        )
        assert recovered._views[new_id].fixpoint() == dict(solo.tuples)

    def test_cancel_queued_session(self):
        service = _service(max_concurrent=1, queue_limit=4)
        first = service.submit(_tc_request(seed=1))
        second = service.submit(_tc_request(seed=2))
        doc = service.cancel(second["session_id"])
        assert doc["state"] == "shed"
        assert doc["failure"]["reason"] == "cancelled-by-client"
        service.pump()
        service.drain()
        assert service.status(first["session_id"])["state"] == "done"


# ---------------------------------------------------------------------------
# The spill tier at the service layer
# ---------------------------------------------------------------------------


class TestServiceSpill:
    #: Calibrated with tests/test_spill.py: the 300-cycle TC fixpoint
    #: (90000 rows) cannot stay resident at this quota, but completes
    #: by evicting cold prefixes — ~13.7 simulated seconds, with blocks
    #: on disk from ~5s in.
    BUDGET = 550_000

    @staticmethod
    def _cycle_request(**kwargs) -> QueryRequest:
        src = np.arange(300, dtype=np.int64)
        arc = np.stack([src, (src + 1) % 300], axis=1)
        kwargs.setdefault("memory_quota", TestServiceSpill.BUDGET)
        return QueryRequest(
            program=get_program("TC"),
            edb_data={"arc": arc},
            dataset="tc-cycle",
            **kwargs,
        )

    def _service(self, tmp_path, **overrides) -> QueryService:
        config = dict(
            max_concurrent=1,
            queue_limit=2,
            spill_root=str(tmp_path / "spill"),
        )
        config.update(overrides)
        return QueryService(
            ServerConfig(**config), engine_config=RecStepConfig(**RELATIONAL)
        )

    def test_spilled_session_releases_headroom_and_cleans_up(self, tmp_path):
        service = self._service(tmp_path)
        response = service.submit(self._cycle_request())
        assert response["accepted"]
        service.flush()
        doc = service.status(response["session_id"])
        assert doc["state"] == "done"
        # The spilled slice was never resident at peak: that part of the
        # reservation went back to the admission pool early.
        assert doc["spilled_bytes"] > 0
        assert doc["spill_released_bytes"] > 0
        snap = service.counters.snapshot()
        assert snap["server.spill_released_bytes"] == doc["spill_released_bytes"]
        # The per-session spill directory died with the session (the
        # engine's own cleanup; the service sweep is a crash backstop).
        assert not (tmp_path / "spill" / response["session_id"]).exists()
        # Telemetry: the spill shows up in histograms and the report.
        metrics = service.metrics_snapshot()
        assert metrics["histograms"]["spill_bytes.TC"]["count"] == 1
        assert service.report()["spilled_bytes_total"] == doc["spilled_bytes"]

    def test_drain_cancels_spilled_session_resume_identical(self, tmp_path):
        # Drain grace lands mid-fixpoint, *after* blocks went to disk:
        # the session checkpoint-cancels with spilled bytes on the books,
        # the spill root is swept, and the checkpoint resumes (with its
        # own spill tier) to the exact reference fixpoint.
        # 10s grace: past spill onset (~7.5s under per-iteration
        # checkpoint overhead), well before the ~14s completion.
        service = self._service(tmp_path, drain_grace_seconds=10.0)
        response = service.submit(self._cycle_request())
        assert response["accepted"]
        report = service.drain(checkpoint_dir=str(tmp_path / "ckpt"))

        doc = service.status(response["session_id"])
        assert doc["state"] == "cancelled"
        assert doc["failure"]["kind"] == "deadline"
        assert doc["spilled_bytes"] > 0
        assert service.counters.snapshot()["server.checkpointed_on_drain"] == 1
        # The shutdown report accounts the spilled bytes, and no spill
        # state survives the drain sweep.
        assert report["spilled_bytes_total"] == doc["spilled_bytes"]
        spill_root = tmp_path / "spill"
        assert not spill_root.exists() or not any(spill_root.iterdir())

        request = self._cycle_request()
        resumed = RecStep(
            RecStepConfig(
                **RELATIONAL,
                memory_budget=self.BUDGET,
                degradation=True,
                spill_dir=str(tmp_path / "resume-spill"),
                resume_from=doc["checkpoint_dir"],
            )
        ).evaluate(request.program, request.edb_data, dataset="tc-cycle")
        reference = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            request.program, request.edb_data, dataset="tc-cycle"
        )
        assert resumed.status == reference.status == "ok"
        assert resumed.tuples == reference.tuples


# ---------------------------------------------------------------------------
# The serve-chaos smoke, in miniature (CI runs the full module)
# ---------------------------------------------------------------------------


class TestSmoke:
    def test_smoke_run_is_clean(self):
        from repro.server.smoke import run_smoke

        report = run_smoke(queries=6, queue_limit=3, verbose=False)
        assert report["smoke"]["violations"] == []
        assert report["smoke"]["accepted"] >= 1


# ---------------------------------------------------------------------------
# Point queries: demand-driven serving with a per-service answer cache
# ---------------------------------------------------------------------------


def _point_request(goal: str, seed: int = 42, **kwargs) -> QueryRequest:
    return QueryRequest(
        program=get_program("TC"),
        edb_data={"arc": _graph(seed, 120, 400)},
        dataset=f"tc-{seed}",
        kind="point",
        goal=goal,
        **kwargs,
    )


class TestPointQueries:
    def test_point_answers_match_post_filtered_full(self):
        edb = {"arc": _graph(42, 120, 400)}
        source = int(edb["arc"][0, 0])
        goal = parse_goal(f"tc({source}, x)")
        service = _service()
        response = service.submit(_point_request(f"tc({source}, x)"))
        assert response["accepted"]
        service.pump()
        service.flush()
        session = service.sessions.get(response["session_id"])
        assert session.state is SessionState.DONE
        full = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            get_program("TC"), {k: v.copy() for k, v in edb.items()}
        )
        assert session.result.tuples["tc"] == filter_answers(
            full.tuples["tc"], goal
        )
        assert session.result.detail["point_cache_hit"] == 0.0
        assert session.result.detail["magic_rewritten"] == 1.0

    def test_cache_hit_serves_repeat_goal_without_evaluation(self):
        source = int(_graph(42, 120, 400)[0, 0])
        service = _service()
        first = service.submit(_point_request(f"tc({source}, x)"))
        service.pump()
        service.flush()
        # Same bindings, different free-term pattern: the cached answer
        # relation is re-filtered, the fixpoint is not re-run.
        second = service.submit(_point_request(f"tc({source}, _)"))
        service.pump()
        service.flush()
        counts = service.counters.snapshot()
        assert counts["server.point_queries"] == 2
        assert counts["server.point_cache_misses"] == 1
        assert counts["server.point_cache_hits"] == 1
        hit = service.sessions.get(second["session_id"])
        assert hit.state is SessionState.DONE
        assert hit.result.detail["point_cache_hit"] == 1.0
        miss = service.sessions.get(first["session_id"])
        assert hit.result.tuples == miss.result.tuples
        # A hit costs no simulated evaluation time.
        assert hit.finished_at == hit.started_at

    def test_edb_churn_changes_fingerprint_and_misses(self):
        source = int(_graph(42, 120, 400)[0, 0])
        service = _service()
        service.submit(_point_request(f"tc({source}, x)", seed=42))
        service.pump()
        service.flush()
        churned = _point_request(f"tc({source}, x)", seed=42)
        churned.edb_data["arc"] = np.vstack(
            [churned.edb_data["arc"], np.array([[118, 119]], dtype=np.int64)]
        )
        service.submit(churned)
        service.pump()
        service.flush()
        counts = service.counters.snapshot()
        assert counts["server.point_cache_misses"] == 2
        assert counts.get("server.point_cache_hits", 0) == 0

    def test_quota_priced_on_demanded_cone(self):
        # A bound goal demands a fraction of the program; its default
        # reservation shrinks accordingly (never below the floor).
        source = int(_graph(42, 120, 400)[0, 0])
        request = _point_request(f"tc({source}, x)", memory_quota=None)
        service = _service()
        response = service.submit(request)
        assert response["accepted"]
        assert request.memory_quota is not None
        assert MIN_SESSION_QUOTA <= request.memory_quota
        assert request.memory_quota < service.admission.default_quota

    def test_all_free_goal_prices_at_full_quota(self):
        request = _point_request("tc(x, y)", memory_quota=None)
        service = _service()
        service.submit(request)
        assert request.memory_quota == service.admission.default_quota

    def test_bad_goal_is_structured_rejection(self):
        service = _service()
        response = service.submit(_point_request("nosuch(1, 2)"))
        assert response["accepted"] is False
        assert response["reason"] == "bad-goal"
        assert response["retry_after_seconds"] == DEFAULT_RETRY_AFTER
        assert "nosuch" in response["message"]
        assert response["goal"] == "nosuch(1, 2)"
        assert service.counters.snapshot()["server.rejected_bad_goal"] == 1

    def test_point_latency_has_its_own_family(self):
        source = int(_graph(42, 120, 400)[0, 0])
        service = _service()
        service.submit(_point_request(f"tc({source}, x)"))
        service.pump()
        service.flush()
        snapshot = service.metrics_snapshot()
        families = set(snapshot["histograms"])
        assert "point.latency.all" in families
        assert not any(f.startswith("latency.") for f in families)


# ---------------------------------------------------------------------------
# Failure classification at the isolation boundary
# ---------------------------------------------------------------------------


class TestFailureClassification:
    """Escaped control exceptions keep their structured taxonomy.

    The ``except Exception`` isolation boundaries in the service must not
    collapse cancellation/deadline/watchdog/guard exceptions into a
    generic FAILED/internal document — each maps to the same status the
    interpreter itself would have reported.
    """

    def _run_with_raising_evaluate(self, monkeypatch, error):
        def explode(self, *args, **kwargs):
            raise error

        monkeypatch.setattr(RecStep, "evaluate", explode)
        service = _service()
        response = service.submit(_tc_request(seed=3))
        assert response["accepted"]
        service.pump()
        service.flush()
        return service, service.sessions.get(response["session_id"])

    def test_watchdog_cancel_maps_to_cancelled(self, monkeypatch):
        error = EvaluationCancelled(
            "no heartbeat", reason="watchdog", kind="watchdog", gap_seconds=9.0
        )
        service, session = self._run_with_raising_evaluate(monkeypatch, error)
        assert session.state is SessionState.CANCELLED
        assert session.failure["kind"] == "watchdog"
        assert service.counters.snapshot()["server.watchdog_cancels"] == 1

    def test_deadline_cancel_maps_to_cancelled_deadline(self, monkeypatch):
        error = EvaluationCancelled("past deadline", reason="deadline")
        _, session = self._run_with_raising_evaluate(monkeypatch, error)
        assert session.state is SessionState.CANCELLED
        assert session.failure["kind"] == "deadline"
        assert session.failure["error"] == "EvaluationCancelled"

    def test_guard_trip_maps_to_guard_not_internal(self, monkeypatch):
        from repro.common.errors import DivergenceGuardTripped

        error = DivergenceGuardTripped(
            "row budget exceeded", reason="max_total_rows", total_rows=10**9
        )
        _, session = self._run_with_raising_evaluate(monkeypatch, error)
        assert session.state is SessionState.FAILED
        assert session.failure["error"] == "DivergenceGuardTripped"
        assert session.failure["kind"] == "max_total_rows"

    def test_unknown_exception_still_generic_fault(self, monkeypatch):
        _, session = self._run_with_raising_evaluate(
            monkeypatch, RuntimeError("surprise")
        )
        assert session.state is SessionState.FAILED
        assert session.failure["kind"] == "internal"

    def test_point_path_classifies_guard_trips(self, monkeypatch):
        from repro.common.errors import DivergenceGuardTripped

        def explode(self, *args, **kwargs):
            raise DivergenceGuardTripped("diverged", reason="max_iterations")

        monkeypatch.setattr(RecStep, "answer", explode)
        service = _service()
        source = int(_graph(42, 120, 400)[0, 0])
        response = service.submit(_point_request(f"tc({source}, x)"))
        assert response["accepted"]
        service.pump()
        service.flush()
        session = service.sessions.get(response["session_id"])
        assert session.state is SessionState.FAILED
        assert session.failure["error"] == "DivergenceGuardTripped"
        assert session.failure["kind"] == "max_iterations"
